//! The engine-lifetime metrics registry.
//!
//! One [`EngineMetrics`] lives as long as the engine and is shared
//! (`Arc`) with every subsystem that records into it: the file-buffer
//! pool mirrors its hit/miss/disk traffic, chunked streams record
//! completion and consumer-wait traffic, and the executor records morsel
//! dispatch. All fields are relaxed atomics — recording never takes a
//! lock, and reads are monotonic snapshots (exact once the engine is
//! quiescent, e.g. between queries).
//!
//! ## Why `Relaxed` is safe here
//!
//! Every operation on these counters is a `fetch_add`/`fetch_max`/`load`
//! on a *single* atomic: no counter update is ever used to publish other
//! memory, and no reader dereferences anything based on a counter value —
//! so there is no happens-before edge to establish and nothing a stronger
//! ordering would protect. Atomic read-modify-writes are indivisible at
//! every ordering, so `Relaxed` increments are never lost; the only
//! latitude is that a snapshot taken mid-run may observe counter A's
//! increment before counter B's from the same event. Quiescent reads
//! (between queries, at report time) see exact totals because thread
//! join/termination provides the synchronization (see CONCURRENCY.md).
//! This is the project-standard pattern the `raw-analyze` A1/L1 rules
//! enforce: `Relaxed` for independent counters, mutex/condvar edges (not
//! `SeqCst`) where real publication is needed.
//!
//! ## Counter contract (what is charged, and when)
//!
//! | counter | charged when |
//! |---|---|
//! | `file_pool_hits` / `file_pool_misses` | every pool access; one miss per charged disk read, everything else a hit (identical across blocking/streamed cold paths) |
//! | `bytes_from_disk` | blocking read: whole file at read time; streamed read: per completed chunk (a failed stream charges only what it read) |
//! | `chunks_completed` | each chunk the streaming reader finishes |
//! | `chunk_waits` / `chunk_wait_nanos` | each time a consumer actually blocks waiting for chunk availability, and for how long (scheduling-dependent: do not assert exact values) |
//! | `stream_failures` / `stream_failed_bytes` | a streaming reader hits a terminal I/O error; the bytes are the partial prefix it had completed |
//! | `template_hits` / `template_misses` | access-path template cache lookups (a miss is a compilation) |
//! | `shred_hits` / `shred_misses` | shred-pool lookups during planning |
//! | `morsels_dispatched` | each morsel a parallel run hands to the worker pool |
//! | `morsels_failed` | each morsel whose gate or pipeline surfaced an error |
//! | `queries` / `parallel_queries` | each query executed / each that took the morsel-parallel path |
//! | `resident_bytes` | gauge: bytes currently held by warm buffers + in-flight streams |
//! | `peak_resident_bytes` | high-water mark of `resident_bytes` |
//! | `file_pool_evictions` | each warm entry the file pool evicted to stay under its byte budget |
//! | `rzb_blocks_decoded` | each `.rzb` block decompressed (blocking or per-morsel path) |
//! | `rzb_compressed_bytes` / `rzb_uncompressed_bytes` | compressed payload bytes in / uncompressed bytes out, per decoded block |
//! | `rzb_decode_nanos` | total nanoseconds spent in block decompression (summed across workers; may exceed wall time) |

use std::sync::atomic::{AtomicU64, Ordering};

use crate::Json;

/// Engine-lifetime atomic counters and gauges. See the module docs for the
/// charge contract of each field.
#[derive(Debug, Default)]
pub struct EngineMetrics {
    /// File-pool accesses served without a disk read.
    pub file_pool_hits: AtomicU64,
    /// File-pool accesses that charged a disk read.
    pub file_pool_misses: AtomicU64,
    /// Bytes read from disk (blocking reads whole-file, streams per chunk).
    pub bytes_from_disk: AtomicU64,
    /// Chunks completed by streaming readers.
    pub chunks_completed: AtomicU64,
    /// Consumer waits that actually blocked on chunk availability.
    pub chunk_waits: AtomicU64,
    /// Total nanoseconds consumers spent blocked on chunk availability.
    pub chunk_wait_nanos: AtomicU64,
    /// Streaming reads that ended in a terminal I/O error.
    pub stream_failures: AtomicU64,
    /// Partial bytes completed by streams that then failed.
    pub stream_failed_bytes: AtomicU64,
    /// Access-path template-cache hits.
    pub template_hits: AtomicU64,
    /// Access-path template-cache misses (compilations).
    pub template_misses: AtomicU64,
    /// Shred-pool hits.
    pub shred_hits: AtomicU64,
    /// Shred-pool misses.
    pub shred_misses: AtomicU64,
    /// Morsels handed to the worker pool.
    pub morsels_dispatched: AtomicU64,
    /// Morsels whose gate or pipeline surfaced an error.
    pub morsels_failed: AtomicU64,
    /// Queries executed.
    pub queries: AtomicU64,
    /// Queries that took the morsel-parallel path.
    pub parallel_queries: AtomicU64,
    /// Gauge: bytes currently resident in file buffers (warm pool plus
    /// in-flight stream allocations).
    pub resident_bytes: AtomicU64,
    /// High-water mark of `resident_bytes`.
    pub peak_resident_bytes: AtomicU64,
    /// Warm file-pool entries evicted to stay under the byte budget.
    pub file_pool_evictions: AtomicU64,
    /// `.rzb` blocks decompressed.
    pub rzb_blocks_decoded: AtomicU64,
    /// Compressed payload bytes consumed by block decompression.
    pub rzb_compressed_bytes: AtomicU64,
    /// Uncompressed bytes produced by block decompression.
    pub rzb_uncompressed_bytes: AtomicU64,
    /// Nanoseconds spent decompressing blocks (summed across workers).
    pub rzb_decode_nanos: AtomicU64,
}

impl EngineMetrics {
    /// A fresh registry with every counter at zero.
    pub fn new() -> EngineMetrics {
        EngineMetrics::default()
    }

    // -- recording (relaxed atomics; no locks) -------------------------------

    /// One pool access served from memory.
    pub fn file_hit(&self) {
        self.file_pool_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// One pool access that charges a disk read.
    pub fn file_miss(&self) {
        self.file_pool_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// `n` bytes read from disk.
    pub fn disk_bytes(&self, n: u64) {
        self.bytes_from_disk.fetch_add(n, Ordering::Relaxed);
    }

    /// One streaming chunk of `n` bytes completed.
    pub fn chunk_completed(&self, n: u64) {
        self.chunks_completed.fetch_add(1, Ordering::Relaxed);
        self.bytes_from_disk.fetch_add(n, Ordering::Relaxed);
    }

    /// A consumer blocked `nanos` ns waiting for chunk availability.
    pub fn chunk_wait(&self, nanos: u64) {
        self.chunk_waits.fetch_add(1, Ordering::Relaxed);
        self.chunk_wait_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// A streaming read failed after completing `partial_bytes`.
    pub fn stream_failed(&self, partial_bytes: u64) {
        self.stream_failures.fetch_add(1, Ordering::Relaxed);
        self.stream_failed_bytes.fetch_add(partial_bytes, Ordering::Relaxed);
    }

    /// Template-cache traffic deltas from one query.
    pub fn template_traffic(&self, hits: u64, misses: u64) {
        self.template_hits.fetch_add(hits, Ordering::Relaxed);
        self.template_misses.fetch_add(misses, Ordering::Relaxed);
    }

    /// Shred-pool traffic deltas from one query.
    pub fn shred_traffic(&self, hits: u64, misses: u64) {
        self.shred_hits.fetch_add(hits, Ordering::Relaxed);
        self.shred_misses.fetch_add(misses, Ordering::Relaxed);
    }

    /// `n` morsels dispatched to the worker pool.
    pub fn morsels(&self, n: u64) {
        self.morsels_dispatched.fetch_add(n, Ordering::Relaxed);
    }

    /// One morsel surfaced an error (gate failure or pipeline error).
    pub fn morsel_failed(&self) {
        self.morsels_failed.fetch_add(1, Ordering::Relaxed);
    }

    /// One query executed; `parallel` if it took the morsel-parallel path.
    pub fn query(&self, parallel: bool) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        if parallel {
            self.parallel_queries.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// `n` buffer bytes became resident (warm insert or stream allocation).
    pub fn resident_add(&self, n: u64) {
        let now = self.resident_bytes.fetch_add(n, Ordering::Relaxed) + n;
        self.peak_resident_bytes.fetch_max(now, Ordering::Relaxed);
    }

    /// `n` buffer bytes were evicted / superseded.
    pub fn resident_sub(&self, n: u64) {
        // Saturating: an eviction racing a concurrent accounting path must
        // never wrap the gauge.
        let mut cur = self.resident_bytes.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match self.resident_bytes.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// One warm pool entry evicted under byte-budget pressure.
    pub fn file_evicted(&self) {
        self.file_pool_evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// One `.rzb` block decoded: `comp` compressed payload bytes in,
    /// `uncomp` bytes out, taking `nanos` ns of decode work.
    pub fn rzb_block_decoded(&self, comp: u64, uncomp: u64, nanos: u64) {
        self.rzb_blocks_decoded.fetch_add(1, Ordering::Relaxed);
        self.rzb_compressed_bytes.fetch_add(comp, Ordering::Relaxed);
        self.rzb_uncompressed_bytes.fetch_add(uncomp, Ordering::Relaxed);
        self.rzb_decode_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    // -- reading -------------------------------------------------------------

    /// Every counter as `(name, value)`, in a fixed canonical order.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        vec![
            ("bytes_from_disk", g(&self.bytes_from_disk)),
            ("chunk_wait_nanos", g(&self.chunk_wait_nanos)),
            ("chunk_waits", g(&self.chunk_waits)),
            ("chunks_completed", g(&self.chunks_completed)),
            ("file_pool_evictions", g(&self.file_pool_evictions)),
            ("file_pool_hits", g(&self.file_pool_hits)),
            ("file_pool_misses", g(&self.file_pool_misses)),
            ("morsels_dispatched", g(&self.morsels_dispatched)),
            ("morsels_failed", g(&self.morsels_failed)),
            ("parallel_queries", g(&self.parallel_queries)),
            ("peak_resident_bytes", g(&self.peak_resident_bytes)),
            ("queries", g(&self.queries)),
            ("resident_bytes", g(&self.resident_bytes)),
            ("rzb_blocks_decoded", g(&self.rzb_blocks_decoded)),
            ("rzb_compressed_bytes", g(&self.rzb_compressed_bytes)),
            ("rzb_decode_nanos", g(&self.rzb_decode_nanos)),
            ("rzb_uncompressed_bytes", g(&self.rzb_uncompressed_bytes)),
            ("shred_hits", g(&self.shred_hits)),
            ("shred_misses", g(&self.shred_misses)),
            ("stream_failed_bytes", g(&self.stream_failed_bytes)),
            ("stream_failures", g(&self.stream_failures)),
            ("template_hits", g(&self.template_hits)),
            ("template_misses", g(&self.template_misses)),
        ]
    }

    /// The snapshot as a JSON object (canonical key order).
    pub fn to_json(&self) -> Json {
        Json::obj(self.snapshot().into_iter().map(|(k, v)| (k, Json::UInt(v))).collect())
    }

    /// Render a compact multi-line report of the non-zero counters.
    pub fn report(&self) -> String {
        let mut out = String::new();
        for (name, value) in self.snapshot() {
            if value != 0 {
                out.push_str(&format!("{name}={value}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = EngineMetrics::new();
        m.file_hit();
        m.file_hit();
        m.file_miss();
        m.disk_bytes(100);
        m.chunk_completed(64);
        m.template_traffic(3, 1);
        m.query(true);
        m.query(false);
        let snap: std::collections::HashMap<_, _> = m.snapshot().into_iter().collect();
        assert_eq!(snap["file_pool_hits"], 2);
        assert_eq!(snap["file_pool_misses"], 1);
        assert_eq!(snap["bytes_from_disk"], 164);
        assert_eq!(snap["chunks_completed"], 1);
        assert_eq!(snap["template_hits"], 3);
        assert_eq!(snap["queries"], 2);
        assert_eq!(snap["parallel_queries"], 1);
    }

    #[test]
    fn resident_gauge_tracks_peak() {
        let m = EngineMetrics::new();
        m.resident_add(100);
        m.resident_add(50);
        m.resident_sub(120);
        m.resident_add(10);
        let snap: std::collections::HashMap<_, _> = m.snapshot().into_iter().collect();
        assert_eq!(snap["resident_bytes"], 40);
        assert_eq!(snap["peak_resident_bytes"], 150);
        // Saturating: over-subtraction clamps at zero instead of wrapping.
        m.resident_sub(1_000_000);
        assert_eq!(m.resident_bytes.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn failed_stream_records_partial_bytes() {
        let m = EngineMetrics::new();
        m.stream_failed(4096);
        let snap: std::collections::HashMap<_, _> = m.snapshot().into_iter().collect();
        assert_eq!(snap["stream_failures"], 1);
        assert_eq!(snap["stream_failed_bytes"], 4096);
    }

    #[test]
    fn rzb_and_eviction_counters_accumulate() {
        let m = EngineMetrics::new();
        m.rzb_block_decoded(100, 400, 7);
        m.rzb_block_decoded(50, 400, 3);
        m.file_evicted();
        let snap: std::collections::HashMap<_, _> = m.snapshot().into_iter().collect();
        assert_eq!(snap["rzb_blocks_decoded"], 2);
        assert_eq!(snap["rzb_compressed_bytes"], 150);
        assert_eq!(snap["rzb_uncompressed_bytes"], 800);
        assert_eq!(snap["rzb_decode_nanos"], 10);
        assert_eq!(snap["file_pool_evictions"], 1);
    }

    #[test]
    fn json_snapshot_has_canonical_order() {
        let m = EngineMetrics::new();
        let s = m.to_json().render();
        assert!(s.starts_with("{\"bytes_from_disk\":0"));
        let names: Vec<&str> = m.snapshot().iter().map(|(n, _)| *n).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "snapshot order is sorted-by-name");
    }
}
