//! # raw-trace
//!
//! The observability layer of the RAW reproduction: the paper's whole
//! argument is measurement-driven (Figure 3's cost breakdown is what
//! justifies JIT access paths, positional maps, and shreds), and the
//! *Resource Utilization Monitoring for Raw Data Query Processing* follow-up
//! folds CPU/IO utilization counters into the same per-query report. This
//! crate provides the three pieces every other layer records into:
//!
//! - [`metrics::EngineMetrics`] — an engine-lifetime registry of atomic
//!   counters and gauges (file-pool traffic, chunk-stream waits, cache
//!   hits, morsel dispatch, resident-buffer footprint). Writers bump
//!   relaxed atomics; there are no locks anywhere on a recording path.
//!   [`session::SessionMetrics`] is its per-session sibling: when many
//!   sessions share one engine, each completed query also charges a
//!   [`session::SessionQueryCharge`] to the session that ran it.
//! - [`MorselTrace`] — the per-morsel execution record (worker id,
//!   gate-wait, drain time, scan profile and volume counters). Each pool
//!   worker appends to its own `Vec` sink — single writer per sink, no
//!   shared lock on the hot path — and the sinks merge in morsel order
//!   after the pool barrier. Recording is per *morsel*, never per row, so
//!   tracing adds no work inside scan loops.
//! - [`json`] — a dependency-free JSON writer/parser (the workspace vendors
//!   no serde), used to persist `BENCH_*.json` perf baselines and query
//!   reports as diffable artifacts.
//!
//! Layering: `raw-formats` records file/chunk traffic, `raw-exec` records
//! morsel dispatch, `raw-engine` aggregates both into `QueryStats` /
//! `QueryTrace`, and `raw-bench` serializes them into committed baselines.

pub mod json;
pub mod metrics;
pub mod session;

use std::time::Duration;

use raw_columnar::profile::{PhaseProfile, ScanMetrics};

pub use json::Json;
pub use metrics::EngineMetrics;
pub use session::{SessionMetrics, SessionQueryCharge};

/// One morsel's execution record, appended by the worker that drained it
/// into that worker's private sink and merged (in morsel order) after the
/// pool barrier. One record per morsel — per-morsel granularity is the
/// overhead contract: a scan of a million rows in eight morsels produces
/// eight records.
#[derive(Debug, Clone, Default)]
pub struct MorselTrace {
    /// Morsel index in the plan's morsel grid (merge order).
    pub morsel: usize,
    /// Pool worker that claimed and drained the morsel.
    pub worker: usize,
    /// Time the worker spent blocked in the morsel's availability gate
    /// (cold streamed runs: waiting for the byte range to arrive from the
    /// reader thread; ~0 on warm/ungated runs).
    pub gate_wait: Duration,
    /// Wall time draining the morsel's pipeline (after the gate admitted
    /// it).
    pub exec: Duration,
    /// Rows the morsel's pipeline emitted (pre-merge: selection rows, or
    /// rows folded into the morsel's partial aggregate state).
    pub rows_out: u64,
    /// The morsel scan's Figure-3 phase profile.
    pub profile: PhaseProfile,
    /// The morsel scan's volume counters.
    pub metrics: ScanMetrics,
}

impl MorselTrace {
    /// Serialize for the query-report artifact.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("morsel", Json::UInt(self.morsel as u64)),
            ("worker", Json::UInt(self.worker as u64)),
            ("gate_wait_s", Json::Float(self.gate_wait.as_secs_f64())),
            ("exec_s", Json::Float(self.exec.as_secs_f64())),
            ("rows_out", Json::UInt(self.rows_out)),
            ("scan_s", Json::Float(self.profile.total.as_secs_f64())),
            ("rows_scanned", Json::UInt(self.metrics.rows_scanned)),
            ("rows_pruned", Json::UInt(self.metrics.rows_pruned)),
            ("fields_tokenized", Json::UInt(self.metrics.fields_tokenized)),
        ])
    }
}

/// Merge per-worker sinks into one list ordered by morsel index (the
/// deterministic post-barrier view; workers claim morsels dynamically, so
/// sink order is scheduling-dependent but the merged order never is).
pub fn merge_worker_sinks(sinks: Vec<Vec<MorselTrace>>) -> Vec<MorselTrace> {
    let mut all: Vec<MorselTrace> = sinks.into_iter().flatten().collect();
    all.sort_by_key(|t| t.morsel);
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sinks_merge_in_morsel_order() {
        let a = vec![
            MorselTrace { morsel: 3, worker: 0, ..Default::default() },
            MorselTrace { morsel: 0, worker: 0, ..Default::default() },
        ];
        let b = vec![
            MorselTrace { morsel: 2, worker: 1, ..Default::default() },
            MorselTrace { morsel: 1, worker: 1, ..Default::default() },
        ];
        let merged = merge_worker_sinks(vec![a, b]);
        let order: Vec<usize> = merged.iter().map(|t| t.morsel).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
        assert_eq!(merged[1].worker, 1);
    }

    #[test]
    fn morsel_trace_serializes() {
        let t = MorselTrace { morsel: 2, rows_out: 7, ..Default::default() };
        let s = t.to_json().render();
        assert!(s.contains("\"morsel\":2"));
        assert!(s.contains("\"rows_out\":7"));
    }
}
