//! A mini-SQL front end covering the paper's query shapes.
//!
//! "In an ideal scenario, physicists would write queries in a declarative
//! query language such as SQL" (§6). The microbenchmark queries are all of
//! the form
//!
//! ```sql
//! SELECT MAX(col11) FROM file1 WHERE col1 < 5000
//! SELECT MAX(col11) FROM file1 JOIN file2 ON file1.col1 = file2.col1
//!     WHERE file2.col2 < 5000
//! ```
//!
//! so the grammar is: one table, an optional equi-join, conjunctive
//! comparisons against literals, aggregate or bare-column select items, and
//! an optional `GROUP BY key` (the Higgs use case is histogram-shaped:
//! grouped counts and extrema per event).

use std::fmt;

use raw_columnar::ops::AggKind;
use raw_columnar::{CmpOp, Value};

use crate::error::{EngineError, Result};

/// A possibly table-qualified column name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColName {
    /// Qualifier, when written as `table.column`.
    pub table: Option<String>,
    /// Column name.
    pub column: String,
}

impl fmt::Display for ColName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => f.write_str(&self.column),
        }
    }
}

/// One item of the select list.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    /// Aggregate function wrapping the column, if any.
    pub agg: Option<AggKind>,
    /// The referenced column.
    pub col: ColName,
}

/// `JOIN table ON left = right`.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    /// Joined (build-side) table.
    pub table: String,
    /// Left key (resolved to the probe side later).
    pub left: ColName,
    /// Right key.
    pub right: ColName,
}

/// One conjunct of the WHERE clause: `col op literal`.
#[derive(Debug, Clone, PartialEq)]
pub struct PredClause {
    /// Filtered column.
    pub col: ColName,
    /// Comparison operator.
    pub op: CmpOp,
    /// Literal value.
    pub value: Value,
}

/// A parsed SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// Select-list items.
    pub items: Vec<SelectItem>,
    /// Primary (probe-side) table.
    pub from: String,
    /// Optional join.
    pub join: Option<JoinClause>,
    /// Conjunctive predicates.
    pub predicates: Vec<PredClause>,
    /// Optional `GROUP BY` key column.
    pub group_by: Option<ColName>,
}

impl fmt::Display for SelectStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match item.agg {
                Some(agg) => write!(f, "{}({})", agg.sql(), item.col)?,
                None => write!(f, "{}", item.col)?,
            }
        }
        write!(f, " FROM {}", self.from)?;
        if let Some(j) = &self.join {
            write!(f, " JOIN {} ON {} = {}", j.table, j.left, j.right)?;
        }
        if !self.predicates.is_empty() {
            write!(f, " WHERE ")?;
            for (i, p) in self.predicates.iter().enumerate() {
                if i > 0 {
                    write!(f, " AND ")?;
                }
                write!(f, "{} {} {}", p.col, p.op.sql(), p.value)?;
            }
        }
        if let Some(g) = &self.group_by {
            write!(f, " GROUP BY {g}")?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Number(String),
    Symbol(&'static str),
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    tokens: Vec<(Token, usize)>,
}

impl<'a> Lexer<'a> {
    fn tokenize(src: &'a str) -> Result<Vec<(Token, usize)>> {
        let mut lx = Lexer { src: src.as_bytes(), pos: 0, tokens: Vec::new() };
        while lx.pos < lx.src.len() {
            let start = lx.pos;
            let b = lx.src[lx.pos];
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    lx.pos += 1;
                }
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                    while lx.pos < lx.src.len()
                        && (lx.src[lx.pos].is_ascii_alphanumeric() || lx.src[lx.pos] == b'_')
                    {
                        lx.pos += 1;
                    }
                    let word =
                        std::str::from_utf8(&lx.src[start..lx.pos]).expect("ascii").to_owned();
                    lx.tokens.push((Token::Ident(word), start));
                }
                b'0'..=b'9' => {
                    while lx.pos < lx.src.len()
                        && (lx.src[lx.pos].is_ascii_digit()
                            || lx.src[lx.pos] == b'.'
                            || lx.src[lx.pos] == b'e'
                            || lx.src[lx.pos] == b'E'
                            || ((lx.src[lx.pos] == b'+' || lx.src[lx.pos] == b'-')
                                && matches!(lx.src[lx.pos - 1], b'e' | b'E')))
                    {
                        lx.pos += 1;
                    }
                    let num =
                        std::str::from_utf8(&lx.src[start..lx.pos]).expect("ascii").to_owned();
                    lx.tokens.push((Token::Number(num), start));
                }
                b'<' => {
                    lx.pos += 1;
                    let sym = if lx.peek() == Some(b'=') {
                        lx.pos += 1;
                        "<="
                    } else if lx.peek() == Some(b'>') {
                        lx.pos += 1;
                        "<>"
                    } else {
                        "<"
                    };
                    lx.tokens.push((Token::Symbol(sym), start));
                }
                b'>' => {
                    lx.pos += 1;
                    let sym = if lx.peek() == Some(b'=') {
                        lx.pos += 1;
                        ">="
                    } else {
                        ">"
                    };
                    lx.tokens.push((Token::Symbol(sym), start));
                }
                b'!' => {
                    lx.pos += 1;
                    if lx.peek() == Some(b'=') {
                        lx.pos += 1;
                        lx.tokens.push((Token::Symbol("<>"), start));
                    } else {
                        return Err(EngineError::Sql {
                            message: "expected != ".into(),
                            offset: Some(start),
                        });
                    }
                }
                b'=' => {
                    lx.pos += 1;
                    lx.tokens.push((Token::Symbol("="), start));
                }
                b',' => {
                    lx.pos += 1;
                    lx.tokens.push((Token::Symbol(","), start));
                }
                b'.' => {
                    lx.pos += 1;
                    lx.tokens.push((Token::Symbol("."), start));
                }
                b'(' => {
                    lx.pos += 1;
                    lx.tokens.push((Token::Symbol("("), start));
                }
                b')' => {
                    lx.pos += 1;
                    lx.tokens.push((Token::Symbol(")"), start));
                }
                b'-' => {
                    // Negative literal: glue onto the following number.
                    lx.pos += 1;
                    let num_start = lx.pos;
                    while lx.pos < lx.src.len()
                        && (lx.src[lx.pos].is_ascii_digit() || lx.src[lx.pos] == b'.')
                    {
                        lx.pos += 1;
                    }
                    if lx.pos == num_start {
                        return Err(EngineError::Sql {
                            message: "dangling '-'".into(),
                            offset: Some(start),
                        });
                    }
                    let num = format!(
                        "-{}",
                        std::str::from_utf8(&lx.src[num_start..lx.pos]).expect("ascii")
                    );
                    lx.tokens.push((Token::Number(num), start));
                }
                other => {
                    return Err(EngineError::Sql {
                        message: format!("unexpected character {:?}", other as char),
                        offset: Some(start),
                    });
                }
            }
        }
        Ok(lx.tokens)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser {
    tokens: Vec<(Token, usize)>,
    pos: usize,
}

impl Parser {
    fn err(&self, message: impl Into<String>) -> EngineError {
        EngineError::Sql {
            message: message.into(),
            offset: self.tokens.get(self.pos).map(|&(_, o)| o),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn keyword(&mut self, kw: &str) -> bool {
        if let Some(Token::Ident(w)) = self.peek() {
            if w.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.keyword(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kw}")))
        }
    }

    fn expect_symbol(&mut self, sym: &str) -> Result<()> {
        match self.peek() {
            Some(Token::Symbol(s)) if *s == sym => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(self.err(format!("expected '{sym}'"))),
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Ident(w)) => Ok(w),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected identifier"))
            }
        }
    }

    fn colref(&mut self) -> Result<ColName> {
        let first = self.ident()?;
        if matches!(self.peek(), Some(Token::Symbol("."))) {
            self.pos += 1;
            let column = self.ident()?;
            Ok(ColName { table: Some(first), column })
        } else {
            Ok(ColName { table: None, column: first })
        }
    }

    fn literal(&mut self) -> Result<Value> {
        match self.next() {
            Some(Token::Number(n)) => {
                if n.contains('.') || n.contains('e') || n.contains('E') {
                    n.parse::<f64>()
                        .map(Value::Float64)
                        .map_err(|_| self.err(format!("bad float literal {n}")))
                } else {
                    n.parse::<i64>()
                        .map(Value::Int64)
                        .map_err(|_| self.err(format!("bad int literal {n}")))
                }
            }
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected literal"))
            }
        }
    }

    fn cmp_op(&mut self) -> Result<CmpOp> {
        let op = match self.peek() {
            Some(Token::Symbol("<")) => CmpOp::Lt,
            Some(Token::Symbol("<=")) => CmpOp::Le,
            Some(Token::Symbol(">")) => CmpOp::Gt,
            Some(Token::Symbol(">=")) => CmpOp::Ge,
            Some(Token::Symbol("=")) => CmpOp::Eq,
            Some(Token::Symbol("<>")) => CmpOp::Ne,
            _ => return Err(self.err("expected comparison operator")),
        };
        self.pos += 1;
        Ok(op)
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        // Lookahead: IDENT '(' means aggregate.
        if let (Some(Token::Ident(w)), Some((Token::Symbol("("), _))) =
            (self.peek(), self.tokens.get(self.pos + 1))
        {
            let Some(agg) = AggKind::parse(w) else {
                return Err(self.err(format!("unknown aggregate {w}")));
            };
            self.pos += 2; // IDENT (
            let col = self.colref()?;
            self.expect_symbol(")")?;
            return Ok(SelectItem { agg: Some(agg), col });
        }
        Ok(SelectItem { agg: None, col: self.colref()? })
    }

    fn statement(&mut self) -> Result<SelectStmt> {
        self.expect_keyword("SELECT")?;
        let mut items = vec![self.select_item()?];
        while matches!(self.peek(), Some(Token::Symbol(","))) {
            self.pos += 1;
            items.push(self.select_item()?);
        }
        self.expect_keyword("FROM")?;
        let from = self.ident()?;

        let join = if self.keyword("JOIN") {
            let table = self.ident()?;
            self.expect_keyword("ON")?;
            let left = self.colref()?;
            self.expect_symbol("=")?;
            let right = self.colref()?;
            Some(JoinClause { table, left, right })
        } else {
            None
        };

        let mut predicates = Vec::new();
        if self.keyword("WHERE") {
            loop {
                let col = self.colref()?;
                let op = self.cmp_op()?;
                let value = self.literal()?;
                predicates.push(PredClause { col, op, value });
                if !self.keyword("AND") {
                    break;
                }
            }
        }
        let group_by = if self.keyword("GROUP") {
            self.expect_keyword("BY")?;
            Some(self.colref()?)
        } else {
            None
        };
        if self.pos != self.tokens.len() {
            return Err(self.err("trailing tokens after statement"));
        }
        Ok(SelectStmt { items, from, join, predicates, group_by })
    }
}

/// Parse one SELECT statement.
pub fn parse(sql: &str) -> Result<SelectStmt> {
    let tokens = Lexer::tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    p.statement()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_aggregate() {
        let s = parse("SELECT MAX(col1) FROM t WHERE col1 < 5000").unwrap();
        assert_eq!(s.from, "t");
        assert_eq!(s.items.len(), 1);
        assert_eq!(s.items[0].agg, Some(AggKind::Max));
        assert_eq!(s.items[0].col.column, "col1");
        assert_eq!(s.predicates.len(), 1);
        assert_eq!(s.predicates[0].op, CmpOp::Lt);
        assert_eq!(s.predicates[0].value, Value::Int64(5000));
        assert!(s.join.is_none());
    }

    #[test]
    fn paper_q2() {
        let s = parse("SELECT MAX(col11) FROM file1 WHERE col1 < 400000000").unwrap();
        assert_eq!(s.to_string(), "SELECT MAX(col11) FROM file1 WHERE col1 < 400000000");
    }

    #[test]
    fn join_query() {
        let s = parse(
            "SELECT MAX(file1.col11) FROM file1 JOIN file2 ON file1.col1 = file2.col1 \
             WHERE file2.col2 < 100",
        )
        .unwrap();
        let j = s.join.as_ref().unwrap();
        assert_eq!(j.table, "file2");
        assert_eq!(j.left.table.as_deref(), Some("file1"));
        assert_eq!(j.right.column, "col1");
        assert_eq!(s.predicates[0].col.table.as_deref(), Some("file2"));
    }

    #[test]
    fn multiple_items_and_predicates() {
        let s =
            parse("SELECT MAX(col6), COUNT(col1) FROM f WHERE col1 < 10 AND col5 >= 3").unwrap();
        assert_eq!(s.items.len(), 2);
        assert_eq!(s.items[1].agg, Some(AggKind::Count));
        assert_eq!(s.predicates.len(), 2);
        assert_eq!(s.predicates[1].op, CmpOp::Ge);
    }

    #[test]
    fn bare_columns() {
        let s = parse("SELECT col1, col2 FROM t").unwrap();
        assert!(s.items.iter().all(|i| i.agg.is_none()));
    }

    #[test]
    fn literals() {
        let s = parse("SELECT MAX(a) FROM t WHERE a < -5").unwrap();
        assert_eq!(s.predicates[0].value, Value::Int64(-5));
        let s = parse("SELECT MAX(a) FROM t WHERE a < 2.5").unwrap();
        assert_eq!(s.predicates[0].value, Value::Float64(2.5));
        let s = parse("SELECT MAX(a) FROM t WHERE a <> 1").unwrap();
        assert_eq!(s.predicates[0].op, CmpOp::Ne);
        let s = parse("SELECT MAX(a) FROM t WHERE a != 1").unwrap();
        assert_eq!(s.predicates[0].op, CmpOp::Ne);
    }

    #[test]
    fn case_insensitive_keywords() {
        assert!(parse("select max(a) from t where a < 1 and a > 0").is_ok());
    }

    #[test]
    fn errors_carry_offsets() {
        let e = parse("SELECT MAX(col1) FRM t").unwrap_err();
        assert!(e.to_string().contains("expected FROM"), "{e}");
        assert!(parse("SELECT FROM t").is_err());
        assert!(parse("SELECT MEDIAN(a) FROM t").is_err());
        assert!(parse("SELECT MAX(a) FROM t WHERE a < ").is_err());
        assert!(parse("SELECT MAX(a) FROM t extra").is_err());
        assert!(parse("SELECT MAX(a) FROM t WHERE a ~ 3").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn display_roundtrip() {
        for q in [
            "SELECT MAX(col11) FROM file1 WHERE col1 < 400",
            "SELECT MAX(file1.col11) FROM file1 JOIN file2 ON file1.col1 = file2.col1 WHERE file2.col2 < 100",
            "SELECT col1, col2 FROM t",
            "SELECT COUNT(a) FROM t WHERE a >= 1 AND b <> 2",
            "SELECT region, SUM(q) FROM sales WHERE q < 5 GROUP BY region",
            "SELECT COUNT(s.q) FROM s JOIN d ON s.k = d.k GROUP BY d.tier",
        ] {
            let parsed = parse(q).unwrap();
            assert_eq!(parsed.to_string(), q);
            assert_eq!(parse(&parsed.to_string()).unwrap(), parsed, "idempotent");
        }
    }

    #[test]
    fn group_by_clause() {
        let s = parse("SELECT region, COUNT(x) FROM t GROUP BY region").unwrap();
        assert_eq!(s.group_by, Some(ColName { table: None, column: "region".into() }));
        let s = parse("SELECT COUNT(x) FROM t WHERE x < 3 GROUP BY t.region").unwrap();
        assert_eq!(s.group_by.as_ref().unwrap().table.as_deref(), Some("t"));
        // GROUP without BY, or BY without a column, are errors.
        assert!(parse("SELECT COUNT(x) FROM t GROUP region").is_err());
        assert!(parse("SELECT COUNT(x) FROM t GROUP BY").is_err());
        // GROUP BY must come after WHERE.
        assert!(parse("SELECT COUNT(x) FROM t GROUP BY r WHERE x < 1").is_err());
    }
}
