//! The RAW engine facade.
//!
//! [`RawEngine`] owns the catalog and all adaptive state — file buffers, the
//! template cache of compiled access paths, per-table positional maps, the
//! column-shred pool, and (for the DBMS baseline) fully-loaded tables — and
//! answers SQL queries through the physical planner. Experiments flip
//! [`EngineConfig`] knobs to reproduce every system the paper compares:
//!
//! | Paper system      | Configuration                                     |
//! |-------------------|---------------------------------------------------|
//! | "DBMS"            | `mode: Dbms`                                      |
//! | "External Tables" | `mode: ExternalTables`                            |
//! | "In Situ" (NoDB)  | `mode: InSitu`                                    |
//! | "JIT"             | `mode: Jit, shreds: FullColumns`                  |
//! | "Column shreds"   | `mode: Jit, shreds: ColumnShreds`                 |
//! | "Multi-column"    | `mode: Jit, shreds: MultiColumnShreds`            |
//! | Join Early/Int./Late | `join_placement`                               |
//! | "Col. 7" variants | `posmap_policy: EveryK { stride: 7 }`             |
//!
//! ## Sessions over one shared engine
//!
//! The engine is **long-lived and shared**: all adaptive state lives in an
//! internal `Arc`'d core behind the concurrent cache layer of
//! [`crate::shared`] (read-locked lookups, merge-on-publish writes), and
//! parallel queries run on one engine-global worker pool with per-query
//! admission and fair round-robin morsel scheduling
//! ([`raw_exec::GlobalPool`]). [`RawEngine::session`] hands out cheap
//! [`Session`] handles — one per client/connection — that answer queries
//! concurrently over the same caches, so one session's positional maps,
//! shreds, statistics, and warm buffers speed up every other session's
//! queries. Every `RawEngine` method is `&self`; the engine itself behaves
//! exactly like a session that also owns administrative hooks (cache drops,
//! config swaps). The full protocol — snapshot isolation per query,
//! merge-on-publish side effects, the admission fairness invariant, and the
//! lock inventory/ordering — is specified in `CONCURRENCY.md` § "Sessions
//! and the shared cache layer".

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};

use raw_access::TemplateCache;
use raw_columnar::batch::TableTag;
use raw_columnar::ops::{drain, Operator};
use raw_columnar::{Batch, Value};
use raw_exec::GlobalPool;
use raw_formats::file_buffer::FileBufferPool;
use raw_posmap::{PositionalMap, TrackingPolicy};
use raw_trace::{EngineMetrics, SessionMetrics, SessionQueryCharge};

use crate::catalog::{Catalog, TableDef};
use crate::cost::CostModel;
use crate::error::{EngineError, Result};
use crate::physical::{self, Harvests, PlannerCtx};
use crate::plan::{resolve, ColRef, ResolvedQuery};
use crate::shared::{PosmapRegistry, SharedRootFiles, SharedStats, SharedTables};
use crate::shreds::ShredPool;
use crate::sql;
use crate::stats::{QueryStats, QueryTrace};
use crate::table_stats::StatsRegistry;

/// Which access-path family the engine uses (the systems of §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessMode {
    /// Load raw files fully into native columnar tables, then query those.
    Dbms,
    /// Re-parse and convert the whole file on every query.
    ExternalTables,
    /// General-purpose in-situ scans (the NoDB baseline).
    InSitu,
    /// JIT-specialized access paths (the paper's contribution).
    Jit,
}

/// How eagerly columns are materialized (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShredStrategy {
    /// Read every required column in the bottom scan.
    FullColumns,
    /// Push scans up: read non-filter columns only for surviving rows.
    ColumnShreds,
    /// Like shreds, but speculatively fetch co-located columns in one pass
    /// (§5.3.1).
    MultiColumnShreds,
    /// Let the cost model pick per query, using histograms harvested from
    /// earlier queries (the paper's §8 future-work optimizer integration;
    /// see [`crate::cost`]). Requires [`AccessMode::Jit`]; other modes fall
    /// back to full columns.
    Adaptive,
}

/// Where a join's projected columns are materialized (§5.3.2, Fig. 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinPlacement {
    /// In the bottom scans (full columns).
    Early,
    /// After the owning side's filters, before the join.
    Intermediate,
    /// Above the join, for qualifying rows only.
    Late,
    /// Let the cost model pick per side and per query: the pipelined side
    /// keeps row order (Fig. 11) while the breaking side pays shuffled
    /// accesses (Fig. 12), so the right point depends on selectivity.
    Adaptive,
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Access-path family.
    pub mode: AccessMode,
    /// Column materialization strategy.
    pub shreds: ShredStrategy,
    /// Join projected-column placement.
    pub join_placement: JoinPlacement,
    /// Positional-map tracking policy for text formats.
    pub posmap_policy: TrackingPolicy,
    /// Rows per batch.
    pub batch_size: usize,
    /// Shred-pool budget in bytes (`0` = unlimited; env
    /// `RAW_SHRED_POOL_BYTES`). Fixed at engine construction, matching the
    /// file pool's budget semantics.
    pub shred_pool_bytes: usize,
    /// Whether scans/fetches populate the shred pool as a side effect.
    pub cache_shreds: bool,
    /// Extra latency added to every template-cache miss, modeling the
    /// paper's external C++ compiler (~2 s at paper scale). Zero by default.
    pub simulated_compile_latency: Duration,
    /// The cost model consulted by `Adaptive` strategies/placements.
    pub cost_model: CostModel,
    /// Worker threads for morsel-parallel raw scans (the `raw-exec`
    /// subsystem). Defaults to the machine's available cores. `1` disables
    /// the parallel path entirely and reproduces the serial engine
    /// bit-for-bit; higher values parallelize eligible queries — anything
    /// driven by a CSV, fbin, rootsim-event, ibin (page-aligned morsels,
    /// per-morsel zone-index pruning), or rootsim-collection (item-sized
    /// event-range morsels) scan in in-situ or JIT mode, including joins
    /// (shared build-side hash table, per-morsel probes) and grouped
    /// aggregation (per-morsel partial states merged in morsel order) —
    /// and fall back to serial for everything else. Parallel queries from
    /// every session share one engine-global worker pool of this many
    /// threads (fair round-robin morsel scheduling across queries).
    pub parallelism: usize,
    /// Maximum queries the global worker pool executes concurrently (`0` =
    /// unlimited; env `RAW_ADMISSION_QUERIES`). Excess parallel queries
    /// queue FIFO at the pool's admission door; an admitted query always
    /// runs to completion. Admission is per query, never per morsel, so a
    /// capped pool cannot deadlock a half-dispatched query.
    pub admission_queries: usize,
    /// Target bytes per parallel morsel. The morsel grid is derived from
    /// the file size and this knob only — never from `parallelism` — so
    /// results are identical for any worker count >= 2 (integer aggregates
    /// are additionally bit-for-bit serial-identical; float SUM/AVG can
    /// differ from serial in final-bit rounding since per-morsel partial
    /// sums reassociate the summation).
    pub morsel_bytes: usize,
    /// Chunk size for the overlapped cold-read path, in bytes (default
    /// 4 MiB; env `RAW_READ_CHUNK_BYTES`). On cold parallel runs over flat
    /// files, a dedicated reader thread fills the buffer in chunks of this
    /// size and morsels dispatch as soon as their byte ranges are resident,
    /// overlapping disk I/O with scanning. `0` disables streaming: cold
    /// reads block for the whole file before any worker starts (the
    /// pre-overlap behavior, and the baseline the `cold_equivalence` suite
    /// compares against). Results and I/O counters are identical either
    /// way; only the overlap changes.
    pub read_chunk_bytes: usize,
    /// Skew-resistance grid refinement: multiply the natural morsel target
    /// by this factor (default `1` = off; env `RAW_SKEW_SPLIT`). A finer
    /// grid is the deterministic defense against long-tail morsels (an ibin
    /// morsel whose pages all survive pruning, a collection morsel of heavy
    /// events): smaller sub-morsels let the pool's dynamic claiming
    /// rebalance around the expensive region, and their results still merge
    /// in morsel order. The refined grid stays a pure function of
    /// `(file, morsel_bytes, skew_split)` — never the worker count or
    /// runtime timing — so every counter and cross-parallelism equivalence
    /// invariant holds at any setting. (Committed bench baselines pin their
    /// morsel counters at the default, which is why refinement is opt-in
    /// rather than always-on.)
    pub skew_split: usize,
    /// Uncompressed block size used when *writing* `.rzb` containers
    /// (default 256 KiB; env `RAW_RZB_BLOCK_BYTES`). Reading always honors
    /// the block size recorded in the file's header, so this knob never
    /// affects query results — only the granularity at which new containers
    /// compress and later decode in parallel.
    pub rzb_block_bytes: usize,
    /// Byte budget for the warm file-buffer pool (default 512 MiB; env
    /// `RAW_FILE_POOL_BYTES`; `0` = unlimited). When a cold read would push
    /// resident bytes past the budget, least-recently-used warm entries are
    /// evicted (never the entry being read) and counted in
    /// `file_pool_evictions`. Mirrors the shred pool's byte-budget design.
    pub file_pool_bytes: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            mode: AccessMode::Jit,
            shreds: ShredStrategy::ColumnShreds,
            join_placement: JoinPlacement::Late,
            posmap_policy: TrackingPolicy::EveryK { stride: 10 },
            batch_size: raw_columnar::VECTOR_SIZE,
            shred_pool_bytes: 256 << 20,
            cache_shreds: true,
            simulated_compile_latency: Duration::ZERO,
            cost_model: CostModel::default(),
            parallelism: raw_exec::available_threads(),
            admission_queries: 0,
            morsel_bytes: 256 << 10,
            read_chunk_bytes: 4 << 20,
            skew_split: 1,
            rzb_block_bytes: 256 << 10,
            file_pool_bytes: 512 << 20,
        }
    }
}

impl EngineConfig {
    /// The default configuration with environment overrides applied:
    /// `RAW_PARALLELISM` (worker threads; `1` forces the serial path),
    /// `RAW_ADMISSION_QUERIES` (concurrent-query cap at the global pool's
    /// admission door; `0` = unlimited), `RAW_MORSEL_BYTES` (target bytes
    /// per morsel), `RAW_READ_CHUNK_BYTES` (cold-read streaming chunk; `0`
    /// disables streaming entirely), `RAW_SKEW_SPLIT` (morsel-grid
    /// refinement factor; `1` = natural grid), `RAW_RZB_BLOCK_BYTES`
    /// (uncompressed block size for newly written `.rzb` containers),
    /// `RAW_FILE_POOL_BYTES` (warm file-pool byte budget; `0` = unlimited),
    /// and `RAW_SHRED_POOL_BYTES` (shred-pool byte budget; `0` = unlimited,
    /// matching the file-pool semantics). Unset or unparsable variables
    /// leave the default untouched. Test suites build engines through this
    /// so CI can exercise the whole suite under a forced parallel (and
    /// forced tiny-chunk streaming) configuration.
    pub fn from_env() -> EngineConfig {
        fn env_usize(key: &str) -> Option<usize> {
            std::env::var(key).ok()?.trim().parse().ok()
        }
        let mut config = EngineConfig::default();
        if let Some(n) = env_usize("RAW_PARALLELISM") {
            config.parallelism = n.max(1);
        }
        if let Some(n) = env_usize("RAW_ADMISSION_QUERIES") {
            config.admission_queries = n; // 0 = unlimited
        }
        if let Some(n) = env_usize("RAW_MORSEL_BYTES") {
            config.morsel_bytes = n.max(1);
        }
        if let Some(n) = env_usize("RAW_READ_CHUNK_BYTES") {
            config.read_chunk_bytes = n; // 0 = streaming off
        }
        if let Some(n) = env_usize("RAW_SKEW_SPLIT") {
            config.skew_split = n.max(1);
        }
        if let Some(n) = env_usize("RAW_RZB_BLOCK_BYTES") {
            config.rzb_block_bytes = n.max(1);
        }
        if let Some(n) = env_usize("RAW_FILE_POOL_BYTES") {
            config.file_pool_bytes = n; // 0 = unlimited
        }
        if let Some(n) = env_usize("RAW_SHRED_POOL_BYTES") {
            config.shred_pool_bytes = n; // 0 = unlimited
        }
        config
    }
}

/// A query answer: result rows plus statistics.
#[derive(Debug)]
pub struct QueryResult {
    /// Result rows (concatenated into one batch).
    pub batch: Batch,
    /// Output column names.
    pub column_names: Vec<String>,
    /// Measurements.
    pub stats: QueryStats,
}

impl QueryResult {
    /// Scalar cell accessor.
    pub fn value(&self, row: usize, col: usize) -> Result<Value> {
        Ok(self.batch.value(row, col)?)
    }

    /// The single value of a one-row, one-column result (typical aggregate).
    pub fn scalar(&self) -> Result<Value> {
        if self.batch.rows() != 1 || self.batch.num_columns() < 1 {
            return Err(EngineError::planning(format!(
                "scalar() on a {}x{} result",
                self.batch.rows(),
                self.batch.num_columns()
            )));
        }
        self.value(0, 0)
    }
}

/// A scan built by [`RawEngine::plan_scan`] for hand-assembled plans (the
/// Higgs pipeline): the operator plus its pending side effects.
pub struct PlannedScan {
    /// The scan operator (pool/record/harvest wrappers included).
    pub op: Box<dyn Operator>,
    /// Side effects to absorb after the custom plan runs.
    pub harvests: Harvests,
}

/// The immutable world one query plans and executes against: owned copies
/// of the catalog and configuration plus `Arc` handles to every positional
/// map, all taken at query start. Concurrent publishes from other sessions
/// go through copy-on-write ([`crate::shared`]), so nothing in a snapshot
/// ever changes underneath a running query.
struct QuerySnapshot {
    catalog: Catalog,
    config: EngineConfig,
    posmaps: HashMap<String, Arc<PositionalMap>>,
}

/// The long-lived shared core: one instance per engine, behind `Arc`,
/// referenced by the owning [`RawEngine`] and every [`Session`]. All
/// adaptive state sits behind the concurrent wrappers of [`crate::shared`];
/// the query path takes a [`QuerySnapshot`], plans against it, executes
/// (serially or on the global worker pool), and publishes side effects back
/// through merge-on-publish.
struct EngineShared {
    catalog: RwLock<Catalog>,
    config: RwLock<EngineConfig>,
    files: Arc<FileBufferPool>,
    templates: TemplateCache,
    posmaps: PosmapRegistry,
    pool: ShredPool,
    loaded: SharedTables,
    root_files: SharedRootFiles,
    stats: SharedStats,
    metrics: Arc<EngineMetrics>,
    /// The engine-global worker pool, created lazily on the first parallel
    /// query and rebuilt if `parallelism`/`admission_queries` change.
    workers: Mutex<Option<Arc<GlobalPool>>>,
    next_session: AtomicU64,
}

impl EngineShared {
    fn snapshot(&self) -> QuerySnapshot {
        QuerySnapshot {
            catalog: self.catalog.read().clone(),
            config: self.config.read().clone(),
            posmaps: self.posmaps.snapshot(),
        }
    }

    fn planner_ctx<'a>(&'a self, snap: &'a QuerySnapshot) -> PlannerCtx<'a> {
        PlannerCtx {
            catalog: &snap.catalog,
            config: &snap.config,
            files: &self.files,
            templates: &self.templates,
            posmaps: &snap.posmaps,
            pool: &self.pool,
            loaded: &self.loaded,
            root_files: &self.root_files,
            stats: &self.stats,
        }
    }

    /// The global worker pool sized to the current config — created on
    /// first use, reused across queries and sessions, and replaced (old
    /// workers drain and join once their last in-flight query releases its
    /// handle) when the thread count or admission cap changes.
    fn worker_pool(&self, threads: usize, max_active: usize) -> Arc<GlobalPool> {
        let mut guard = self.workers.lock();
        if let Some(pool) = guard.as_ref() {
            if pool.threads() == threads && pool.max_active() == max_active {
                return Arc::clone(pool);
            }
        }
        let pool = Arc::new(GlobalPool::new(threads, max_active));
        *guard = Some(Arc::clone(&pool));
        pool
    }

    fn query(&self, sql_text: &str, session: &SessionMetrics) -> Result<QueryResult> {
        let stmt = sql::parse(sql_text)?;
        let snap = self.snapshot();
        let resolved = resolve(&stmt, &snap.catalog)?;
        self.execute_with(&snap, &resolved, session)
    }

    fn explain(&self, sql_text: &str) -> Result<Vec<String>> {
        let stmt = sql::parse(sql_text)?;
        let snap = self.snapshot();
        let resolved = resolve(&stmt, &snap.catalog)?;
        let ctx = self.planner_ctx(&snap);
        let plan = physical::plan(&ctx, &resolved)?;
        Ok(plan.explain)
    }

    fn execute(&self, resolved: &ResolvedQuery, session: &SessionMetrics) -> Result<QueryResult> {
        let snap = self.snapshot();
        self.execute_with(&snap, resolved, session)
    }

    fn execute_with(
        &self,
        snap: &QuerySnapshot,
        resolved: &ResolvedQuery,
        session: &SessionMetrics,
    ) -> Result<QueryResult> {
        let wall_start = Instant::now();
        let io0 = self.files.bytes_from_disk();
        let tmpl0 = self.templates.stats();
        let shred0 = self.pool.stats();

        // Morsel-parallel path: engaged only when configured (> 1 worker)
        // and the query is eligible; everything else — including
        // `parallelism == 1`, which must reproduce the serial engine
        // bit-for-bit — continues below unchanged.
        if snap.config.parallelism > 1 {
            let maybe = {
                let ctx = self.planner_ctx(snap);
                physical::parallel::try_plan(&ctx, resolved, snap.config.parallelism)?
            };
            if let Some(plan) = maybe {
                return self.execute_parallel(snap, plan, wall_start, io0, tmpl0, shred0, session);
            }
        }

        let plan = {
            let ctx = self.planner_ctx(snap);
            physical::plan(&ctx, resolved)?
        };
        let explain = plan.explain.clone();
        let output_names = plan.output_names.clone();

        let mut root = plan.root;
        let batches = drain(root.as_mut())?;
        let scan = root.scan_profile();
        let metrics = root.scan_metrics();
        drop(root); // release Arc sinks so side effects unwrap cheaply

        let batch = Batch::concat(&batches)?;
        let wall = wall_start.elapsed();

        let (posmaps_built, shreds_recorded) = self.absorb_harvests(plan.harvests)?;

        let tmpl1 = self.templates.stats();
        let shred1 = self.pool.stats();
        let stats = QueryStats {
            wall,
            scan,
            metrics,
            io_bytes: self.files.bytes_from_disk().saturating_sub(io0),
            compile_time: tmpl1.compile_time.saturating_sub(tmpl0.compile_time),
            template_hits: tmpl1.hits.saturating_sub(tmpl0.hits),
            template_misses: tmpl1.misses.saturating_sub(tmpl0.misses),
            // Saturating: these are windows over *shared* counters, and a
            // racing session's `get_full` converts a hit into a miss with a
            // decrement — a plain subtraction could underflow. Attribution
            // is approximate under concurrent load, exact when alone.
            shred_hits: shred1.hits.saturating_sub(shred0.hits),
            shred_misses: shred1.misses.saturating_sub(shred0.misses),
            posmaps_built,
            shreds_recorded,
            rows_out: batch.rows() as u64,
            workers: 1,
            morsels: 0,
            gate_wait: Duration::ZERO,
            explain,
            trace: None,
        };
        self.charge_query(&stats, /* parallel = */ false, session);
        Ok(QueryResult { batch, column_names: output_names, stats })
    }

    /// Run a morsel-parallel plan on the engine-global worker pool and
    /// absorb its side effects: positional-map fragments append in morsel
    /// order into the file-wide map; shred fragments (disjoint global row
    /// ranges) merge through the ordinary harvest path.
    #[allow(clippy::too_many_arguments)]
    fn execute_parallel(
        &self,
        snap: &QuerySnapshot,
        plan: physical::parallel::ParallelPlan,
        wall_start: Instant,
        io0: u64,
        tmpl0: raw_access::template_cache::CacheStats,
        shred0: crate::shreds::ShredPoolStats,
        session: &SessionMetrics,
    ) -> Result<QueryResult> {
        let physical::parallel::ParallelPlan {
            pipelines,
            merge,
            mut harvests,
            posmap_sinks,
            build_profile,
            build_metrics,
            gates,
            explain,
            output_names,
            morsel_meta,
        } = plan;

        // Availability-gated dispatch: on cold streamed runs each morsel
        // waits for its byte range (not the whole file) before draining. On
        // warm (ungated) runs the executor claims predicted-heavy morsels
        // first, using the plan-time byte/row span as the cost hint, so a
        // long-tail morsel cannot land last when no rebalancing is possible.
        // Results, counters, and traces are claim-order invariant — and
        // identical on the global pool, whose admission/fair-scheduling only
        // moves *when* a morsel runs, never what it produces.
        let dispatched = pipelines.len() as u64;
        self.metrics.morsels(dispatched);
        let weights: Vec<u64> = morsel_meta
            .iter()
            .map(|m| ((m.byte_end - m.byte_start) as u64).max(m.end_row - m.first_row).max(1))
            .collect();
        let pool = self.worker_pool(snap.config.parallelism, snap.config.admission_queries);
        let mut outcome =
            match raw_exec::execute_morsels_pooled(&pool, pipelines, gates, &merge, Some(&weights))
            {
                Ok(outcome) => outcome,
                Err(e) => {
                    self.metrics.morsel_failed();
                    return Err(e.into());
                }
            };
        // Scan work performed at plan time (a join's serial build-side
        // drain) belongs to this query's accounting too.
        outcome.profile.merge(&build_profile);
        outcome.metrics.merge(&build_metrics);
        let batch = Batch::concat(&outcome.batches)?;
        let wall = wall_start.elapsed();

        // Positional-map fragments: append in morsel order (fragment k+1's
        // rows follow fragment k's), then hand the file-wide map to the
        // ordinary absorb path.
        let mut merged: Vec<(String, PositionalMap)> = Vec::new();
        for (table, sink) in posmap_sinks {
            let Some(fragment) = sink.lock().take() else { continue };
            if fragment.is_empty() {
                continue;
            }
            match merged.iter_mut().find(|(t, _)| *t == table) {
                Some((_, map)) => map.append(&fragment).map_err(|e| {
                    EngineError::planning(format!("positional map fragment append: {e}"))
                })?,
                None => merged.push((table, fragment)),
            }
        }
        for (table, map) in merged {
            harvests.posmaps.push((table, Arc::new(parking_lot::Mutex::new(Some(map)))));
        }

        let shred_columns: Vec<(String, String)> =
            harvests.shreds.iter().map(|(t, c, _)| (t.clone(), c.clone())).collect();
        let (posmaps_built, shreds_recorded) = self.absorb_harvests(harvests)?;

        // A column whose fragments now cover the whole table is a complete
        // histogram sample, exactly like a full-column shred recorded by a
        // serial scan.
        for (table, column) in shred_columns {
            if let Some(shred) = self.pool.get(&table, &column) {
                if shred.is_full() {
                    self.stats.record_column(&table, &column, shred.dense());
                }
            }
        }

        // Zip the runtime morsel traces (worker, gate-wait, drain time) with
        // the planner's morsel metadata into the query's trace.
        let trace = QueryTrace {
            workers: snap.config.parallelism,
            morsels: std::mem::take(&mut outcome.traces),
            meta: morsel_meta,
        };
        let gate_wait = trace.total_gate_wait();

        let tmpl1 = self.templates.stats();
        let shred1 = self.pool.stats();
        let stats = QueryStats {
            wall,
            scan: outcome.profile,
            metrics: outcome.metrics,
            io_bytes: self.files.bytes_from_disk().saturating_sub(io0),
            compile_time: tmpl1.compile_time.saturating_sub(tmpl0.compile_time),
            template_hits: tmpl1.hits.saturating_sub(tmpl0.hits),
            template_misses: tmpl1.misses.saturating_sub(tmpl0.misses),
            // Saturating: these are windows over *shared* counters, and a
            // racing session's `get_full` converts a hit into a miss with a
            // decrement — a plain subtraction could underflow. Attribution
            // is approximate under concurrent load, exact when alone.
            shred_hits: shred1.hits.saturating_sub(shred0.hits),
            shred_misses: shred1.misses.saturating_sub(shred0.misses),
            posmaps_built,
            shreds_recorded,
            rows_out: batch.rows() as u64,
            workers: snap.config.parallelism,
            morsels: outcome.morsels,
            gate_wait,
            explain,
            trace: Some(trace),
        };
        self.charge_query(&stats, /* parallel = */ true, session);
        Ok(QueryResult { batch, column_names: output_names, stats })
    }

    /// Mirror a finished query's cache traffic into the engine-lifetime
    /// registry and charge the owning session. (Per-query deltas are read
    /// from shared cache counters; under concurrent load a delta may
    /// include a neighbor query's traffic — attribution is approximate
    /// while racing, exact when a session runs alone.)
    fn charge_query(&self, stats: &QueryStats, parallel: bool, session: &SessionMetrics) {
        self.metrics.query(parallel);
        self.metrics.template_traffic(stats.template_hits, stats.template_misses);
        self.metrics.shred_traffic(stats.shred_hits, stats.shred_misses);
        session.charge(&SessionQueryCharge {
            parallel,
            rows_out: stats.rows_out,
            io_bytes: stats.io_bytes,
            template_hits: stats.template_hits,
            template_misses: stats.template_misses,
            shred_hits: stats.shred_hits,
            shred_misses: stats.shred_misses,
            morsels: stats.morsels as u64,
            wall: stats.wall,
            gate_wait: stats.gate_wait,
        });
    }

    fn synthetic_query(
        &self,
        catalog: &Catalog,
        table: &str,
        cols: &[&str],
    ) -> Result<ResolvedQuery> {
        let def = catalog.get(table)?;
        let outputs = cols
            .iter()
            .map(|c| {
                def.schema
                    .field_by_name(c)
                    .map(|(i, f)| crate::plan::ResolvedOutput {
                        agg: None,
                        col: ColRef {
                            table: 0,
                            name: (*c).to_owned(),
                            schema_idx: i,
                            data_type: f.data_type,
                        },
                    })
                    .ok_or_else(|| EngineError::resolution(format!("no column {c} in {table}")))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(ResolvedQuery {
            tables: vec![table.to_owned()],
            join: None,
            filters: Vec::new(),
            outputs,
            group_by: None,
        })
    }

    fn absorb_harvests(&self, harvests: Harvests) -> Result<(usize, usize)> {
        let mut posmaps_built = 0;
        for (table, sink) in harvests.posmaps {
            let Some(new_map) = sink.lock().take() else { continue };
            if new_map.is_empty() {
                continue;
            }
            posmaps_built += 1;
            if new_map.rows() > 0 {
                self.stats.record_rows(&table, new_map.rows());
            }
            self.posmaps.merge_publish(&table, new_map)?;
        }
        let mut shreds_recorded = 0;
        for (table, column, sink) in harvests.shreds {
            let mut shred = match Arc::try_unwrap(sink) {
                Ok(m) => m.into_inner(),
                Err(arc) => arc.lock().clone(),
            };
            if shred.loaded_count() == 0 {
                continue;
            }
            // A scan that pruned or filtered rows records a *prefix* of the
            // table; grow the shred to the table's true row count (when
            // known) so it cannot masquerade as a full column.
            if let Some(rows) = self.stats.table_rows(&table) {
                if (shred.len() as u64) < rows {
                    shred.grow_to(rows as usize);
                }
            }
            shreds_recorded += 1;
            // A fully-materialized column is a free histogram sample — the
            // statistics side of "leverage information available at query
            // time".
            if shred.is_full() {
                self.stats.record_column(&table, &column, shred.dense());
            }
            self.pool.insert_merge(&table, &column, shred)?;
        }
        Ok((posmaps_built, shreds_recorded))
    }
}

/// The RAW query engine: a thin owner handle over the shared core. Every
/// method is `&self`; clients that want concurrent query streams take
/// [`RawEngine::session`] handles (the engine's own query methods charge a
/// built-in "driver" session, id 0).
pub struct RawEngine {
    shared: Arc<EngineShared>,
    driver: Arc<SessionMetrics>,
}

/// A cheap per-client handle over a shared engine: an id, a per-session
/// metrics registry, and an `Arc` to the shared core. Sessions are created
/// with [`RawEngine::session`], are `Send` (one per connection/thread), and
/// answer queries concurrently — all cache side effects (positional maps,
/// shreds, statistics, warm buffers, compiled templates) publish into the
/// shared layer where every other session sees them.
#[derive(Clone)]
pub struct Session {
    shared: Arc<EngineShared>,
    id: u64,
    metrics: Arc<SessionMetrics>,
}

impl RawEngine {
    /// Create an engine with the given configuration.
    pub fn new(config: EngineConfig) -> RawEngine {
        let templates = if config.simulated_compile_latency.is_zero() {
            TemplateCache::new()
        } else {
            TemplateCache::with_simulated_compile_latency(config.simulated_compile_latency)
        };
        let metrics = Arc::new(EngineMetrics::new());
        let files = Arc::new(FileBufferPool::with_metrics(Arc::clone(&metrics)));
        files.set_budget_bytes(if config.file_pool_bytes == 0 {
            u64::MAX
        } else {
            config.file_pool_bytes as u64
        });
        let shared = Arc::new(EngineShared {
            catalog: RwLock::new(Catalog::new()),
            pool: ShredPool::new(if config.shred_pool_bytes == 0 {
                usize::MAX
            } else {
                config.shred_pool_bytes
            }),
            config: RwLock::new(config),
            files,
            templates,
            posmaps: PosmapRegistry::default(),
            loaded: SharedTables::default(),
            root_files: SharedRootFiles::default(),
            stats: SharedStats::default(),
            metrics,
            workers: Mutex::new(None),
            next_session: AtomicU64::new(1),
        });
        RawEngine { shared, driver: Arc::new(SessionMetrics::new()) }
    }

    /// Open a new session over this engine. Sessions share every cache with
    /// the engine and each other; each carries its own metrics registry.
    pub fn session(&self) -> Session {
        Session {
            shared: Arc::clone(&self.shared),
            id: self.shared.next_session.fetch_add(1, Ordering::Relaxed),
            metrics: Arc::new(SessionMetrics::new()),
        }
    }

    /// Register a table over a raw file (visible to every session).
    pub fn register_table(&self, def: TableDef) {
        self.shared.catalog.write().register(def);
    }

    /// An owned snapshot of the catalog.
    pub fn catalog(&self) -> Catalog {
        self.shared.catalog.read().clone()
    }

    /// The file-buffer pool — experiments use it to insert virtual files and
    /// to flip between cold and warm runs.
    pub fn files(&self) -> &FileBufferPool {
        &self.shared.files
    }

    /// The engine-lifetime metrics registry: monotonic atomic counters for
    /// file-pool traffic, chunk-stream completions/waits/failures, cache
    /// hits, morsel dispatch, and the resident-buffer gauge. Never reset by
    /// a query; see `raw_trace::metrics` for the charge contract.
    pub fn metrics(&self) -> &Arc<EngineMetrics> {
        &self.shared.metrics
    }

    /// The driver session's metrics (queries issued directly on the engine
    /// handle rather than through a [`Session`]).
    pub fn driver_metrics(&self) -> &Arc<SessionMetrics> {
        &self.driver
    }

    /// An owned snapshot of the current configuration.
    pub fn config(&self) -> EngineConfig {
        self.shared.config.read().clone()
    }

    /// Replace the configuration (takes effect on the next query from any
    /// session; a changed `parallelism`/`admission_queries` rebuilds the
    /// global worker pool on that query).
    pub fn set_config(&self, config: EngineConfig) {
        *self.shared.config.write() = config;
    }

    /// The positional map known for `table`, if any (an owned handle; a
    /// later publish copy-on-writes and never mutates what this returned).
    pub fn posmap(&self, table: &str) -> Option<Arc<PositionalMap>> {
        self.shared.posmaps.get(table)
    }

    /// Shred-pool statistics.
    pub fn shred_pool_stats(&self) -> crate::shreds::ShredPoolStats {
        self.shared.pool.stats()
    }

    /// An owned snapshot of the table statistics (histograms and row
    /// counts) harvested from earlier queries — the input to `Adaptive`
    /// planning decisions.
    pub fn table_stats(&self) -> StatsRegistry {
        self.shared.stats.snapshot()
    }

    /// Drop compiled access paths only (ablation hook: forces "code
    /// generation" to rerun on the next query while keeping positional
    /// maps, shreds, and statistics).
    pub fn clear_template_cache(&self) {
        self.shared.templates.clear();
    }

    /// Drop file buffers (and parsed rootsim handles): the next query runs
    /// cold with respect to I/O, but adaptive state (positional maps,
    /// shreds, templates) survives — the engine forgets *data*, not
    /// *structure*.
    pub fn drop_file_caches(&self) {
        self.shared.files.evict_all();
        self.shared.root_files.clear();
    }

    /// Forget all adaptive state: positional maps, shreds, templates,
    /// harvested statistics, and DBMS-loaded tables. Combined with
    /// [`RawEngine::drop_file_caches`] this reproduces a fresh engine on
    /// the same catalog.
    pub fn reset_adaptive_state(&self) {
        self.shared.posmaps.clear();
        self.shared.pool.clear();
        self.shared.templates.clear();
        self.shared.loaded.clear();
        self.shared.stats.clear();
    }

    /// Answer a SQL query (charged to the driver session).
    pub fn query(&self, sql_text: &str) -> Result<QueryResult> {
        self.shared.query(sql_text, &self.driver)
    }

    /// Plan (without executing) and return the plan description.
    pub fn explain(&self, sql_text: &str) -> Result<Vec<String>> {
        self.shared.explain(sql_text)
    }

    /// EXPLAIN ANALYZE: execute the query and render its plan annotated
    /// with measured actuals — per-operator rows/time/prune counts, the
    /// parallel run shape, the totals line, and (for parallel runs) the
    /// per-morsel worker/gate-wait table. The result rows are discarded;
    /// callers that want both run [`RawEngine::query`] and render
    /// `stats.explain_analyze(..)` themselves.
    pub fn explain_analyze(&self, sql_text: &str) -> Result<String> {
        let result = self.query(sql_text)?;
        Ok(result.stats.explain_analyze(true))
    }

    /// Execute a resolved query (charged to the driver session).
    pub fn execute(&self, resolved: &ResolvedQuery) -> Result<QueryResult> {
        self.shared.execute(resolved, &self.driver)
    }

    /// Build a bottom scan over a registered table for a hand-assembled plan
    /// (respects mode, shred pool, recording, positional maps). `cols` are
    /// column names; `tag` labels provenance.
    pub fn plan_scan(&self, table: &str, cols: &[&str], tag: u32) -> Result<PlannedScan> {
        let snap = self.shared.snapshot();
        let resolved = self.shared.synthetic_query(&snap.catalog, table, cols)?;
        let col_refs: Vec<ColRef> = resolved.outputs.iter().map(|o| o.col.clone()).collect();
        let ctx = self.shared.planner_ctx(&snap);
        let (op, harvests) = physical::standalone_scan(&ctx, &resolved, &col_refs, TableTag(tag))?;
        Ok(PlannedScan { op, harvests })
    }

    /// Attach `cols` of `table` above an existing operator as a late scan
    /// (pool-backed when shreds exist; records fetched values). Batches
    /// flowing through `op` must carry provenance tagged `tag` for this
    /// table. For CSV tables a positional map must already exist.
    pub fn plan_attach(
        &self,
        op: Box<dyn Operator>,
        table: &str,
        cols: &[&str],
        tag: u32,
    ) -> Result<PlannedScan> {
        let snap = self.shared.snapshot();
        let resolved = self.shared.synthetic_query(&snap.catalog, table, cols)?;
        let col_refs: Vec<ColRef> = resolved.outputs.iter().map(|o| o.col.clone()).collect();
        let ctx = self.shared.planner_ctx(&snap);
        let (op, harvests) = physical::standalone_attach(
            &ctx,
            &resolved,
            op,
            &col_refs,
            /* multi = */ col_refs.len() > 1,
            TableTag(tag),
        )?;
        Ok(PlannedScan { op, harvests })
    }

    /// Run a hand-assembled operator tree under engine accounting and absorb
    /// the given side effects afterwards.
    pub fn run_custom(
        &self,
        mut root: Box<dyn Operator>,
        harvests: Harvests,
        column_names: Vec<String>,
    ) -> Result<QueryResult> {
        let wall_start = Instant::now();
        let io0 = self.shared.files.bytes_from_disk();
        let batches = drain(root.as_mut())?;
        let scan = root.scan_profile();
        let metrics = root.scan_metrics();
        drop(root);
        let batch = Batch::concat(&batches)?;
        let wall = wall_start.elapsed();
        let (posmaps_built, shreds_recorded) = self.shared.absorb_harvests(harvests)?;
        let stats = QueryStats {
            wall,
            scan,
            metrics,
            io_bytes: self.shared.files.bytes_from_disk() - io0,
            rows_out: batch.rows() as u64,
            posmaps_built,
            shreds_recorded,
            workers: 1,
            ..Default::default()
        };
        self.shared.charge_query(&stats, /* parallel = */ false, &self.driver);
        Ok(QueryResult { batch, column_names, stats })
    }

    /// Merge several harvest sets (custom plans with many scans).
    pub fn absorb_side_effects(&self, harvests: Harvests) -> Result<()> {
        self.shared.absorb_harvests(harvests)?;
        Ok(())
    }
}

impl Session {
    /// This session's id (unique within its engine; 0 is the engine's own
    /// driver session).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// This session's metrics registry.
    pub fn metrics(&self) -> &Arc<SessionMetrics> {
        &self.metrics
    }

    /// Answer a SQL query over the shared engine, charged to this session.
    pub fn query(&self, sql_text: &str) -> Result<QueryResult> {
        self.shared.query(sql_text, &self.metrics)
    }

    /// Execute a resolved query, charged to this session.
    pub fn execute(&self, resolved: &ResolvedQuery) -> Result<QueryResult> {
        self.shared.execute(resolved, &self.metrics)
    }

    /// Plan (without executing) and return the plan description.
    pub fn explain(&self, sql_text: &str) -> Result<Vec<String>> {
        self.shared.explain(sql_text)
    }

    /// EXPLAIN ANALYZE through this session (see
    /// [`RawEngine::explain_analyze`]).
    pub fn explain_analyze(&self, sql_text: &str) -> Result<String> {
        let result = self.query(sql_text)?;
        Ok(result.stats.explain_analyze(true))
    }

    /// Register a table over a raw file (visible to every session).
    pub fn register_table(&self, def: TableDef) {
        self.shared.catalog.write().register(def);
    }

    /// An owned snapshot of the catalog.
    pub fn catalog(&self) -> Catalog {
        self.shared.catalog.read().clone()
    }

    /// The positional map known for `table`, if any.
    pub fn posmap(&self, table: &str) -> Option<Arc<PositionalMap>> {
        self.shared.posmaps.get(table)
    }

    /// Shred-pool statistics for the shared pool.
    pub fn shred_pool_stats(&self) -> crate::shreds::ShredPoolStats {
        self.shared.pool.stats()
    }
}

/// Convenience: the `TableTag` the engine assigns to table index `i` in SQL
/// plans (custom plans may use any tag).
pub fn table_tag(i: usize) -> TableTag {
    TableTag(i as u32)
}
