//! Engine-level error type.

use std::fmt;

use raw_columnar::ColumnarError;
use raw_formats::FormatError;

/// Errors surfaced by the RAW engine.
#[derive(Debug)]
pub enum EngineError {
    /// SQL text failed to parse.
    Sql {
        /// What went wrong.
        message: String,
        /// Byte offset in the query text, when known.
        offset: Option<usize>,
    },
    /// Name resolution failed (unknown table/column, ambiguity…).
    Resolution {
        /// Human-readable description.
        message: String,
    },
    /// The planner could not build a physical plan for this configuration.
    Planning {
        /// Human-readable description.
        message: String,
    },
    /// Execution failed in the columnar layer.
    Columnar(ColumnarError),
    /// Execution failed in the raw-file layer.
    Format(FormatError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Sql { message, offset } => match offset {
                Some(o) => write!(f, "SQL error at byte {o}: {message}"),
                None => write!(f, "SQL error: {message}"),
            },
            EngineError::Resolution { message } => write!(f, "resolution error: {message}"),
            EngineError::Planning { message } => write!(f, "planning error: {message}"),
            EngineError::Columnar(e) => write!(f, "{e}"),
            EngineError::Format(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Columnar(e) => Some(e),
            EngineError::Format(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ColumnarError> for EngineError {
    fn from(e: ColumnarError) -> Self {
        EngineError::Columnar(e)
    }
}

impl From<FormatError> for EngineError {
    fn from(e: FormatError) -> Self {
        EngineError::Format(e)
    }
}

impl EngineError {
    /// Shorthand for resolution errors.
    pub fn resolution(message: impl Into<String>) -> EngineError {
        EngineError::Resolution { message: message.into() }
    }

    /// Shorthand for planning errors.
    pub fn planning(message: impl Into<String>) -> EngineError {
        EngineError::Planning { message: message.into() }
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, EngineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = EngineError::Sql { message: "expected FROM".into(), offset: Some(12) };
        assert_eq!(e.to_string(), "SQL error at byte 12: expected FROM");
        assert!(EngineError::resolution("no table t").to_string().contains("no table t"));
        assert!(EngineError::planning("boom").to_string().starts_with("planning"));
    }
}
