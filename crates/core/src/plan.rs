//! Name resolution: SQL AST + catalog → a resolved logical query.
//!
//! The resolved form is what the physical planner consumes: tables numbered
//! (0 = probe side, 1 = build side), every column reference bound to its
//! schema position and type, predicates and outputs attributed to their
//! owning table.

use raw_columnar::ops::AggKind;
use raw_columnar::{CmpOp, DataType, Value};

use crate::catalog::Catalog;
use crate::error::{EngineError, Result};
use crate::sql::{ColName, SelectStmt};

/// A column bound to a table and schema position.
#[derive(Debug, Clone, PartialEq)]
pub struct ColRef {
    /// Index into [`ResolvedQuery::tables`].
    pub table: usize,
    /// Column name (as declared in the schema).
    pub name: String,
    /// Position within the table's declared schema.
    pub schema_idx: usize,
    /// The column's type.
    pub data_type: DataType,
}

/// A resolved filter conjunct.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedFilter {
    /// Filtered column.
    pub col: ColRef,
    /// Comparison operator.
    pub op: CmpOp,
    /// Literal.
    pub value: Value,
}

/// A resolved equi-join (probe = table 0, build = table 1).
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedJoin {
    /// Join key on the probe side.
    pub probe_col: ColRef,
    /// Join key on the build side.
    pub build_col: ColRef,
}

/// A resolved output expression.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedOutput {
    /// Aggregate function, if any.
    pub agg: Option<AggKind>,
    /// The referenced column.
    pub col: ColRef,
}

/// A fully-resolved query, ready for physical planning.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedQuery {
    /// Table names; index 0 is the FROM (probe) table, index 1 the joined
    /// (build) table when present.
    pub tables: Vec<String>,
    /// The join, if any.
    pub join: Option<ResolvedJoin>,
    /// Conjunctive filters.
    pub filters: Vec<ResolvedFilter>,
    /// Output expressions.
    pub outputs: Vec<ResolvedOutput>,
    /// Grouping key, when the query has a `GROUP BY` clause.
    pub group_by: Option<ColRef>,
}

impl ResolvedQuery {
    /// Whether the query aggregates without grouping (vs. plain projection
    /// or grouped aggregation).
    pub fn is_aggregate(&self) -> bool {
        self.group_by.is_none() && self.outputs.first().is_some_and(|o| o.agg.is_some())
    }
}

/// Resolve `stmt` against `catalog`.
pub fn resolve(stmt: &SelectStmt, catalog: &Catalog) -> Result<ResolvedQuery> {
    let mut tables = vec![stmt.from.clone()];
    if let Some(j) = &stmt.join {
        if j.table == stmt.from {
            return Err(EngineError::resolution("self-joins need distinct table registrations"));
        }
        tables.push(j.table.clone());
    }
    for t in &tables {
        catalog.get(t)?; // existence check
    }

    let lookup = |col: &ColName| -> Result<ColRef> {
        match &col.table {
            Some(t) => {
                let idx = tables.iter().position(|name| name == t).ok_or_else(|| {
                    EngineError::resolution(format!("table {t} not in FROM/JOIN"))
                })?;
                bind(catalog, &tables, idx, &col.column)
            }
            None => {
                let mut found: Option<ColRef> = None;
                for idx in 0..tables.len() {
                    if let Ok(r) = bind(catalog, &tables, idx, &col.column) {
                        if found.is_some() {
                            return Err(EngineError::resolution(format!(
                                "column {} is ambiguous",
                                col.column
                            )));
                        }
                        found = Some(r);
                    }
                }
                found.ok_or_else(|| {
                    EngineError::resolution(format!("unknown column {}", col.column))
                })
            }
        }
    };

    let join = match &stmt.join {
        Some(j) => {
            let a = lookup(&j.left)?;
            let b = lookup(&j.right)?;
            let (probe_col, build_col) = match (a.table, b.table) {
                (0, 1) => (a, b),
                (1, 0) => (b, a),
                _ => return Err(EngineError::resolution("join keys must reference both tables")),
            };
            Some(ResolvedJoin { probe_col, build_col })
        }
        None => None,
    };

    let mut filters = Vec::with_capacity(stmt.predicates.len());
    for p in &stmt.predicates {
        filters.push(ResolvedFilter { col: lookup(&p.col)?, op: p.op, value: p.value.clone() });
    }

    let mut outputs = Vec::with_capacity(stmt.items.len());
    for item in &stmt.items {
        outputs.push(ResolvedOutput { agg: item.agg, col: lookup(&item.col)? });
    }
    let aggs = outputs.iter().filter(|o| o.agg.is_some()).count();

    let group_by = match &stmt.group_by {
        Some(g) => {
            let key = lookup(g)?;
            // Bare select items must be the grouping key; anything else has
            // no single value per group.
            for o in &outputs {
                if o.agg.is_none()
                    && (o.col.table != key.table || o.col.schema_idx != key.schema_idx)
                {
                    return Err(EngineError::resolution(format!(
                        "column {} must appear in an aggregate or be the GROUP BY key",
                        o.col.name
                    )));
                }
            }
            if aggs == 0 {
                return Err(EngineError::resolution(
                    "GROUP BY requires at least one aggregate in the select list",
                ));
            }
            Some(key)
        }
        None => {
            if aggs != 0 && aggs != outputs.len() {
                return Err(EngineError::resolution(
                    "cannot mix aggregates and bare columns without GROUP BY",
                ));
            }
            None
        }
    };

    Ok(ResolvedQuery { tables, join, filters, outputs, group_by })
}

fn bind(catalog: &Catalog, tables: &[String], table: usize, column: &str) -> Result<ColRef> {
    let def = catalog.get(&tables[table])?;
    let (schema_idx, field) = def.schema.field_by_name(column).ok_or_else(|| {
        EngineError::resolution(format!("no column {column} in table {}", tables[table]))
    })?;
    Ok(ColRef { table, name: column.to_owned(), schema_idx, data_type: field.data_type })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{TableDef, TableSource};
    use crate::sql::parse;
    use raw_columnar::Schema;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        for name in ["file1", "file2"] {
            c.register(TableDef {
                name: name.into(),
                schema: Schema::uniform(30, DataType::Int64),
                source: TableSource::Csv { path: format!("/data/{name}.csv").into() },
            });
        }
        c
    }

    #[test]
    fn resolves_simple_query() {
        let stmt = parse("SELECT MAX(col11) FROM file1 WHERE col1 < 42").unwrap();
        let q = resolve(&stmt, &catalog()).unwrap();
        assert_eq!(q.tables, vec!["file1"]);
        assert!(q.is_aggregate());
        assert_eq!(q.outputs[0].col.schema_idx, 10);
        assert_eq!(q.filters[0].col.schema_idx, 0);
        assert_eq!(q.filters[0].col.data_type, DataType::Int64);
    }

    #[test]
    fn resolves_join_and_normalizes_sides() {
        // Keys written build-first still normalize to (probe, build).
        let stmt =
            parse("SELECT MAX(file2.col11) FROM file1 JOIN file2 ON file2.col1 = file1.col1")
                .unwrap();
        let q = resolve(&stmt, &catalog()).unwrap();
        let j = q.join.unwrap();
        assert_eq!(j.probe_col.table, 0);
        assert_eq!(j.build_col.table, 1);
        assert_eq!(q.outputs[0].col.table, 1);
    }

    #[test]
    fn ambiguity_detected() {
        let stmt =
            parse("SELECT MAX(col11) FROM file1 JOIN file2 ON file1.col1 = file2.col1").unwrap();
        let err = resolve(&stmt, &catalog()).unwrap_err();
        assert!(err.to_string().contains("ambiguous"));
    }

    #[test]
    fn unknown_names_rejected() {
        let c = catalog();
        let stmt = parse("SELECT MAX(colX) FROM file1").unwrap();
        assert!(resolve(&stmt, &c).is_err());
        let stmt = parse("SELECT MAX(col1) FROM nope").unwrap();
        assert!(resolve(&stmt, &c).is_err());
        let stmt = parse("SELECT MAX(zz.col1) FROM file1").unwrap();
        assert!(resolve(&stmt, &c).is_err());
    }

    #[test]
    fn join_keys_must_span_tables() {
        let stmt =
            parse("SELECT MAX(col11) FROM file1 JOIN file2 ON file1.col1 = file1.col2").unwrap();
        assert!(resolve(&stmt, &catalog()).is_err());
    }

    #[test]
    fn mixed_select_list_rejected() {
        let stmt = parse("SELECT MAX(col1), col2 FROM file1").unwrap();
        assert!(resolve(&stmt, &catalog()).is_err());
    }

    #[test]
    fn self_join_rejected() {
        let stmt =
            parse("SELECT MAX(col1) FROM file1 JOIN file1 ON file1.col1 = file1.col2").unwrap();
        assert!(resolve(&stmt, &catalog()).is_err());
    }
}
