//! # raw-engine
//!
//! The RAW query engine: a prototype that **adapts itself to raw data files
//! and incoming queries** instead of forcing data through a loading step —
//! the primary contribution of *Adaptive Query Processing on RAW Data*
//! (Karpathiotakis et al., VLDB 2014).
//!
//! ## Architecture
//!
//! - [`catalog`] — table names, (possibly partial) schemas, file formats,
//!   and access abstractions per format.
//! - [`sql`] / [`plan`] — a mini-SQL front end covering the paper's query
//!   shapes, resolved against the catalog.
//! - [`physical`] — adaptive physical planning: per-query access-path
//!   selection (DBMS / external tables / in-situ / JIT), positional-map and
//!   shred-pool consultation, and scan-operator placement (column shreds,
//!   join Early/Intermediate/Late points). Its `parallel` submodule plans
//!   morsel-parallel execution (one segment-bounded pipeline per morsel,
//!   run on the `raw-exec` worker pool) for eligible queries when
//!   [`engine::EngineConfig::parallelism`] exceeds 1; `parallelism: 1`
//!   reproduces the serial engine bit-for-bit.
//! - [`shreds`] — the LRU pool of column shreds populated as a side effect
//!   of query execution.
//! - [`shared`] — the concurrent cache layer (read-locked lookups,
//!   merge-on-publish writes) that lets many [`engine::Session`] handles
//!   share one long-lived engine; see `CONCURRENCY.md` § "Sessions and the
//!   shared cache layer".
//! - [`cost`] / [`table_stats`] — the paper's §8 future-work cost model
//!   and the per-column histograms (harvested as query side effects) that
//!   feed it, powering the `Adaptive` strategy and placement choices.
//! - [`engine`] — the [`engine::RawEngine`] facade tying it all together,
//!   with [`engine::EngineConfig`] knobs matching every system configuration
//!   the paper evaluates.
//!
//! ## Quick start
//!
//! ```
//! use raw_engine::catalog::{TableDef, TableSource};
//! use raw_engine::engine::{EngineConfig, RawEngine};
//! use raw_columnar::{DataType, Schema, Value};
//!
//! let engine = RawEngine::new(EngineConfig::default());
//! // Register a (virtual) CSV file — real files work the same way.
//! engine.files().insert("/data/t.csv", b"1,10\n2,20\n3,30\n".to_vec());
//! engine.register_table(TableDef {
//!     name: "t".into(),
//!     schema: Schema::uniform(2, DataType::Int64),
//!     source: TableSource::Csv { path: "/data/t.csv".into() },
//! });
//!
//! let result = engine.query("SELECT MAX(col2) FROM t WHERE col1 < 3").unwrap();
//! assert_eq!(result.scalar().unwrap(), Value::Int64(20));
//! ```

pub mod catalog;
pub mod cost;
pub mod engine;
pub mod error;
pub mod physical;
pub mod plan;
pub mod shared;
pub mod shreds;
pub mod sql;
pub mod stats;
pub mod table_stats;

pub use catalog::{Catalog, TableDef, TableSource};
pub use cost::CostModel;
pub use engine::{
    AccessMode, EngineConfig, JoinPlacement, PlannedScan, QueryResult, RawEngine, Session,
    ShredStrategy,
};
pub use error::{EngineError, Result};
pub use stats::{MorselMeta, QueryStats, QueryTrace};
pub use table_stats::{ColumnHistogram, StatsRegistry};
