//! A cost model for raw-data access paths.
//!
//! The paper closes with: *"Future work includes … developing a
//! comprehensive cost model for our methods to enable their integration
//! with existing query optimizers"* (§8). This module is that cost model.
//! It prices the alternatives the planner weighs — full columns vs. column
//! shreds vs. speculative multi-column shreds (§5), and the Early /
//! Intermediate / Late materialization points around a join (§5.3.2) — in
//! nanoseconds per value, using the same cost taxonomy the paper's Figure 3
//! breakdown measures: *locate* (tokenize/parse or jump), *convert*
//! (text → native type), and *build* (populate columnar structures).
//!
//! The decisions it drives are regime decisions: Figures 5–9 and 11–12 show
//! crossovers that move by tens of percent of selectivity, so the model
//! needs the right *ratios* between cost terms, not cycle-accurate
//! absolutes. Defaults are calibrated against this crate's own benchmark
//! shapes; [`CostModel::measured`] re-derives the load-bearing constants by
//! timing microprobes at engine startup.
//!
//! Selectivities come from [`crate::table_stats::StatsRegistry`] histograms
//! that earlier queries harvested — the same "leverage information
//! available at query time" adaptivity that powers positional maps and the
//! shred pool. With no histogram yet, [`CostModel::default_selectivity`]
//! applies.

use std::time::Instant;

use raw_columnar::DataType;

use crate::engine::{JoinPlacement, ShredStrategy};

/// How a CSV column can be located for a selection-driven (late) read.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PosmapAvail {
    /// The column itself is tracked: one jump per row.
    Exact,
    /// A preceding column is tracked: jump, then skip this many fields.
    Nearest {
        /// Fields to parse over between the tracked and requested column.
        skip_fields: usize,
    },
    /// No usable tracked column: late reads are infeasible.
    None,
}

/// The raw-format families the model prices (formats with the same access
/// physics share a family).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScanFormat {
    /// Delimiter-separated text; late reads need a positional map.
    Csv(PosmapAvail),
    /// Fixed-width binary (fbin/ibin): offsets computable, no conversion.
    FixedBinary,
    /// Library-mediated nested format (rootsim): per-value API call.
    Root,
}

/// One filter stage as the model sees it: the column's type and the
/// estimated selectivity of the predicate on it.
#[derive(Debug, Clone, Copy)]
pub struct FilterDesc {
    /// Type of the filtered column.
    pub data_type: DataType,
    /// Estimated fraction of rows that survive this predicate.
    pub selectivity: f64,
}

/// Input to [`CostModel::choose_strategy`].
#[derive(Debug, Clone)]
pub struct StrategyInput {
    /// Format family of the scanned file.
    pub format: ScanFormat,
    /// Row count (any positive stand-in works: all terms scale linearly,
    /// so the decision is row-count-invariant).
    pub rows: f64,
    /// Filter stages in plan order.
    pub filters: Vec<FilterDesc>,
    /// Output (projected/aggregated) columns not already read by a filter.
    pub outputs: Vec<DataType>,
}

/// Which side of a hash join a table feeds (§5.3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinSide {
    /// Probe side: join output preserves this side's row order, so late
    /// fetches stay sequential ("Pipelined", Fig. 11).
    Pipelined,
    /// Build side: join output shuffles this side's rows, so late fetches
    /// become random accesses ("Pipeline-breaking", Fig. 12).
    Breaking,
}

/// Input to [`CostModel::choose_join_placement`].
#[derive(Debug, Clone)]
pub struct PlacementInput {
    /// Format family of this side's file.
    pub format: ScanFormat,
    /// This side's row count (stand-in allowed, as above).
    pub rows: f64,
    /// Combined selectivity of this side's own filters.
    pub filter_selectivity: f64,
    /// Fraction of this side's filtered rows that survive the join.
    pub join_retention: f64,
    /// Columns to materialize at the chosen point.
    pub cols: Vec<DataType>,
}

/// A priced decision: the choice plus the per-alternative estimates
/// (nanoseconds) that justify it, for plan explanations.
#[derive(Debug, Clone)]
pub struct Decision<C> {
    /// The winning alternative.
    pub choice: C,
    /// `(label, estimated ns)` per alternative considered.
    pub estimates: Vec<(&'static str, f64)>,
}

impl<C: std::fmt::Debug> Decision<C> {
    /// Render for an `EXPLAIN` line: `Shreds (full=1.2ms shreds=0.3ms …)`.
    pub fn explain(&self) -> String {
        let alts = self
            .estimates
            .iter()
            .map(|(l, ns)| format!("{l}={:.3}ms", ns / 1e6))
            .collect::<Vec<_>>()
            .join(" ");
        format!("{:?} ({alts})", self.choice)
    }
}

/// Per-operation cost constants, in nanoseconds.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Tokenizing CSV text, per byte (delimiter scan + branch).
    pub csv_tokenize_per_byte: f64,
    /// Average serialized field width in bytes (field + delimiter).
    pub csv_avg_field_bytes: f64,
    /// One positional-map jump (pointer chase + bounds).
    pub csv_posmap_jump: f64,
    /// Incrementally parsing over one field after a nearest-position jump.
    pub csv_skip_field: f64,
    /// Converting one integer field from text.
    pub convert_int: f64,
    /// Converting one float field from text (the paper: visibly pricier).
    pub convert_float: f64,
    /// Copying one fixed-width binary value (no conversion needed).
    pub bin_value: f64,
    /// Random-access surcharge for one out-of-order binary value.
    pub bin_random_extra: f64,
    /// One library-mediated read (rootsim `read_field`-style call).
    pub root_call: f64,
    /// Appending one value to a columnar structure.
    pub build_value: f64,
    /// Multiplier on late-fetch locate costs when the driving positions
    /// are shuffled (the Fig. 12 DTLB-miss regime).
    pub shuffle_penalty: f64,
    /// Reading one *additional adjacent* field after locating a row
    /// (the speculative multi-column discount, §5.3.1).
    pub nearby_field: f64,
    /// Selectivity assumed when no histogram is available.
    pub default_selectivity: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Ratios follow the measured shapes in EXPERIMENTS.md: ~1 ns/byte
        // tokenize, conversions tens of ns (floats ≈ 2× ints), binary reads
        // an order of magnitude cheaper than text, random access a few
        // times dearer than sequential.
        CostModel {
            csv_tokenize_per_byte: 1.0,
            csv_avg_field_bytes: 9.0,
            csv_posmap_jump: 25.0,
            csv_skip_field: 18.0,
            convert_int: 14.0,
            convert_float: 28.0,
            bin_value: 2.5,
            bin_random_extra: 7.0,
            root_call: 20.0,
            build_value: 8.0,
            shuffle_penalty: 3.5,
            nearby_field: 10.0,
            default_selectivity: 0.5,
        }
    }
}

impl CostModel {
    /// Calibrate the load-bearing constants by timing microprobes
    /// (~a millisecond of work). Constants that microprobes cannot see in
    /// isolation (penalties, averages) keep their default ratios.
    pub fn measured() -> CostModel {
        let mut m = CostModel::default();

        // Tokenize probe: scan bytes for delimiters.
        let row = b"123456789,987654321,555555555\n";
        let buf: Vec<u8> = row.iter().copied().cycle().take(64 * 1024).collect();
        let t = Instant::now();
        let mut fields = 0u64;
        for &b in &buf {
            if b == b',' || b == b'\n' {
                fields += 1;
            }
        }
        let tokenize = t.elapsed().as_nanos() as f64 / buf.len() as f64;
        std::hint::black_box(fields);

        // Integer conversion probe.
        let texts: Vec<&[u8]> = (0..1024).map(|i| &row[..9 - (i % 3)]).collect();
        let t = Instant::now();
        let mut acc = 0i64;
        for _ in 0..16 {
            for tx in &texts {
                let mut v = 0i64;
                for &b in *tx {
                    v = v * 10 + i64::from(b - b'0');
                }
                acc = acc.wrapping_add(v);
            }
        }
        let conv_int = t.elapsed().as_nanos() as f64 / (16.0 * texts.len() as f64);
        std::hint::black_box(acc);

        // Column-build probe: push i64s with occasional growth.
        let t = Instant::now();
        let mut col: Vec<i64> = Vec::new();
        for i in 0..32_768i64 {
            col.push(i);
        }
        let build = t.elapsed().as_nanos() as f64 / col.len() as f64;
        std::hint::black_box(col.len());

        // Binary copy probe: strided 8-byte loads.
        let bin: Vec<u8> = vec![7; 64 * 1024];
        let t = Instant::now();
        let mut sum = 0u64;
        for chunk in bin.chunks_exact(8) {
            sum = sum.wrapping_add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let bin_value = t.elapsed().as_nanos() as f64 / (bin.len() / 8) as f64;
        std::hint::black_box(sum);

        // Keep probes only if they returned sane (non-zero) timings —
        // coarse clocks can round tiny probes down to zero.
        if tokenize > 0.0 {
            m.csv_tokenize_per_byte = tokenize;
        }
        if conv_int > 0.0 {
            let ratio_float = m.convert_float / m.convert_int;
            m.convert_int = conv_int;
            m.convert_float = conv_int * ratio_float;
        }
        if build > 0.0 {
            m.build_value = build;
        }
        if bin_value > 0.0 {
            let ratio_rand = m.bin_random_extra / m.bin_value;
            m.bin_value = bin_value;
            m.bin_random_extra = bin_value * ratio_rand;
        }
        m
    }

    // -- per-value primitives ------------------------------------------------

    /// Converting one field of `dt` to its native representation.
    pub fn convert_cost(&self, format: ScanFormat, dt: DataType) -> f64 {
        match format {
            // Binary formats store native representations: no conversion.
            ScanFormat::FixedBinary | ScanFormat::Root => 0.0,
            ScanFormat::Csv(_) => match dt {
                DataType::Float32 | DataType::Float64 => self.convert_float,
                _ => self.convert_int,
            },
        }
    }

    /// Reading one value of `dt` in a *sequential full scan*.
    pub fn seq_value_cost(&self, format: ScanFormat, dt: DataType) -> f64 {
        let locate = match format {
            ScanFormat::Csv(_) => self.csv_tokenize_per_byte * self.csv_avg_field_bytes,
            ScanFormat::FixedBinary => self.bin_value,
            ScanFormat::Root => self.root_call,
        };
        locate + self.convert_cost(format, dt) + self.build_value
    }

    /// Locating one row's field for a *selection-driven late fetch*,
    /// excluding conversion and column building. `ordered` is false when
    /// the driving row ids have been shuffled (pipeline-breaking join
    /// side). Returns `None` when the format cannot serve late reads
    /// (CSV without a usable positional map).
    pub fn late_locate_cost(&self, format: ScanFormat, ordered: bool) -> Option<f64> {
        let locate = match format {
            ScanFormat::Csv(PosmapAvail::Exact) => self.csv_posmap_jump,
            ScanFormat::Csv(PosmapAvail::Nearest { skip_fields }) => {
                self.csv_posmap_jump + self.csv_skip_field * skip_fields as f64
            }
            ScanFormat::Csv(PosmapAvail::None) => return None,
            ScanFormat::FixedBinary => self.bin_value + self.bin_random_extra,
            ScanFormat::Root => self.root_call,
        };
        Some(if ordered { locate } else { locate * self.shuffle_penalty })
    }

    /// Reading one value of `dt` in a *selection-driven late fetch*
    /// (locate + convert + build), or `None` when infeasible.
    pub fn late_value_cost(&self, format: ScanFormat, dt: DataType, ordered: bool) -> Option<f64> {
        self.late_locate_cost(format, ordered)
            .map(|l| l + self.convert_cost(format, dt) + self.build_value)
    }

    /// Reading one value of `dt` in the *bottom scan* of a plan. Once a
    /// positional map exists, CSV bottom scans jump like late fetches do
    /// (the Q2-and-later regime in which adaptive decisions have data);
    /// without one they tokenize sequentially, like every other format's
    /// streaming read.
    pub fn bottom_value_cost(&self, format: ScanFormat, dt: DataType) -> f64 {
        match format {
            ScanFormat::Csv(PosmapAvail::None) | ScanFormat::FixedBinary | ScanFormat::Root => {
                self.seq_value_cost(format, dt)
            }
            ScanFormat::Csv(_) => self
                .late_value_cost(format, dt, true)
                .unwrap_or_else(|| self.seq_value_cost(format, dt)),
        }
    }

    // -- strategy choice (§5: full columns vs shreds vs multi-column) --------

    /// Price the three materialization strategies for one table's pipeline
    /// and pick the cheapest (§5.2, §5.3.1).
    pub fn choose_strategy(&self, input: &StrategyInput) -> Decision<ShredStrategy> {
        let n = input.rows.max(1.0);

        // Full columns: every needed column rides the bottom scan.
        let mut full = 0.0;
        for f in &input.filters {
            full += n * self.bottom_value_cost(input.format, f.data_type);
        }
        for &dt in &input.outputs {
            full += n * self.bottom_value_cost(input.format, dt);
        }

        // Column shreds: anchor on the first filter, fetch each later
        // column for surviving rows only.
        let mut shreds = 0.0;
        let mut feasible = true;
        let mut surviving = 1.0;
        for (i, f) in input.filters.iter().enumerate() {
            if i == 0 {
                shreds += n * self.bottom_value_cost(input.format, f.data_type);
            } else {
                match self.late_value_cost(input.format, f.data_type, true) {
                    Some(c) => shreds += n * surviving * c,
                    None => feasible = false,
                }
            }
            surviving *= f.selectivity.clamp(0.0, 1.0);
        }
        for &dt in &input.outputs {
            match self.late_value_cost(input.format, dt, true) {
                Some(c) => shreds += n * surviving * c,
                None => feasible = false,
            }
        }

        // Multi-column shreds: one locate pass after the first filter
        // speculatively reads all remaining columns (§5.3.1) — cheap
        // adjacent reads, but at the *first* filter's selectivity.
        let mut multi = 0.0;
        let mut multi_applicable =
            input.filters.len() + input.outputs.len() > 2 && !input.filters.is_empty();
        if let Some(first) = input.filters.first() {
            multi += n * self.bottom_value_cost(input.format, first.data_type);
            let after_first = first.selectivity.clamp(0.0, 1.0);
            let group: Vec<DataType> = input
                .filters
                .iter()
                .skip(1)
                .map(|f| f.data_type)
                .chain(input.outputs.iter().copied())
                .collect();
            match self.late_locate_cost(input.format, true) {
                Some(locate_once) => {
                    // One locate per surviving row, then adjacent reads.
                    multi += n * after_first * locate_once;
                    for dt in group {
                        multi += n
                            * after_first
                            * (self.nearby_field
                                + self.convert_cost(input.format, dt)
                                + self.build_value);
                    }
                }
                None => multi_applicable = false,
            }
        }

        let mut estimates = vec![("full", full)];
        if feasible {
            estimates.push(("shreds", shreds));
        }
        if multi_applicable {
            estimates.push(("multi", multi));
        }
        let choice = match estimates.iter().min_by(|a, b| a.1.total_cmp(&b.1)).map(|(l, _)| *l) {
            Some("shreds") => ShredStrategy::ColumnShreds,
            Some("multi") => ShredStrategy::MultiColumnShreds,
            _ => ShredStrategy::FullColumns,
        };
        Decision { choice, estimates }
    }

    // -- join placement (§5.3.2: Early / Intermediate / Late) ----------------

    /// Price the materialization points for one join side's projected
    /// columns and pick the cheapest (Figures 11 and 12).
    pub fn choose_join_placement(
        &self,
        side: JoinSide,
        input: &PlacementInput,
    ) -> Decision<JoinPlacement> {
        let n = input.rows.max(1.0);
        let f_sel = input.filter_selectivity.clamp(0.0, 1.0);
        let j_sel = (input.filter_selectivity * input.join_retention).clamp(0.0, 1.0);

        let seq: f64 = input.cols.iter().map(|&dt| self.bottom_value_cost(input.format, dt)).sum();
        let late_ordered: f64 = input
            .cols
            .iter()
            .map(|&dt| self.late_value_cost(input.format, dt, true).unwrap_or(f64::INFINITY))
            .sum();
        let late_shuffled: f64 = input
            .cols
            .iter()
            .map(|&dt| self.late_value_cost(input.format, dt, false).unwrap_or(f64::INFINITY))
            .sum();

        // Early: in the bottom scan, before anything filters.
        let early = n * seq;
        // Intermediate: after this side's own filters, still in row order.
        let intermediate = n * f_sel * late_ordered;
        // Late: above the join; ordered on the pipelined side, shuffled on
        // the breaking side.
        let late = match side {
            JoinSide::Pipelined => n * j_sel * late_ordered,
            JoinSide::Breaking => n * j_sel * late_shuffled,
        };

        let estimates = vec![("early", early), ("intermediate", intermediate), ("late", late)];
        let choice = match estimates.iter().min_by(|a, b| a.1.total_cmp(&b.1)).map(|(l, _)| *l) {
            Some("early") => JoinPlacement::Early,
            Some("intermediate") => JoinPlacement::Intermediate,
            _ => JoinPlacement::Late,
        };
        Decision { choice, estimates }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn csv_exact() -> ScanFormat {
        ScanFormat::Csv(PosmapAvail::Exact)
    }

    fn strategy_input(sel: f64, format: ScanFormat) -> StrategyInput {
        StrategyInput {
            format,
            rows: 1e6,
            filters: vec![FilterDesc { data_type: DataType::Int64, selectivity: sel }],
            outputs: vec![DataType::Int64],
        }
    }

    #[test]
    fn low_selectivity_prefers_shreds() {
        let m = CostModel::default();
        let d = m.choose_strategy(&strategy_input(0.01, csv_exact()));
        assert_eq!(d.choice, ShredStrategy::ColumnShreds, "{}", d.explain());
    }

    #[test]
    fn full_selectivity_prefers_full_columns() {
        // At 100% selectivity the shred path reads every value the full
        // path reads (Fig. 5: the curves converge and become equal); on
        // the tie the model keeps the simpler full-column plan.
        let m = CostModel::default();
        let d = m.choose_strategy(&strategy_input(1.0, csv_exact()));
        assert_eq!(d.choice, ShredStrategy::FullColumns, "{}", d.explain());
        let full = d.estimates.iter().find(|(l, _)| *l == "full").expect("has full").1;
        let shreds = d.estimates.iter().find(|(l, _)| *l == "shreds").expect("has shreds").1;
        assert!((full - shreds).abs() < full * 1e-9, "converged curves at 100%");
    }

    #[test]
    fn csv_without_posmap_forces_full() {
        let m = CostModel::default();
        let d = m.choose_strategy(&strategy_input(0.01, ScanFormat::Csv(PosmapAvail::None)));
        assert_eq!(d.choice, ShredStrategy::FullColumns);
        assert_eq!(d.estimates.len(), 1, "infeasible paths must not be offered");
    }

    #[test]
    fn multi_column_wins_with_many_nearby_fields_at_mid_selectivity() {
        // Fig. 9: beyond ~40% selectivity, per-stage locates dominate and
        // the speculative one-pass read wins.
        let m = CostModel::default();
        let input = StrategyInput {
            format: ScanFormat::Csv(PosmapAvail::Nearest { skip_fields: 3 }),
            rows: 1e6,
            filters: vec![
                FilterDesc { data_type: DataType::Int64, selectivity: 0.6 },
                FilterDesc { data_type: DataType::Int64, selectivity: 0.6 },
            ],
            outputs: vec![DataType::Int64],
        };
        let d = m.choose_strategy(&input);
        assert_eq!(d.choice, ShredStrategy::MultiColumnShreds, "{}", d.explain());
    }

    #[test]
    fn decision_scale_invariant_in_rows() {
        let m = CostModel::default();
        for sel in [0.01, 0.3, 0.7, 1.0] {
            let small = m.choose_strategy(&StrategyInput {
                rows: 100.0,
                ..strategy_input(sel, csv_exact())
            });
            let large =
                m.choose_strategy(&StrategyInput { rows: 1e9, ..strategy_input(sel, csv_exact()) });
            assert_eq!(small.choice, large.choice, "sel={sel}");
        }
    }

    #[test]
    fn pipelined_side_prefers_late_at_low_selectivity() {
        let m = CostModel::default();
        let d = m.choose_join_placement(
            JoinSide::Pipelined,
            &PlacementInput {
                format: csv_exact(),
                rows: 1e6,
                filter_selectivity: 1.0,
                join_retention: 0.05,
                cols: vec![DataType::Int64],
            },
        );
        assert_eq!(d.choice, JoinPlacement::Late, "{}", d.explain());
    }

    #[test]
    fn breaking_side_abandons_late_at_high_selectivity() {
        // Fig. 12: shuffled positions make late fetches random; past mid
        // selectivity late loses even to early.
        let m = CostModel::default();
        let mk = |ret: f64| PlacementInput {
            format: csv_exact(),
            rows: 1e6,
            filter_selectivity: 1.0,
            join_retention: ret,
            cols: vec![DataType::Int64],
        };
        let low = m.choose_join_placement(JoinSide::Breaking, &mk(0.02));
        assert_eq!(low.choice, JoinPlacement::Late, "{}", low.explain());
        let high = m.choose_join_placement(JoinSide::Breaking, &mk(1.0));
        assert_ne!(high.choice, JoinPlacement::Late, "{}", high.explain());
    }

    #[test]
    fn breaking_side_intermediate_between_regimes() {
        // With filters pre-shrinking the side, the intermediate point reads
        // fewer rows than early and stays sequential, beating shuffled late
        // at high join retention (Fig. 12 "Intermediate").
        let m = CostModel::default();
        let d = m.choose_join_placement(
            JoinSide::Breaking,
            &PlacementInput {
                format: csv_exact(),
                rows: 1e6,
                filter_selectivity: 0.4,
                join_retention: 1.0,
                cols: vec![DataType::Int64],
            },
        );
        assert_eq!(d.choice, JoinPlacement::Intermediate, "{}", d.explain());
    }

    #[test]
    fn binary_formats_have_no_conversion_cost() {
        let m = CostModel::default();
        assert_eq!(m.convert_cost(ScanFormat::FixedBinary, DataType::Float64), 0.0);
        assert_eq!(m.convert_cost(ScanFormat::Root, DataType::Float64), 0.0);
        assert!(m.convert_cost(csv_exact(), DataType::Float64) > 0.0);
        assert!(
            m.convert_cost(csv_exact(), DataType::Float64)
                > m.convert_cost(csv_exact(), DataType::Int64)
        );
    }

    #[test]
    fn measured_model_is_sane() {
        let m = CostModel::measured();
        assert!(m.csv_tokenize_per_byte > 0.0);
        assert!(m.convert_int > 0.0);
        assert!(m.convert_float > m.convert_int);
        assert!(m.build_value > 0.0);
        assert!(m.bin_value > 0.0);
        assert!(m.shuffle_penalty > 1.0);
        // The measured model must drive the same regime decisions.
        let d = m.choose_strategy(&strategy_input(0.01, csv_exact()));
        assert_eq!(d.choice, ShredStrategy::ColumnShreds);
    }

    #[test]
    fn explain_renders_alternatives() {
        let m = CostModel::default();
        let d = m.choose_strategy(&strategy_input(0.1, csv_exact()));
        let line = d.explain();
        assert!(line.contains("full="), "{line}");
        assert!(line.contains("shreds="), "{line}");
        assert!(line.contains("ms"), "{line}");
    }
}
