//! Adaptive table statistics: per-column histograms harvested from queries.
//!
//! The paper's planner decides *where* to place scan operators (full columns
//! vs. column shreds, join Early/Intermediate/Late) but leaves "a
//! comprehensive cost model … to enable their integration with existing
//! query optimizers" as future work (§8). That cost model needs selectivity
//! estimates, and RAW's design principle — *leverage information available
//! at query time* — suggests where to get them: as a side effect of earlier
//! queries, exactly like positional maps and column shreds.
//!
//! [`StatsRegistry`] keeps one equi-width [`ColumnHistogram`] per (table,
//! column) pair. Histograms are built when a query materializes a full
//! column (the engine already records those into the shred pool, so the
//! values pass through our hands for free) and from DBMS-mode loads. A
//! histogram answers "what fraction of rows satisfies `col < X`?" with
//! linear interpolation inside the boundary bucket — the textbook
//! Selinger-style estimate, adequate for the coarse regime decisions the
//! cost model makes (the crossovers in Figures 5–9, 11, 12 move by whole
//! tens of percent of selectivity).

use std::collections::HashMap;

use raw_columnar::{CmpOp, Column, DataType, Value};

/// Number of equi-width buckets per histogram.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Columns longer than this are sampled with a stride when building
/// histograms, bounding the build cost for very large shreds.
const SAMPLE_CAP: usize = 1 << 16;

/// An equi-width histogram over one numeric column.
#[derive(Debug, Clone)]
pub struct ColumnHistogram {
    data_type: DataType,
    min: f64,
    max: f64,
    buckets: Vec<u64>,
    /// Total values represented (sampled count, not necessarily row count).
    count: u64,
    /// Rows in the column the histogram was built from.
    rows: u64,
}

impl ColumnHistogram {
    /// Build a histogram from a dense column. Returns `None` for
    /// non-numeric columns or empty input.
    pub fn build(col: &Column) -> Option<ColumnHistogram> {
        if !col.data_type().is_numeric() || col.is_empty() {
            return None;
        }
        let stride = (col.len() / SAMPLE_CAP).max(1);
        let values = numeric_values(col, stride);
        if values.is_empty() {
            return None;
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &v in &values {
            min = min.min(v);
            max = max.max(v);
        }
        if !min.is_finite() || !max.is_finite() {
            return None;
        }
        let width = (max - min).max(f64::MIN_POSITIVE);
        let mut buckets = vec![0u64; HISTOGRAM_BUCKETS];
        for &v in &values {
            let b = (((v - min) / width) * HISTOGRAM_BUCKETS as f64) as usize;
            buckets[b.min(HISTOGRAM_BUCKETS - 1)] += 1;
        }
        Some(ColumnHistogram {
            data_type: col.data_type(),
            min,
            max,
            buckets,
            count: values.len() as u64,
            rows: col.len() as u64,
        })
    }

    /// The column type the histogram describes.
    pub fn data_type(&self) -> DataType {
        self.data_type
    }

    /// Rows in the column this histogram was built from.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Observed minimum.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Observed maximum.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Estimated fraction of values strictly below `x` (linear
    /// interpolation within the boundary bucket).
    pub fn fraction_below(&self, x: f64) -> f64 {
        if x <= self.min {
            return 0.0;
        }
        if x > self.max {
            return 1.0;
        }
        let width = (self.max - self.min).max(f64::MIN_POSITIVE);
        let pos = (x - self.min) / width * HISTOGRAM_BUCKETS as f64;
        let full = (pos.floor() as usize).min(HISTOGRAM_BUCKETS);
        let frac = pos - pos.floor();
        let mut below: f64 = self.buckets[..full].iter().map(|&c| c as f64).sum();
        if full < HISTOGRAM_BUCKETS {
            below += self.buckets[full] as f64 * frac;
        }
        (below / self.count as f64).clamp(0.0, 1.0)
    }

    /// Estimated selectivity of `col <op> lit`.
    pub fn selectivity(&self, op: CmpOp, lit: &Value) -> Option<f64> {
        let x = lit.as_f64()?;
        let below = self.fraction_below(x);
        // Equality: assume values spread uniformly within the boundary
        // bucket; one "distinct value slot" per bucket is the classic
        // fallback without distinct-count tracking.
        let eq = if x < self.min || x > self.max {
            0.0
        } else {
            (self.buckets[self.bucket_of(x)] as f64 / self.count as f64)
                / bucket_slots(self.data_type, self.min, self.max)
        };
        let sel = match op {
            CmpOp::Lt => below,
            CmpOp::Le => below + eq,
            CmpOp::Gt => 1.0 - below - eq,
            CmpOp::Ge => 1.0 - below,
            CmpOp::Eq => eq,
            CmpOp::Ne => 1.0 - eq,
        };
        Some(sel.clamp(0.0, 1.0))
    }

    fn bucket_of(&self, x: f64) -> usize {
        let width = (self.max - self.min).max(f64::MIN_POSITIVE);
        let b = ((x - self.min) / width * HISTOGRAM_BUCKETS as f64) as usize;
        b.min(HISTOGRAM_BUCKETS - 1)
    }
}

/// How many "equality slots" a bucket holds: integer columns narrower than
/// the bucket width are exact; everything else uses a nominal slot count.
fn bucket_slots(dt: DataType, min: f64, max: f64) -> f64 {
    let span = (max - min) / HISTOGRAM_BUCKETS as f64;
    match dt {
        DataType::Int32 | DataType::Int64 => span.max(1.0),
        _ => span.max(100.0),
    }
}

fn numeric_values(col: &Column, stride: usize) -> Vec<f64> {
    fn strided<T: Copy, F: Fn(T) -> f64>(xs: &[T], stride: usize, f: F) -> Vec<f64> {
        xs.iter().step_by(stride).map(|&v| f(v)).collect()
    }
    match col.data_type() {
        DataType::Int32 => strided(col.as_i32().unwrap_or(&[]), stride, f64::from),
        DataType::Int64 => strided(col.as_i64().unwrap_or(&[]), stride, |v| v as f64),
        DataType::Float32 => strided(col.as_f32().unwrap_or(&[]), stride, f64::from),
        DataType::Float64 => strided(col.as_f64().unwrap_or(&[]), stride, |v| v),
        _ => Vec::new(),
    }
    .into_iter()
    .filter(|v| v.is_finite())
    .collect()
}

/// Registry of histograms and row counts the engine accumulates across
/// queries. Keys are `(table, column)` names.
#[derive(Debug, Default, Clone)]
pub struct StatsRegistry {
    histograms: HashMap<(String, String), ColumnHistogram>,
    rows: HashMap<String, u64>,
}

impl StatsRegistry {
    /// An empty registry.
    pub fn new() -> StatsRegistry {
        StatsRegistry::default()
    }

    /// Record a histogram built from a fully-materialized column, and the
    /// table's row count along with it.
    pub fn record_column(&mut self, table: &str, column: &str, col: &Column) {
        if let Some(h) = ColumnHistogram::build(col) {
            self.record_rows(table, h.rows());
            self.histograms.insert((table.to_owned(), column.to_owned()), h);
        }
    }

    /// Record (or overwrite) a table's row count.
    pub fn record_rows(&mut self, table: &str, rows: u64) {
        self.rows.insert(table.to_owned(), rows);
    }

    /// The histogram for a column, if one has been harvested.
    pub fn histogram(&self, table: &str, column: &str) -> Option<&ColumnHistogram> {
        self.histograms.get(&(table.to_owned(), column.to_owned()))
    }

    /// Known row count for a table.
    pub fn table_rows(&self, table: &str) -> Option<u64> {
        self.rows.get(table).copied()
    }

    /// Estimated selectivity of `table.column <op> lit`, or `None` when no
    /// histogram has been harvested yet.
    pub fn estimate(&self, table: &str, column: &str, op: CmpOp, lit: &Value) -> Option<f64> {
        self.histogram(table, column)?.selectivity(op, lit)
    }

    /// Number of histograms held.
    pub fn len(&self) -> usize {
        self.histograms.len()
    }

    /// Whether any histogram has been harvested.
    pub fn is_empty(&self) -> bool {
        self.histograms.is_empty()
    }

    /// Forget everything (used by `reset_adaptive_state`).
    pub fn clear(&mut self) {
        self.histograms.clear();
        self.rows.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_i64(n: i64) -> Column {
        let vals: Vec<Value> = (0..n).map(Value::Int64).collect();
        Column::from_values(DataType::Int64, &vals).unwrap()
    }

    #[test]
    fn uniform_column_estimates_linearly() {
        let h = ColumnHistogram::build(&uniform_i64(10_000)).unwrap();
        for pct in [10u32, 25, 50, 75, 90] {
            let x = Value::Int64(i64::from(pct) * 100);
            let est = h.selectivity(CmpOp::Lt, &x).unwrap();
            let truth = f64::from(pct) / 100.0;
            assert!((est - truth).abs() < 0.02, "sel(col < {pct}%) = {est}, want ~{truth}");
        }
    }

    #[test]
    fn boundary_literals_clamp() {
        let h = ColumnHistogram::build(&uniform_i64(1000)).unwrap();
        assert_eq!(h.selectivity(CmpOp::Lt, &Value::Int64(-5)).unwrap(), 0.0);
        assert_eq!(h.selectivity(CmpOp::Lt, &Value::Int64(10_000)).unwrap(), 1.0);
        assert_eq!(h.selectivity(CmpOp::Ge, &Value::Int64(-5)).unwrap(), 1.0);
        assert_eq!(h.selectivity(CmpOp::Gt, &Value::Int64(10_000)).unwrap(), 0.0);
    }

    #[test]
    fn complementary_operators_sum_to_one() {
        let h = ColumnHistogram::build(&uniform_i64(5000)).unwrap();
        let x = Value::Int64(1234);
        let lt = h.selectivity(CmpOp::Lt, &x).unwrap();
        let ge = h.selectivity(CmpOp::Ge, &x).unwrap();
        assert!((lt + ge - 1.0).abs() < 1e-9);
        let le = h.selectivity(CmpOp::Le, &x).unwrap();
        let gt = h.selectivity(CmpOp::Gt, &x).unwrap();
        assert!((le + gt - 1.0).abs() < 1e-9);
        let eq = h.selectivity(CmpOp::Eq, &x).unwrap();
        let ne = h.selectivity(CmpOp::Ne, &x).unwrap();
        assert!((eq + ne - 1.0).abs() < 1e-9);
        assert!(eq < 0.01, "point equality on 5000 distinct values, got {eq}");
    }

    #[test]
    fn skewed_column_beats_uniform_assumption() {
        // 90% of the values are 0..100, 10% are 900..1000.
        let mut vals: Vec<Value> = Vec::new();
        for i in 0..9000 {
            vals.push(Value::Int64(i % 100));
        }
        for i in 0..1000 {
            vals.push(Value::Int64(900 + i % 100));
        }
        let col = Column::from_values(DataType::Int64, &vals).unwrap();
        let h = ColumnHistogram::build(&col).unwrap();
        let est = h.selectivity(CmpOp::Lt, &Value::Int64(500)).unwrap();
        assert!((est - 0.9).abs() < 0.02, "skew-aware estimate, got {est}");
    }

    #[test]
    fn non_numeric_and_empty_rejected() {
        let utf8 = Column::from_values(
            DataType::Utf8,
            &[Value::Utf8("a".into()), Value::Utf8("b".into())],
        )
        .unwrap();
        assert!(ColumnHistogram::build(&utf8).is_none());
        assert!(ColumnHistogram::build(&Column::empty(DataType::Int64)).is_none());
    }

    #[test]
    fn constant_column_handles_zero_width() {
        let vals: Vec<Value> = (0..100).map(|_| Value::Int64(7)).collect();
        let col = Column::from_values(DataType::Int64, &vals).unwrap();
        let h = ColumnHistogram::build(&col).unwrap();
        assert_eq!(h.selectivity(CmpOp::Lt, &Value::Int64(7)).unwrap(), 0.0);
        assert_eq!(h.selectivity(CmpOp::Ge, &Value::Int64(7)).unwrap(), 1.0);
        assert!(h.selectivity(CmpOp::Eq, &Value::Int64(7)).unwrap() > 0.5);
    }

    #[test]
    fn large_columns_are_sampled() {
        let h = ColumnHistogram::build(&uniform_i64(200_000)).unwrap();
        assert!(h.rows() == 200_000);
        assert!(h.count <= (SAMPLE_CAP as u64) * 2);
        let est = h.selectivity(CmpOp::Lt, &Value::Int64(100_000)).unwrap();
        assert!((est - 0.5).abs() < 0.02);
    }

    #[test]
    fn registry_roundtrip_and_reset() {
        let mut reg = StatsRegistry::new();
        assert!(reg.is_empty());
        reg.record_column("t", "col1", &uniform_i64(1000));
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.table_rows("t"), Some(1000));
        let sel = reg.estimate("t", "col1", CmpOp::Lt, &Value::Int64(500)).unwrap();
        assert!((sel - 0.5).abs() < 0.02);
        assert!(reg.estimate("t", "other", CmpOp::Lt, &Value::Int64(1)).is_none());
        assert!(reg.estimate("zz", "col1", CmpOp::Lt, &Value::Int64(1)).is_none());
        reg.clear();
        assert!(reg.is_empty());
        assert_eq!(reg.table_rows("t"), None);
    }

    #[test]
    fn utf8_literal_yields_no_estimate() {
        let mut reg = StatsRegistry::new();
        reg.record_column("t", "c", &uniform_i64(10));
        assert!(reg.estimate("t", "c", CmpOp::Eq, &Value::Utf8("x".into())).is_none());
    }
}
