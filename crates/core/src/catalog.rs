//! The RAW catalog (§3).
//!
//! "Each file exposed to RAW is given a name … RAW maintains a catalog with
//! information about raw data file instances such as the original filename,
//! the schema and the file format." Schemas may be *partial* — a ROOT user
//! declares only the branches of interest. For each table the catalog also
//! records the access abstractions the format supports (sequential and/or
//! id-based index scans), which the planner maps to concrete access paths.

use std::collections::HashMap;
use std::path::PathBuf;

use raw_columnar::Schema;

use crate::error::{EngineError, Result};

/// Where a table's rows physically live.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableSource {
    /// A CSV file; one table per file.
    Csv {
        /// Path to the raw file.
        path: PathBuf,
    },
    /// A fixed-width binary file; one table per file.
    Fbin {
        /// Path to the raw file.
        path: PathBuf,
    },
    /// A paged fixed-width binary file with an embedded zone index (the
    /// HDF-like family of §4.1); one table per file. JIT access paths push
    /// predicates into the index; general-purpose scans cannot.
    Ibin {
        /// Path to the raw file.
        path: PathBuf,
    },
    /// The event-level view of a rootsim file (scalar branches).
    RootEvents {
        /// Path to the raw file.
        path: PathBuf,
    },
    /// A satellite view of a rootsim file: one row per item of `collection`,
    /// with the owning event's `parent_scalar` branch (if named) exposed as
    /// a column — the id-based sub-object access of §3.
    RootCollection {
        /// Path to the raw file.
        path: PathBuf,
        /// Collection name within the file.
        collection: String,
        /// Scalar branch replicated per item (typically `"eventID"`).
        parent_scalar: Option<String>,
    },
}

impl TableSource {
    /// The raw file backing this table.
    pub fn path(&self) -> &PathBuf {
        match self {
            TableSource::Csv { path }
            | TableSource::Fbin { path }
            | TableSource::Ibin { path }
            | TableSource::RootEvents { path }
            | TableSource::RootCollection { path, .. } => path,
        }
    }

    /// Whether this format supports index-based (row-addressable) access
    /// without a positional map.
    pub fn directly_addressable(&self) -> bool {
        !matches!(self, TableSource::Csv { .. })
    }

    /// Short format name for plan explanations.
    pub fn format_name(&self) -> &'static str {
        match self {
            TableSource::Csv { .. } => "csv",
            TableSource::Fbin { .. } => "fbin",
            TableSource::Ibin { .. } => "ibin",
            TableSource::RootEvents { .. } => "rootsim-events",
            TableSource::RootCollection { .. } => "rootsim-collection",
        }
    }
}

/// One registered table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableDef {
    /// Table name (unique within the catalog).
    pub name: String,
    /// Declared (possibly partial) schema. For flat files, each field's
    /// `source_ordinal` is its column position in the file; for rootsim
    /// tables, fields are resolved by *name* against the file.
    pub schema: Schema,
    /// Physical source.
    pub source: TableSource,
}

/// Name → table registry.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: HashMap<String, TableDef>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register (or replace) a table definition.
    pub fn register(&mut self, def: TableDef) {
        self.tables.insert(def.name.clone(), def);
    }

    /// Remove a table; returns whether it existed.
    pub fn deregister(&mut self, name: &str) -> bool {
        self.tables.remove(name).is_some()
    }

    /// Look a table up by name.
    pub fn get(&self, name: &str) -> Result<&TableDef> {
        self.tables
            .get(name)
            .ok_or_else(|| EngineError::resolution(format!("unknown table {name}")))
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Registered table names (sorted, for stable output).
    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raw_columnar::DataType;

    fn def(name: &str) -> TableDef {
        TableDef {
            name: name.into(),
            schema: Schema::uniform(3, DataType::Int64),
            source: TableSource::Csv { path: PathBuf::from(format!("/data/{name}.csv")) },
        }
    }

    #[test]
    fn register_lookup_deregister() {
        let mut c = Catalog::new();
        c.register(def("t1"));
        c.register(def("t2"));
        assert!(c.contains("t1"));
        assert_eq!(c.get("t1").unwrap().source.format_name(), "csv");
        assert!(c.get("zz").is_err());
        assert_eq!(c.table_names(), vec!["t1", "t2"]);
        assert!(c.deregister("t1"));
        assert!(!c.deregister("t1"));
    }

    #[test]
    fn reregister_replaces() {
        let mut c = Catalog::new();
        c.register(def("t"));
        let mut d = def("t");
        d.source = TableSource::Fbin { path: PathBuf::from("/data/t.bin") };
        c.register(d);
        assert_eq!(c.get("t").unwrap().source.format_name(), "fbin");
    }

    #[test]
    fn addressability() {
        assert!(!TableSource::Csv { path: "x".into() }.directly_addressable());
        assert!(TableSource::Fbin { path: "x".into() }.directly_addressable());
        assert!(TableSource::RootEvents { path: "x".into() }.directly_addressable());
        let rc = TableSource::RootCollection {
            path: "x".into(),
            collection: "muons".into(),
            parent_scalar: Some("eventID".into()),
        };
        assert!(rc.directly_addressable());
        assert_eq!(rc.format_name(), "rootsim-collection");
    }
}
