//! The shared concurrent cache layer behind a long-lived engine.
//!
//! A [`crate::RawEngine`] used to be a single-driver object: one `&mut self`
//! query at a time, adaptive state in plain `HashMap`s. The server step
//! (many sessions over one engine, see `CONCURRENCY.md` § "Sessions and the
//! shared cache layer") moves every piece of cross-query state behind
//! reader-friendly concurrent wrappers with one shared protocol:
//!
//! - **lookups take a read lock** (many concurrent planners, no writer
//!   blocking readers of a different table) and return owned `Arc` handles,
//!   so a query plans against an immutable snapshot that later publishes
//!   cannot mutate out from under it;
//! - **publishes merge under a short write lock** (*merge-on-publish*): two
//!   queries racing to publish overlapping side effects both win — partial
//!   positional maps merge, the first complete value of an idempotent cache
//!   entry wins and the loser's duplicate is dropped. This generalizes the
//!   in-flight-read joining `FileBufferPool::read` already does for file
//!   bytes to maps, loaded tables, parsed rootsim handles, and statistics.
//!
//! Copy-on-write matters for the maps: a publish into an entry some running
//! query still references goes through [`Arc::make_mut`], which clones
//! rather than mutating the shared value — the running query keeps the
//! snapshot it planned against, bitwise.
//!
//! Lock inventory and ordering are documented in `CONCURRENCY.md`; none of
//! these wrappers ever holds its lock while calling into another one.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use parking_lot::RwLock;

use raw_columnar::{CmpOp, Column, MemTable, Value};
use raw_formats::rootsim::RootSimFile;
use raw_posmap::PositionalMap;

use crate::error::{EngineError, Result};
use crate::table_stats::StatsRegistry;

/// The statistics registry behind a read-write lock: histogram harvesting
/// is merge-on-publish (last full sample wins — samples of the same column
/// are equivalent), estimates are read-locked lookups.
#[derive(Debug, Default)]
pub struct SharedStats {
    inner: RwLock<StatsRegistry>,
}

impl SharedStats {
    pub fn record_column(&self, table: &str, column: &str, col: &Column) {
        self.inner.write().record_column(table, column, col);
    }

    pub fn record_rows(&self, table: &str, rows: u64) {
        self.inner.write().record_rows(table, rows);
    }

    pub fn table_rows(&self, table: &str) -> Option<u64> {
        self.inner.read().table_rows(table)
    }

    pub fn estimate(&self, table: &str, column: &str, op: CmpOp, lit: &Value) -> Option<f64> {
        self.inner.read().estimate(table, column, op, lit)
    }

    /// An owned copy for callers that want a stable view (`table_stats()`).
    pub fn snapshot(&self) -> StatsRegistry {
        self.inner.read().clone()
    }

    pub fn clear(&self) {
        self.inner.write().clear();
    }
}

/// Per-table positional maps behind a read-write lock with merge-on-publish
/// semantics: concurrent queries each harvest a (possibly partial) map and
/// both publishes land — entries union via [`PositionalMap::merge`], and a
/// publish into a map another query still holds clones first
/// ([`Arc::make_mut`]) so outstanding snapshots never change underneath a
/// running plan.
#[derive(Debug, Default)]
pub struct PosmapRegistry {
    inner: RwLock<HashMap<String, Arc<PositionalMap>>>,
}

impl PosmapRegistry {
    pub fn get(&self, table: &str) -> Option<Arc<PositionalMap>> {
        self.inner.read().get(table).cloned()
    }

    /// Owned view of every table's current map — the per-query snapshot the
    /// planner reads from, immune to concurrent publishes.
    pub fn snapshot(&self) -> HashMap<String, Arc<PositionalMap>> {
        self.inner.read().clone()
    }

    /// Merge-on-publish: union `new_map` into the table's map (insert when
    /// absent). Holding the write lock across the merge makes racing
    /// publishes serialize; each sees the other's entries already applied
    /// or applies on top — no harvest is ever lost.
    pub fn merge_publish(&self, table: &str, new_map: PositionalMap) -> Result<()> {
        let mut maps = self.inner.write();
        match maps.get_mut(table) {
            Some(existing) => {
                let merged = Arc::make_mut(existing);
                merged.merge(&new_map).map_err(|e| {
                    EngineError::planning(format!("positional map merge failed: {e}"))
                })?;
            }
            None => {
                maps.insert(table.to_owned(), Arc::new(new_map));
            }
        }
        Ok(())
    }

    pub fn clear(&self) {
        self.inner.write().clear();
    }
}

/// DBMS-mode loaded tables behind a read-write lock with first-publish-wins
/// semantics: two sessions cold-loading the same table race, both builds
/// are equivalent (same file, same schema), the first insert wins and the
/// loser adopts the winner's `Arc` — exactly one copy stays resident.
#[derive(Debug, Default)]
pub struct SharedTables {
    inner: RwLock<HashMap<String, Arc<MemTable>>>,
}

impl SharedTables {
    pub fn get(&self, name: &str) -> Option<Arc<MemTable>> {
        self.inner.read().get(name).cloned()
    }

    /// Publish a loaded table; returns the winning handle (an earlier racing
    /// publish, or `table` itself when this call got there first).
    pub fn publish(&self, name: &str, table: Arc<MemTable>) -> Arc<MemTable> {
        let mut tables = self.inner.write();
        Arc::clone(tables.entry(name.to_owned()).or_insert(table))
    }

    pub fn clear(&self) {
        self.inner.write().clear();
    }
}

/// Parsed rootsim file handles behind a read-write lock, first-publish-wins
/// (both parses read the same immutable bytes; see [`SharedTables`]).
#[derive(Default)]
pub struct SharedRootFiles {
    inner: RwLock<HashMap<PathBuf, Arc<RootSimFile>>>,
}

impl SharedRootFiles {
    pub fn get(&self, path: &PathBuf) -> Option<Arc<RootSimFile>> {
        self.inner.read().get(path).cloned()
    }

    pub fn publish(&self, path: PathBuf, file: Arc<RootSimFile>) -> Arc<RootSimFile> {
        let mut files = self.inner.write();
        Arc::clone(files.entry(path).or_insert(file))
    }

    pub fn clear(&self) {
        self.inner.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_map(col: usize, rows: u64) -> PositionalMap {
        let mut b = raw_posmap::PosMapBuilder::new(vec![col]);
        for r in 0..rows {
            b.record(0, r * 10, 5);
        }
        b.finish().unwrap()
    }

    #[test]
    fn posmap_publish_inserts_then_merges() {
        let reg = PosmapRegistry::default();
        assert!(reg.get("t").is_none());

        reg.merge_publish("t", build_map(0, 2)).unwrap();
        let first = reg.get("t").unwrap();
        assert_eq!(first.tracked_columns(), &[0]);

        reg.merge_publish("t", build_map(1, 2)).unwrap();
        assert_eq!(reg.get("t").unwrap().tracked_columns(), &[0, 1]);
        // Copy-on-write: the snapshot taken before the second publish is
        // untouched.
        assert_eq!(first.tracked_columns(), &[0]);
    }

    #[test]
    fn stats_snapshot_is_stable() {
        let stats = SharedStats::default();
        stats.record_rows("t", 7);
        let snap = stats.snapshot();
        stats.record_rows("t", 99);
        assert_eq!(snap.table_rows("t"), Some(7));
        assert_eq!(stats.table_rows("t"), Some(99));
        stats.clear();
        assert_eq!(stats.table_rows("t"), None);
    }

    #[test]
    fn first_publish_wins_for_idempotent_caches() {
        let tables = SharedTables::default();
        let a = Arc::new(MemTable::empty(raw_columnar::Schema::new(Vec::new())));
        let b = Arc::new(MemTable::empty(raw_columnar::Schema::new(Vec::new())));
        let won = tables.publish("t", Arc::clone(&a));
        assert!(Arc::ptr_eq(&won, &a));
        let still_a = tables.publish("t", b);
        assert!(Arc::ptr_eq(&still_a, &a), "racing loser adopts the winner's handle");
        tables.clear();
        assert!(tables.get("t").is_none());
    }
}
