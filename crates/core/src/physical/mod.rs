//! Physical plan creation (§3 "Physical Plan Creation").
//!
//! The planner turns a [`ResolvedQuery`] into an operator tree, making the
//! adaptive decisions the paper describes:
//!
//! - map each table to a concrete access path for the configured
//!   [`AccessMode`](crate::engine::AccessMode): loaded-table scan (DBMS),
//!   external-table scan, general-purpose in-situ scan, or a JIT-compiled
//!   scan fetched from the template cache;
//! - consult the **positional-map registry** and the **shred pool** for each
//!   field: "for a CSV file, potential methods include straightforward
//!   parsing, direct access via a positional map, navigating to a nearby
//!   position …, or using a cached column shred";
//! - split field reading among several scan operators and **push some of
//!   them up the plan** (column shreds), attaching late scans at the
//!   placeholder positions above filters and joins;
//! - wire up side-effect harvesting: positional maps built by sequential
//!   scans and shreds recorded from scan/attach outputs flow back into the
//!   engine's caches after execution.

pub mod helpers;
pub(crate) mod parallel;

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use raw_access::csv::{compile_program, CsvProgram, CsvScanInput, InSituCsvScan, JitCsvScan};
use raw_access::external::ExternalTableScan;
use raw_access::fbin::{
    compile_fbin_program, FbinProgram, FbinScanInput, InSituFbinScan, JitFbinScan,
};
use raw_access::fetch::{
    AttachFieldsOp, CsvJitFetcher, CsvMultiFetcher, FbinFetcher, FieldFetcher,
};
use raw_access::ibin::{
    compile_ibin_program, prune_fingerprint, IbinFetcher, IbinScanInput, InSituIbinScan,
    JitIbinScan,
};
use raw_access::rootsim_path::{
    RootColField, RootCollectionFetcher, RootCollectionProgram, RootCollectionScan,
    RootScalarFetcher, RootScalarProgram, RootScalarScan,
};
use raw_access::spec::{AccessPathKind, AccessPathSpec, FileFormat, ScanSegment, WantedField};
use raw_access::TemplateCache;
use raw_columnar::batch::TableTag;
use raw_columnar::ops::{
    AggExpr, AggregateOp, FilterOp, HashAggregateOp, HashJoinOp, MemScanOp, Operator, ProjectOp,
};
use raw_columnar::{CmpOp, MemTable, Predicate, SparseColumn};
use raw_formats::file_buffer::{FileBufferPool, FileBytes};
use raw_formats::ibin::{IbinLayout, PrunePred};
use raw_formats::rootsim::RootSimFile;
use raw_posmap::PositionalMap;

use crate::catalog::{Catalog, TableSource};
use crate::cost::{FilterDesc, JoinSide, PlacementInput, PosmapAvail, ScanFormat, StrategyInput};
use crate::engine::{AccessMode, EngineConfig, JoinPlacement, ShredStrategy};
use crate::error::{EngineError, Result};
use crate::plan::{ColRef, ResolvedFilter, ResolvedQuery};
use crate::shared::{SharedRootFiles, SharedStats, SharedTables};
use crate::shreds::ShredPool;

use helpers::{HarvestPosMapOp, PoolBackedFetcher, PoolScanOp, PosMapSink, RecordingOp, ShredSink};

/// Side effects the engine merges back after execution.
#[derive(Default)]
pub struct Harvests {
    /// Positional maps built by sequential scans: (table, sink).
    pub posmaps: Vec<(String, PosMapSink)>,
    /// Shreds recorded from scans and late fetches: (table, column, sink).
    pub shreds: Vec<(String, String, ShredSink)>,
}

/// A ready-to-run physical plan.
pub struct PhysicalPlan {
    /// Root operator.
    pub root: Box<dyn Operator>,
    /// Human-readable plan description (one line per step).
    pub explain: Vec<String>,
    /// Side-effect channels.
    pub harvests: Harvests,
    /// Output column names.
    pub output_names: Vec<String>,
}

/// Engine state the planner works against. `catalog`/`config`/`posmaps`
/// point into the query's immutable snapshot; the rest are the engine's
/// shared concurrent caches (interior mutability — every planner touch is
/// `&self`), so concurrent queries plan against the same pools and publish
/// side effects without exclusive engine access.
pub(crate) struct PlannerCtx<'a> {
    pub catalog: &'a Catalog,
    pub config: &'a EngineConfig,
    pub files: &'a FileBufferPool,
    pub templates: &'a TemplateCache,
    pub posmaps: &'a HashMap<String, Arc<PositionalMap>>,
    pub pool: &'a ShredPool,
    pub loaded: &'a SharedTables,
    pub root_files: &'a SharedRootFiles,
    pub stats: &'a SharedStats,
}

/// Column layout of the batches a pipeline produces.
#[derive(Debug, Clone, Default)]
struct Layout {
    cols: Vec<(usize, usize)>, // (table idx, schema idx)
}

impl Layout {
    fn position(&self, table: usize, schema_idx: usize) -> Option<usize> {
        self.cols.iter().position(|&(t, s)| t == table && s == schema_idx)
    }

    fn push(&mut self, table: usize, schema_idx: usize) -> usize {
        self.cols.push((table, schema_idx));
        self.cols.len() - 1
    }

    fn extend(&mut self, other: &Layout) {
        self.cols.extend_from_slice(&other.cols);
    }
}

/// A partially-built per-table pipeline.
struct Built {
    op: Box<dyn Operator>,
    layout: Layout,
}

/// When a table's output (projected/aggregated) columns get materialized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AttachWhen {
    /// In the bottom scan ("full columns" / the join "Early" point).
    Early,
    /// After the table's filters, before any join ("Intermediate").
    AfterFilters,
    /// Above the join ("Late") — handled by the caller.
    Never,
}

/// Per-table slice of the query.
struct TableCols {
    filters: Vec<ResolvedFilter>,
    join_key: Option<ColRef>,
    outputs: Vec<ColRef>,
}

pub(crate) fn plan(ctx: &PlannerCtx<'_>, q: &ResolvedQuery) -> Result<PhysicalPlan> {
    let mut planner =
        Planner { ctx, explain: Vec::new(), harvests: Harvests::default(), stream: None };
    planner.plan_query(q)
}

struct Planner<'a, 'b> {
    ctx: &'a PlannerCtx<'b>,
    explain: Vec<String>,
    harvests: Harvests,
    /// When the parallel planner is streaming the driving table's cold read
    /// (chunked prefetch), the in-flight buffer serving that path:
    /// [`Planner::read_file`] hands out its bytes without blocking — morsel
    /// execution is availability-gated downstream — instead of `read`'s
    /// wait-for-everything contract. `None` everywhere else (the serial
    /// planner never streams).
    stream: Option<StreamHandle>,
}

/// The in-flight streaming read of the parallel plan's driving table.
pub(crate) struct StreamHandle {
    path: std::path::PathBuf,
    chunked: Arc<raw_formats::file_buffer::ChunkedFileBuffer>,
}

impl StreamHandle {
    pub(crate) fn new(
        path: std::path::PathBuf,
        chunked: Arc<raw_formats::file_buffer::ChunkedFileBuffer>,
    ) -> StreamHandle {
        StreamHandle { path, chunked }
    }
}

impl Planner<'_, '_> {
    fn note(&mut self, line: impl Into<String>) {
        self.explain.push(line.into());
    }

    /// Resolve the materialization strategy for one table, including the
    /// cost-model-driven `Adaptive` choice.
    fn resolve_strategy(&mut self, q: &ResolvedQuery, t: usize, tc: &TableCols) -> ShredStrategy {
        match (self.ctx.config.mode, self.ctx.config.shreds) {
            (AccessMode::Dbms | AccessMode::ExternalTables, _) => ShredStrategy::FullColumns,
            (AccessMode::InSitu, s) if s != ShredStrategy::FullColumns => {
                self.note(
                    "note: column shreds require JIT access paths; \
                     falling back to full columns for in-situ mode",
                );
                ShredStrategy::FullColumns
            }
            (AccessMode::Jit, ShredStrategy::Adaptive) => self.adaptive_strategy(q, t, tc),
            (_, s) => s,
        }
    }

    /// Resolve the join-side placement for one table, including the
    /// cost-model-driven `Adaptive` choice (probe side pipelined, build
    /// side pipeline-breaking).
    fn resolve_placement(&mut self, q: &ResolvedQuery, t: usize, tc: &TableCols) -> AttachWhen {
        match self.ctx.config.join_placement {
            JoinPlacement::Early => AttachWhen::Early,
            JoinPlacement::Intermediate => AttachWhen::AfterFilters,
            JoinPlacement::Late => AttachWhen::Never,
            JoinPlacement::Adaptive => {
                if self.ctx.config.mode != AccessMode::Jit {
                    // Nothing to defer: DBMS/external materialize everything
                    // anyway, and in-situ scans cannot fetch late.
                    return AttachWhen::Early;
                }
                self.adaptive_placement(q, t, tc)
            }
        }
    }

    // -- cost-model consultation (§8 future work: optimizer integration) ----

    /// Estimated selectivity of one filter, from harvested histograms or
    /// the model default.
    fn filter_selectivity(&self, q: &ResolvedQuery, f: &ResolvedFilter) -> f64 {
        self.ctx
            .stats
            .estimate(&q.tables[f.col.table], &f.col.name, f.op, &f.value)
            .unwrap_or(self.ctx.config.cost_model.default_selectivity)
    }

    /// Combined selectivity of a table's filter conjuncts (independence
    /// assumption).
    fn combined_selectivity(&self, q: &ResolvedQuery, filters: &[ResolvedFilter]) -> f64 {
        filters.iter().map(|f| self.filter_selectivity(q, f)).product()
    }

    /// The cost-model format family for table `t`, with positional-map
    /// availability resolved for its late-fetch candidate columns.
    fn scan_format_for(&self, q: &ResolvedQuery, t: usize, tc: &TableCols) -> ScanFormat {
        let def = match self.ctx.catalog.get(&q.tables[t]) {
            Ok(d) => d,
            Err(_) => return ScanFormat::FixedBinary,
        };
        match &def.source {
            TableSource::Fbin { .. } | TableSource::Ibin { .. } => ScanFormat::FixedBinary,
            TableSource::RootEvents { .. } | TableSource::RootCollection { .. } => ScanFormat::Root,
            TableSource::Csv { .. } => {
                let Some(map) = self.ctx.posmaps.get(&q.tables[t]) else {
                    return ScanFormat::Csv(PosmapAvail::None);
                };
                // Worst-case availability across the columns a shred plan
                // would fetch late (every filter after the first, plus
                // outputs).
                let mut worst = PosmapAvail::Exact;
                let late_cols = tc.filters.iter().skip(1).map(|f| &f.col).chain(tc.outputs.iter());
                for col in late_cols {
                    let Ok(field) = def.schema.field(col.schema_idx) else {
                        return ScanFormat::Csv(PosmapAvail::None);
                    };
                    match map.lookup(field.source_ordinal) {
                        raw_posmap::Lookup::Exact { .. } => {}
                        raw_posmap::Lookup::Nearest { skip_fields, .. } => {
                            worst = match worst {
                                PosmapAvail::Nearest { skip_fields: prev }
                                    if prev >= skip_fields =>
                                {
                                    worst
                                }
                                PosmapAvail::None => PosmapAvail::None,
                                _ => PosmapAvail::Nearest { skip_fields },
                            };
                        }
                        raw_posmap::Lookup::Miss => return ScanFormat::Csv(PosmapAvail::None),
                    }
                }
                ScanFormat::Csv(worst)
            }
        }
    }

    /// Cost-model choice between full columns, shreds, and multi-column
    /// shreds for one table (§5).
    fn adaptive_strategy(&mut self, q: &ResolvedQuery, t: usize, tc: &TableCols) -> ShredStrategy {
        if tc.filters.is_empty() {
            // No predicate to shred on: everything is read once anyway.
            return ShredStrategy::FullColumns;
        }
        let format = self.scan_format_for(q, t, tc);
        let filters: Vec<FilterDesc> = tc
            .filters
            .iter()
            .map(|f| FilterDesc {
                data_type: f.col.data_type,
                selectivity: self.filter_selectivity(q, f),
            })
            .collect();
        let outputs: Vec<raw_columnar::DataType> = tc
            .outputs
            .iter()
            .filter(|c| !tc.filters.iter().any(|f| f.col.schema_idx == c.schema_idx))
            .map(|c| c.data_type)
            .collect();
        let rows = self.ctx.stats.table_rows(&q.tables[t]).unwrap_or(1) as f64;
        let decision = self.ctx.config.cost_model.choose_strategy(&StrategyInput {
            format,
            rows,
            filters: filters.clone(),
            outputs,
        });
        let sels =
            filters.iter().map(|f| format!("{:.3}", f.selectivity)).collect::<Vec<_>>().join(",");
        self.note(format!(
            "adaptive strategy for {}: {} [est. sel {sels}]",
            q.tables[t],
            decision.explain()
        ));
        decision.choice
    }

    /// Cost-model choice of the Early/Intermediate/Late point for one join
    /// side's projected columns (§5.3.2).
    fn adaptive_placement(&mut self, q: &ResolvedQuery, t: usize, tc: &TableCols) -> AttachWhen {
        // Columns the placement decision governs: outputs not already read
        // for a filter or the join key.
        let cols: Vec<raw_columnar::DataType> = tc
            .outputs
            .iter()
            .filter(|c| {
                !tc.filters.iter().any(|f| f.col.schema_idx == c.schema_idx)
                    && tc.join_key.as_ref().map(|k| k.schema_idx) != Some(c.schema_idx)
            })
            .map(|c| c.data_type)
            .collect();
        if cols.is_empty() {
            return AttachWhen::Never; // nothing left to place; late is a no-op
        }
        let side = if t == 0 { JoinSide::Pipelined } else { JoinSide::Breaking };
        // Join retention for this side ≈ the other side's filter
        // selectivity (equi-join against a filtered key set).
        let other = 1 - t;
        let other_filters: Vec<ResolvedFilter> =
            q.filters.iter().filter(|f| f.col.table == other).cloned().collect();
        let join_retention = self.combined_selectivity(q, &other_filters);
        let own_filters: Vec<ResolvedFilter> =
            q.filters.iter().filter(|f| f.col.table == t).cloned().collect();
        let input = PlacementInput {
            format: self.scan_format_for(q, t, tc),
            rows: self.ctx.stats.table_rows(&q.tables[t]).unwrap_or(1) as f64,
            filter_selectivity: self.combined_selectivity(q, &own_filters),
            join_retention,
            cols,
        };
        let decision = self.ctx.config.cost_model.choose_join_placement(side, &input);
        self.note(format!(
            "adaptive join placement for {} ({side:?}): {} [own sel {:.3}, retention {:.3}]",
            q.tables[t],
            decision.explain(),
            input.filter_selectivity,
            join_retention
        ));
        match decision.choice {
            JoinPlacement::Early => AttachWhen::Early,
            JoinPlacement::Intermediate => AttachWhen::AfterFilters,
            JoinPlacement::Late | JoinPlacement::Adaptive => AttachWhen::Never,
        }
    }

    fn plan_query(&mut self, q: &ResolvedQuery) -> Result<PhysicalPlan> {
        let per_table = slice_per_table(q);

        // Per-table materialization strategy; the Adaptive case consults
        // the cost model with this query's selectivity estimates.
        let strategies: Vec<ShredStrategy> =
            (0..q.tables.len()).map(|t| self.resolve_strategy(q, t, &per_table[t])).collect();

        let has_join = q.join.is_some();
        let (mut root, layout) = if has_join {
            // Join-side placement is resolved per side: the probe side is
            // pipelined, the build side pipeline-breaking (§5.3.2).
            let placements: Vec<AttachWhen> =
                (0..2).map(|t| self.resolve_placement(q, t, &per_table[t])).collect();
            let probe =
                self.build_table_pipeline(q, 0, &per_table[0], strategies[0], placements[0], None)?;
            let build =
                self.build_table_pipeline(q, 1, &per_table[1], strategies[1], placements[1], None)?;
            let j = q.join.as_ref().expect("has_join");
            let probe_key = probe
                .layout
                .position(0, j.probe_col.schema_idx)
                .ok_or_else(|| EngineError::planning("probe key missing from layout"))?;
            let build_key = build
                .layout
                .position(1, j.build_col.schema_idx)
                .ok_or_else(|| EngineError::planning("build key missing from layout"))?;
            self.note(format!(
                "hash join {}.{} = {}.{} (probe left, build right)",
                q.tables[0], j.probe_col.name, q.tables[1], j.build_col.name
            ));
            let mut layout = Layout::default();
            layout.extend(&probe.layout);
            layout.extend(&build.layout);
            let join = HashJoinOp::new(probe.op, build.op, probe_key, build_key);
            let mut root: Box<dyn Operator> = Box::new(join);

            // Late attaches above the join, for the sides placed there.
            for (t, tc) in per_table.iter().enumerate() {
                if placements[t] != AttachWhen::Never {
                    continue;
                }
                let missing: Vec<ColRef> = tc
                    .outputs
                    .iter()
                    .filter(|c| layout.position(t, c.schema_idx).is_none())
                    .cloned()
                    .collect();
                if missing.is_empty() {
                    continue;
                }
                let (next, new_layout) = self.attach_columns(
                    q,
                    root,
                    layout,
                    t,
                    &missing,
                    /* multi = */ false,
                    "late (above join)",
                    TableTag(t as u32),
                )?;
                root = next;
                layout = new_layout;
            }
            (root, layout)
        } else {
            let when = match strategies[0] {
                ShredStrategy::FullColumns => AttachWhen::Early,
                _ => AttachWhen::AfterFilters,
            };
            let built =
                self.build_table_pipeline(q, 0, &per_table[0], strategies[0], when, None)?;
            (built.op, built.layout)
        };

        // Top: grouped aggregation, scalar aggregation, or projection.
        let output_names;
        if let Some(g) = &q.group_by {
            let top = grouped_top(q, &layout)?;
            output_names = top.names;
            self.note(format!(
                "hash aggregate {} GROUP BY {}.{}",
                output_names.join(", "),
                q.tables[g.table],
                g.name
            ));
            root = Box::new(HashAggregateOp::new(root, top.key_pos, top.exprs));
            root = Box::new(ProjectOp::new(root, top.out_positions));
        } else if q.is_aggregate() {
            let (exprs, names) = aggregate_exprs(q, &layout)?;
            output_names = names;
            self.note(format!("aggregate {}", output_names.join(", ")));
            root = Box::new(AggregateOp::new(root, exprs));
        } else {
            let (cols, names) = projection_positions(q, &layout)?;
            output_names = names;
            self.note(format!("project {}", output_names.join(", ")));
            root = Box::new(ProjectOp::new(root, cols));
        }

        Ok(PhysicalPlan {
            root,
            explain: std::mem::take(&mut self.explain),
            harvests: std::mem::take(&mut self.harvests),
            output_names,
        })
    }

    /// Build one table's pipeline: bottom scan, staged filters, and output
    /// columns attached per `when`. A `segment` restricts the bottom scan to
    /// one record-aligned morsel of the file (parallel plans build this
    /// pipeline once per morsel); `None` scans the whole file.
    #[allow(clippy::too_many_arguments)]
    fn build_table_pipeline(
        &mut self,
        q: &ResolvedQuery,
        t: usize,
        tc: &TableCols,
        strategy: ShredStrategy,
        when: AttachWhen,
        segment: Option<ScanSegment>,
    ) -> Result<Built> {
        // Columns that cannot be fetched late must ride in the bottom scan.
        let fetchable = |this: &mut Self, col: &ColRef| -> bool { this.can_fetch_late(q, t, col) };

        let mut base: Vec<ColRef> = Vec::new();
        let push_base = |cols: &mut Vec<ColRef>, c: &ColRef| {
            if !cols.iter().any(|x| x.schema_idx == c.schema_idx) {
                cols.push(c.clone());
            }
        };

        let staged = strategy != ShredStrategy::FullColumns && !tc.filters.is_empty();
        if staged {
            // First filter's column anchors the bottom scan.
            push_base(&mut base, &tc.filters[0].col);
            // Join keys are needed at the join itself — read them early.
            if let Some(k) = &tc.join_key {
                push_base(&mut base, k);
            }
            // Later-staged columns that cannot be fetched late move early.
            for f in &tc.filters[1..] {
                if !fetchable(self, &f.col) {
                    push_base(&mut base, &f.col);
                }
            }
            if when != AttachWhen::Never {
                for c in &tc.outputs {
                    if when == AttachWhen::Early || !fetchable(self, c) {
                        push_base(&mut base, c);
                    }
                }
            }
        } else {
            for f in &tc.filters {
                push_base(&mut base, &f.col);
            }
            if let Some(k) = &tc.join_key {
                push_base(&mut base, k);
            }
            match when {
                AttachWhen::Never => {
                    for c in &tc.outputs {
                        if !fetchable(self, c) {
                            push_base(&mut base, c);
                        }
                    }
                }
                _ => {
                    for c in &tc.outputs {
                        push_base(&mut base, c);
                    }
                }
            }
        }
        if base.is_empty() {
            // Degenerate: no filters, outputs all late-fetchable, no join —
            // still need rows to drive everything; read the first output.
            if let Some(c) = tc.outputs.first() {
                base.push(c.clone());
            } else {
                return Err(EngineError::planning(format!(
                    "table {} contributes no columns",
                    q.tables[t]
                )));
            }
        }

        let (mut op, mut layout) = {
            let built = self.make_scan(q, t, &base, TableTag(t as u32), segment)?;
            (built.op, built.layout)
        };

        let apply_filter = |this: &mut Self,
                            op: Box<dyn Operator>,
                            layout: &Layout,
                            f: &ResolvedFilter|
         -> Result<Box<dyn Operator>> {
            let pos = layout
                .position(t, f.col.schema_idx)
                .ok_or_else(|| EngineError::planning("filter column not in layout"))?;
            this.note(format!("filter {}.{} {} {}", q.tables[t], f.col.name, f.op.sql(), f.value));
            Ok(Box::new(FilterOp::new(op, predicate(pos, f.op, &f.value))))
        };

        if staged {
            op = apply_filter(self, op, &layout, &tc.filters[0])?;
            let mut remaining: Vec<&ResolvedFilter> = tc.filters[1..].iter().collect();

            if strategy == ShredStrategy::MultiColumnShreds {
                // Speculatively attach everything still needed in one pass.
                let mut group: Vec<ColRef> = Vec::new();
                for f in &remaining {
                    if layout.position(t, f.col.schema_idx).is_none()
                        && !group.iter().any(|c| c.schema_idx == f.col.schema_idx)
                    {
                        group.push(f.col.clone());
                    }
                }
                if when == AttachWhen::AfterFilters {
                    for c in &tc.outputs {
                        if layout.position(t, c.schema_idx).is_none()
                            && !group.iter().any(|x| x.schema_idx == c.schema_idx)
                        {
                            group.push(c.clone());
                        }
                    }
                }
                if !group.is_empty() {
                    let (next, new_layout) = self.attach_columns(
                        q,
                        op,
                        layout,
                        t,
                        &group,
                        /* multi = */ true,
                        "multi-column shred",
                        TableTag(t as u32),
                    )?;
                    op = next;
                    layout = new_layout;
                }
                for f in remaining.drain(..) {
                    op = apply_filter(self, op, &layout, f)?;
                }
            } else {
                for f in remaining.drain(..) {
                    if layout.position(t, f.col.schema_idx).is_none() {
                        let (next, new_layout) = self.attach_columns(
                            q,
                            op,
                            layout,
                            t,
                            std::slice::from_ref(&f.col),
                            false,
                            "column shred",
                            TableTag(t as u32),
                        )?;
                        op = next;
                        layout = new_layout;
                    }
                    op = apply_filter(self, op, &layout, f)?;
                }
            }
        } else {
            for f in &tc.filters {
                op = apply_filter(self, op, &layout, f)?;
            }
        }

        // Output columns attached after filters (single-table shreds, or the
        // join "Intermediate" point).
        if when == AttachWhen::AfterFilters {
            let missing: Vec<ColRef> = tc
                .outputs
                .iter()
                .filter(|c| layout.position(t, c.schema_idx).is_none())
                .cloned()
                .collect();
            if !missing.is_empty() {
                let (next, new_layout) = self.attach_columns(
                    q,
                    op,
                    layout,
                    t,
                    &missing,
                    strategy == ShredStrategy::MultiColumnShreds,
                    "column shred",
                    TableTag(t as u32),
                )?;
                op = next;
                layout = new_layout;
            }
        }

        Ok(Built { op, layout })
    }

    /// Whether `col` of table `t` can be read by a late, selection-driven
    /// fetch (vs. having to ride in the bottom scan).
    fn can_fetch_late(&mut self, q: &ResolvedQuery, t: usize, col: &ColRef) -> bool {
        let def = match self.ctx.catalog.get(&q.tables[t]) {
            Ok(d) => d,
            Err(_) => return false,
        };
        if def.source.directly_addressable() {
            return true;
        }
        // CSV: need a positional map that can reach the column, or a cached
        // shred to answer from.
        let field = match def.schema.field(col.schema_idx) {
            Ok(f) => f,
            Err(_) => return false,
        };
        if let Some(map) = self.ctx.posmaps.get(&q.tables[t]) {
            if !matches!(map.lookup(field.source_ordinal), raw_posmap::Lookup::Miss) {
                return true;
            }
        }
        self.ctx.pool.get(&q.tables[t], &col.name).is_some()
    }

    // -- scan construction ---------------------------------------------------

    fn make_scan(
        &mut self,
        q: &ResolvedQuery,
        t: usize,
        cols: &[ColRef],
        tag: TableTag,
        segment: Option<ScanSegment>,
    ) -> Result<Built> {
        let name = q.tables[t].clone();
        let def = self.ctx.catalog.get(&name)?.clone();
        let batch = self.ctx.config.batch_size;

        if segment.is_some()
            && !matches!(self.ctx.config.mode, AccessMode::InSitu | AccessMode::Jit)
        {
            return Err(EngineError::planning(
                "segmented scans exist only for in-situ/JIT access paths",
            ));
        }

        let mut layout = Layout::default();

        match self.ctx.config.mode {
            AccessMode::Dbms => {
                let table = self.ensure_loaded(&name, &def)?;
                let positions: Vec<usize> = cols.iter().map(|c| c.schema_idx).collect();
                for c in cols {
                    layout.push(t, c.schema_idx);
                }
                self.note(format!(
                    "scan {name} [loaded table] cols {:?}",
                    cols.iter().map(|c| c.name.as_str()).collect::<Vec<_>>()
                ));
                let op = MemScanOp::new(table, tag, positions).with_batch_size(batch);
                Ok(Built { op: Box::new(op), layout })
            }
            AccessMode::ExternalTables => {
                let format = match def.source {
                    TableSource::Csv { .. } => FileFormat::Csv,
                    TableSource::Fbin { .. } => FileFormat::Fbin,
                    TableSource::Ibin { .. } => FileFormat::Ibin,
                    _ => {
                        return Err(EngineError::planning(
                            "external tables support flat files only",
                        ))
                    }
                };
                let buf = self.read_file(&def)?;
                let positions: Vec<usize> = cols.iter().map(|c| c.schema_idx).collect();
                for c in cols {
                    layout.push(t, c.schema_idx);
                }
                self.note(format!("scan {name} [external table: full re-parse]"));
                let op =
                    ExternalTableScan::new(buf, format, def.schema.clone(), positions, tag, batch);
                Ok(Built { op: Box::new(op), layout })
            }
            AccessMode::InSitu | AccessMode::Jit => {
                self.make_raw_scan(q, t, &name, &def, cols, tag, segment)
            }
        }
    }

    /// In-situ / JIT scan with shred-pool integration and side-effect
    /// recording.
    #[allow(clippy::too_many_arguments)]
    fn make_raw_scan(
        &mut self,
        q: &ResolvedQuery,
        t: usize,
        name: &str,
        def: &crate::catalog::TableDef,
        cols: &[ColRef],
        tag: TableTag,
        segment: Option<ScanSegment>,
    ) -> Result<Built> {
        let batch = self.ctx.config.batch_size;

        // Split requested columns into pool-served (full shreds) and
        // file-read columns. Segmented (per-morsel) scans read everything
        // from the file: a whole-file PoolScan cannot serve one morsel, and
        // the parallel planner routes fully-cached queries to the serial
        // pool path before segmenting.
        let mut pool_cols: Vec<(ColRef, Arc<SparseColumn>)> = Vec::new();
        let mut file_cols: Vec<ColRef> = Vec::new();
        for c in cols {
            match self.ctx.pool.get(name, &c.name) {
                Some(s) if s.is_full() && segment.is_none() => pool_cols.push((c.clone(), s)),
                _ => file_cols.push(c.clone()),
            }
        }

        let mut layout = Layout::default();
        let mut op: Box<dyn Operator>;

        if file_cols.is_empty() && !pool_cols.is_empty() {
            self.note(format!(
                "scan {name} [shred pool] cols {:?}",
                pool_cols.iter().map(|(c, _)| c.name.as_str()).collect::<Vec<_>>()
            ));
            let shreds: Vec<Arc<SparseColumn>> =
                pool_cols.iter().map(|(_, s)| Arc::clone(s)).collect();
            for (c, _) in &pool_cols {
                layout.push(t, c.schema_idx);
            }
            op = Box::new(PoolScanOp::new(shreds, tag, batch)?);
            return Ok(Built { op, layout });
        }

        // File scan for the uncached columns.
        op = self.make_file_scan(q, t, name, def, &file_cols, tag, segment)?;
        for c in &file_cols {
            layout.push(t, c.schema_idx);
        }

        // Record what the scan reads (full columns) into the shred pool.
        if self.ctx.config.cache_shreds {
            let mut recordings = Vec::new();
            for (pos, c) in file_cols.iter().enumerate() {
                let sink: ShredSink = Arc::new(Mutex::new(SparseColumn::new(c.data_type, 0)));
                recordings.push((pos, Arc::clone(&sink)));
                self.harvests.shreds.push((name.to_owned(), c.name.clone(), sink));
            }
            if !recordings.is_empty() {
                op = Box::new(RecordingOp::new(op, tag, recordings));
            }
        }

        // Attach pool-served columns on top (cheap gathers).
        if !pool_cols.is_empty() {
            self.note(format!(
                "attach {name} cols {:?} from shred pool",
                pool_cols.iter().map(|(c, _)| c.name.as_str()).collect::<Vec<_>>()
            ));
            let shreds: Vec<Option<Arc<SparseColumn>>> =
                pool_cols.iter().map(|(_, s)| Some(Arc::clone(s))).collect();
            let fetcher = PoolBackedFetcher::new(shreds, None);
            op = Box::new(AttachFieldsOp::new(op, tag, Box::new(fetcher)));
            for (c, _) in &pool_cols {
                layout.push(t, c.schema_idx);
            }
        }

        Ok(Built { op, layout })
    }

    /// The raw-file scan itself (no pool interaction). With a `segment`, the
    /// scan covers one record-aligned morsel and emits provenance row ids
    /// from the segment's global range.
    #[allow(clippy::too_many_arguments)]
    fn make_file_scan(
        &mut self,
        q: &ResolvedQuery,
        t: usize,
        name: &str,
        def: &crate::catalog::TableDef,
        cols: &[ColRef],
        tag: TableTag,
        segment: Option<ScanSegment>,
    ) -> Result<Box<dyn Operator>> {
        let batch = self.ctx.config.batch_size;
        let jit = self.ctx.config.mode == AccessMode::Jit;

        match &def.source {
            TableSource::Csv { .. } => {
                let buf = self.read_file(def)?;
                let wanted = wanted_fields(def, cols)?;
                let posmap = self.ctx.posmaps.get(name).cloned();

                // Track positions (policy-resolved) only when no map exists
                // yet for this table.
                let record_positions = if posmap.is_none() {
                    let query_cols: Vec<usize> = query_source_ordinals(q, t, def);
                    self.ctx.config.posmap_policy.resolve(def.schema.len(), &query_cols)
                } else {
                    Vec::new()
                };

                let spec = AccessPathSpec {
                    format: FileFormat::Csv,
                    schema: def.schema.clone(),
                    wanted,
                    kind: AccessPathKind::FullScan,
                    record_positions,
                };
                let input = CsvScanInput {
                    buf,
                    spec: spec.clone(),
                    tag,
                    posmap: posmap.clone(),
                    batch_size: batch,
                };
                let sink: PosMapSink = Arc::new(Mutex::new(None));
                self.harvests.posmaps.push((name.to_owned(), Arc::clone(&sink)));

                let seg = segment.unwrap_or_default();
                if jit {
                    let key = spec.fingerprint() ^ posmap_fingerprint(posmap.as_deref());
                    let (program, hit) = self
                        .ctx
                        .templates
                        .get_or_compile(key, || compile_program(&spec, posmap.as_deref()));
                    let program: Arc<CsvProgram> = program;
                    self.note(format!(
                        "scan {name} [csv jit{}] cols {:?}",
                        if hit { ", template cache hit" } else { ", compiled" },
                        cols.iter().map(|c| c.name.as_str()).collect::<Vec<_>>()
                    ));
                    let scan = JitCsvScan::new(input, program).with_segment(seg);
                    Ok(Box::new(HarvestPosMapOp::new(scan, sink)))
                } else {
                    self.note(format!(
                        "scan {name} [csv in-situ] cols {:?}",
                        cols.iter().map(|c| c.name.as_str()).collect::<Vec<_>>()
                    ));
                    let scan = InSituCsvScan::new(input).with_segment(seg);
                    Ok(Box::new(HarvestPosMapOp::new(scan, sink)))
                }
            }
            TableSource::Fbin { .. } => {
                let buf = self.read_file(def)?;
                // Deterministic layouts publish the row count for free;
                // record it so shred-fullness checks and the cost model
                // have the truth.
                self.ctx.stats.record_rows(name, raw_formats::fbin::FbinLayout::parse(&buf)?.rows);
                let wanted = wanted_fields(def, cols)?;
                let spec = AccessPathSpec {
                    format: FileFormat::Fbin,
                    schema: def.schema.clone(),
                    wanted,
                    kind: AccessPathKind::FullScan,
                    record_positions: Vec::new(),
                };
                let input = FbinScanInput {
                    buf: Arc::clone(&buf),
                    spec: spec.clone(),
                    tag,
                    batch_size: batch,
                };
                let seg = segment.unwrap_or_default();
                if jit {
                    let layout = raw_formats::fbin::FbinLayout::parse(&buf)?;
                    let key = spec.fingerprint() ^ layout.rows;
                    let program_res: std::result::Result<FbinProgram, _> =
                        compile_fbin_program(&spec, &layout);
                    let program = program_res.map_err(EngineError::from)?;
                    let (program, hit) = self.ctx.templates.get_or_compile(key, move || program);
                    self.note(format!(
                        "scan {name} [fbin jit{}] cols {:?}",
                        if hit { ", template cache hit" } else { ", compiled" },
                        cols.iter().map(|c| c.name.as_str()).collect::<Vec<_>>()
                    ));
                    Ok(Box::new(JitFbinScan::new(input, program).with_segment(seg)))
                } else {
                    self.note(format!(
                        "scan {name} [fbin in-situ] cols {:?}",
                        cols.iter().map(|c| c.name.as_str()).collect::<Vec<_>>()
                    ));
                    Ok(Box::new(InSituFbinScan::new(input)?.with_segment(seg)))
                }
            }
            TableSource::Ibin { .. } => {
                let buf = self.read_file(def)?;
                let layout = IbinLayout::parse(&buf)?;
                // Publish the true row count: a pruned scan records a
                // *partial* shred, and fullness checks need the
                // denominator.
                self.ctx.stats.record_rows(name, layout.rows);
                let wanted = wanted_fields(def, cols)?;
                let spec = AccessPathSpec {
                    format: FileFormat::Ibin,
                    schema: def.schema.clone(),
                    wanted,
                    kind: AccessPathKind::FullScan,
                    record_positions: Vec::new(),
                };
                let input = IbinScanInput {
                    buf: Arc::clone(&buf),
                    spec: spec.clone(),
                    tag,
                    batch_size: batch,
                };
                let seg = segment.unwrap_or_default();
                if jit {
                    // The JIT path is query-aware: push this table's
                    // predicates into program generation so the embedded
                    // page index can prune (§4.1). Exact FilterOps stay
                    // above the scan, so pruning is free to be page-
                    // granular. Segmented (per-morsel) scans share the
                    // whole-file program — one compile, template-cached —
                    // and intersect its candidate ranges with their
                    // page-aligned segment, so per-morsel pruning counters
                    // sum to exactly the serial scan's.
                    let preds = ibin_prune_preds(q, t, def);
                    let key = spec.fingerprint() ^ layout.rows ^ prune_fingerprint(&preds);
                    let program =
                        compile_ibin_program(&spec, &layout, &preds).map_err(EngineError::from)?;
                    let pruned = program.rows_pruned;
                    let (program, hit) = self.ctx.templates.get_or_compile(key, move || program);
                    self.note(format!(
                        "scan {name} [ibin jit{}, index pruned {pruned} rows] cols {:?}",
                        if hit { ", template cache hit" } else { ", compiled" },
                        cols.iter().map(|c| c.name.as_str()).collect::<Vec<_>>()
                    ));
                    Ok(Box::new(JitIbinScan::new(input, program).with_segment(seg)))
                } else {
                    // Query-agnostic: the index at the end of the file is
                    // invisible to a general-purpose scan operator.
                    self.note(format!(
                        "scan {name} [ibin in-situ, index unused] cols {:?}",
                        cols.iter().map(|c| c.name.as_str()).collect::<Vec<_>>()
                    ));
                    Ok(Box::new(InSituIbinScan::new(input)?.with_segment(seg)))
                }
            }
            TableSource::RootEvents { .. } => {
                let file = self.open_root(def)?;
                let program = Arc::new(root_scalar_program(&file, def, cols)?);
                self.note(format!(
                    "scan {name} [rootsim events, id-based] cols {:?}",
                    cols.iter().map(|c| c.name.as_str()).collect::<Vec<_>>()
                ));
                let scan = RootScalarScan::new(file, program, tag, batch)
                    .with_segment(segment.unwrap_or_default());
                Ok(Box::new(scan))
            }
            TableSource::RootCollection { collection, parent_scalar, .. } => {
                let file = self.open_root(def)?;
                let program = Arc::new(root_collection_program(
                    &file,
                    collection,
                    parent_scalar.as_deref(),
                    def,
                    cols,
                )?);
                self.note(format!(
                    "scan {name} [rootsim collection {collection}, id-based] cols {:?}",
                    cols.iter().map(|c| c.name.as_str()).collect::<Vec<_>>()
                ));
                // A segment's rows are *event* ids; the scan resolves them
                // to its global item slice through the offsets table.
                let scan = RootCollectionScan::new(file, program, tag, batch)
                    .with_segment(segment.unwrap_or_default());
                Ok(Box::new(scan))
            }
        }
    }

    // -- late attaches ---------------------------------------------------------

    /// Attach `cols` of table `t` above `op` via a selection-driven fetcher.
    #[allow(clippy::too_many_arguments)]
    fn attach_columns(
        &mut self,
        q: &ResolvedQuery,
        op: Box<dyn Operator>,
        mut layout: Layout,
        t: usize,
        cols: &[ColRef],
        multi: bool,
        label: &str,
        tag: TableTag,
    ) -> Result<(Box<dyn Operator>, Layout)> {
        let name = q.tables[t].clone();
        let def = self.ctx.catalog.get(&name)?.clone();

        // Pool shreds (possibly partial) per column.
        let pool_shreds: Vec<Option<Arc<SparseColumn>>> =
            cols.iter().map(|c| self.ctx.pool.get(&name, &c.name)).collect();
        let any_pool = pool_shreds.iter().any(Option::is_some);

        let file_fetcher = self.make_file_fetcher(&def, cols, multi)?;
        let fetcher: Box<dyn FieldFetcher> = if any_pool {
            Box::new(PoolBackedFetcher::new(pool_shreds, file_fetcher))
        } else {
            match file_fetcher {
                Some(f) => f,
                None => {
                    return Err(EngineError::planning(format!(
                        "cannot fetch {}.{} late: no positional map and no cached shred",
                        name, cols[0].name
                    )))
                }
            }
        };

        self.note(format!(
            "attach {name} cols {:?} [{label}{}]",
            cols.iter().map(|c| c.name.as_str()).collect::<Vec<_>>(),
            if any_pool { ", pool-backed" } else { "" }
        ));

        let attach_base = layout.cols.len();
        let mut next: Box<dyn Operator> = Box::new(AttachFieldsOp::new(op, tag, fetcher));
        for c in cols {
            layout.push(t, c.schema_idx);
        }

        // Record the fetched (partial) columns into the pool.
        if self.ctx.config.cache_shreds {
            let mut recordings = Vec::new();
            for (i, c) in cols.iter().enumerate() {
                let sink: ShredSink = Arc::new(Mutex::new(SparseColumn::new(c.data_type, 0)));
                recordings.push((attach_base + i, Arc::clone(&sink)));
                self.harvests.shreds.push((name.clone(), c.name.clone(), sink));
            }
            next = Box::new(RecordingOp::new(next, tag, recordings));
        }

        Ok((next, layout))
    }

    /// Build the raw-file fetcher for `cols`, or `None` when the file cannot
    /// serve selection-driven reads (CSV without a usable positional map).
    fn make_file_fetcher(
        &mut self,
        def: &crate::catalog::TableDef,
        cols: &[ColRef],
        multi: bool,
    ) -> Result<Option<Box<dyn FieldFetcher>>> {
        match &def.source {
            TableSource::Csv { .. } => {
                let Some(posmap) = self.ctx.posmaps.get(&def.name).cloned() else {
                    return Ok(None);
                };
                let buf = self.read_file(def)?;
                let wanted: Vec<(usize, raw_columnar::DataType)> = cols
                    .iter()
                    .map(|c| {
                        def.schema
                            .field(c.schema_idx)
                            .map(|f| (f.source_ordinal, f.data_type))
                            .map_err(EngineError::from)
                    })
                    .collect::<Result<_>>()?;
                if multi && cols.len() > 1 {
                    match CsvMultiFetcher::compile(buf, posmap, &wanted) {
                        Ok(f) => Ok(Some(Box::new(f))),
                        Err(_) => Ok(None),
                    }
                } else {
                    match CsvJitFetcher::compile(buf, posmap, &wanted) {
                        Ok(f) => Ok(Some(Box::new(f))),
                        Err(_) => Ok(None),
                    }
                }
            }
            TableSource::Fbin { .. } => {
                let buf = self.read_file(def)?;
                let layout = raw_formats::fbin::FbinLayout::parse(&buf)?;
                let wanted = wanted_fields(def, cols)?;
                let spec = AccessPathSpec {
                    format: FileFormat::Fbin,
                    schema: def.schema.clone(),
                    wanted,
                    kind: AccessPathKind::SelectionDriven,
                    record_positions: Vec::new(),
                };
                let program = Arc::new(compile_fbin_program(&spec, &layout)?);
                Ok(Some(Box::new(FbinFetcher::new(buf, program))))
            }
            TableSource::Ibin { .. } => {
                let buf = self.read_file(def)?;
                let layout = IbinLayout::parse(&buf)?;
                let wanted = wanted_fields(def, cols)?;
                let spec = AccessPathSpec {
                    format: FileFormat::Ibin,
                    schema: def.schema.clone(),
                    wanted,
                    kind: AccessPathKind::SelectionDriven,
                    record_positions: Vec::new(),
                };
                // Selection-driven reads address rows directly; no pruning
                // predicates apply.
                let program = Arc::new(compile_ibin_program(&spec, &layout, &[])?);
                Ok(Some(Box::new(IbinFetcher::new(buf, program))))
            }
            TableSource::RootEvents { .. } => {
                let file = self.open_root(def)?;
                let program = Arc::new(root_scalar_program(&file, def, cols)?);
                Ok(Some(Box::new(RootScalarFetcher::new(file, program))))
            }
            TableSource::RootCollection { collection, parent_scalar, .. } => {
                let file = self.open_root(def)?;
                let program = Arc::new(root_collection_program(
                    &file,
                    collection,
                    parent_scalar.as_deref(),
                    def,
                    cols,
                )?);
                Ok(Some(Box::new(RootCollectionFetcher::new(file, program))))
            }
        }
    }

    // -- file plumbing ---------------------------------------------------------

    fn read_file(&mut self, def: &crate::catalog::TableDef) -> Result<FileBytes> {
        if let Some(stream) = &self.stream {
            if *def.source.path() == stream.path {
                // Served from the in-flight streaming read the parallel
                // planner started: same buffer every morsel, counted as the
                // pool hit the blocking path would have charged, and no
                // full-residency wait — the availability gates downstream
                // guarantee a morsel only reads resident bytes.
                self.ctx.files.note_stream_hit();
                return Ok(Arc::clone(stream.chunked.bytes()));
            }
        }
        Ok(self.ctx.files.read(def.source.path())?)
    }

    fn open_root(&mut self, def: &crate::catalog::TableDef) -> Result<Arc<RootSimFile>> {
        let path = def.source.path().clone();
        if let Some(f) = self.ctx.root_files.get(&path) {
            return Ok(f);
        }
        let buf = self.read_file(def)?;
        let file = Arc::new(RootSimFile::open_bytes(buf)?);
        // First-publish-wins: a racing planner's parse of the same bytes is
        // equivalent; adopt whichever handle landed first.
        Ok(self.ctx.root_files.publish(path, file))
    }

    fn ensure_loaded(
        &mut self,
        name: &str,
        def: &crate::catalog::TableDef,
    ) -> Result<Arc<MemTable>> {
        if let Some(t) = self.ctx.loaded.get(name) {
            return Ok(t);
        }
        self.note(format!("load {name} into DBMS columnar storage (all columns)"));
        let table = match &def.source {
            TableSource::Csv { .. } => {
                check_contiguous(def)?;
                let buf = self.read_file(def)?;
                raw_formats::csv::reader::read_table(&buf, &def.schema)?
            }
            TableSource::Fbin { .. } => {
                let buf = self.read_file(def)?;
                raw_formats::fbin::read_table(&buf, &def.schema)?
            }
            TableSource::Ibin { .. } => {
                let buf = self.read_file(def)?;
                raw_formats::ibin::read_table(&buf, &def.schema)?
            }
            TableSource::RootEvents { .. } | TableSource::RootCollection { .. } => {
                // Load by draining the rootsim scans over every declared
                // column.
                let all: Vec<ColRef> = def
                    .schema
                    .fields()
                    .iter()
                    .enumerate()
                    .map(|(i, f)| ColRef {
                        table: 0,
                        name: f.name.clone(),
                        schema_idx: i,
                        data_type: f.data_type,
                    })
                    .collect();
                let file = self.open_root(def)?;
                let op: Box<dyn Operator> = match &def.source {
                    TableSource::RootEvents { .. } => {
                        let program = Arc::new(root_scalar_program(&file, def, &all)?);
                        Box::new(RootScalarScan::new(
                            file,
                            program,
                            TableTag(0),
                            self.ctx.config.batch_size,
                        ))
                    }
                    TableSource::RootCollection { collection, parent_scalar, .. } => {
                        let program = Arc::new(root_collection_program(
                            &file,
                            collection,
                            parent_scalar.as_deref(),
                            def,
                            &all,
                        )?);
                        Box::new(RootCollectionScan::new(
                            file,
                            program,
                            TableTag(0),
                            self.ctx.config.batch_size,
                        ))
                    }
                    _ => unreachable!("outer match"),
                };
                let mut op = op;
                let batches = raw_columnar::ops::drain(op.as_mut())?;
                MemTable::from_batches(def.schema.clone(), &batches)?
            }
        };
        let table = Arc::new(table);
        // A loaded table is a complete statistics sample: histogram every
        // numeric column for later Adaptive decisions.
        self.ctx.stats.record_rows(name, table.rows() as u64);
        for (i, f) in def.schema.fields().iter().enumerate() {
            if f.data_type.is_numeric() {
                if let Ok(col) = table.column(i) {
                    self.ctx.stats.record_column(name, &f.name, col);
                }
            }
        }
        // First-publish-wins: two sessions racing to load the same table
        // built equivalent copies; everyone adopts the winner so exactly one
        // copy stays resident.
        Ok(self.ctx.loaded.publish(name, table))
    }
}

// ---------------------------------------------------------------------------
// Free helpers
// ---------------------------------------------------------------------------

fn predicate(pos: usize, op: CmpOp, value: &raw_columnar::Value) -> Predicate {
    Predicate::Cmp { col: pos, op, lit: value.clone() }
}

/// Slice the query per table: filters, join keys, and deduplicated output
/// columns attributed to their owning side, with the grouping key forced
/// into its table's outputs even when the select list only aggregates
/// (`SELECT COUNT(col2) … GROUP BY col1`). Shared by the serial planner and
/// the parallel planner so the two can never slice differently.
fn slice_per_table(q: &ResolvedQuery) -> Vec<TableCols> {
    let mut per_table: Vec<TableCols> = (0..q.tables.len())
        .map(|_| TableCols { filters: Vec::new(), join_key: None, outputs: Vec::new() })
        .collect();
    for f in &q.filters {
        per_table[f.col.table].filters.push(f.clone());
    }
    if let Some(j) = &q.join {
        per_table[0].join_key = Some(j.probe_col.clone());
        per_table[1].join_key = Some(j.build_col.clone());
    }
    for o in &q.outputs {
        let t = o.col.table;
        if !per_table[t].outputs.iter().any(|c| c.schema_idx == o.col.schema_idx) {
            per_table[t].outputs.push(o.col.clone());
        }
    }
    if let Some(g) = &q.group_by {
        if !per_table[g.table].outputs.iter().any(|c| c.schema_idx == g.schema_idx) {
            per_table[g.table].outputs.push(g.clone());
        }
    }
    per_table
}

/// The resolved top of a grouped-aggregation plan.
struct GroupedTop {
    /// Grouping-key position in the pipeline layout.
    key_pos: usize,
    /// Aggregate expressions over pipeline positions.
    exprs: Vec<AggExpr>,
    /// Projection over the `[key, agg₀, agg₁, …]` hash-aggregate output
    /// restoring select-list order.
    out_positions: Vec<usize>,
    /// Output column names in select-list order.
    names: Vec<String>,
}

/// Resolve a grouped select list against a pipeline layout. Shared by the
/// serial plan top ([`Planner::plan_query`]) and the parallel plan's
/// `MergePlan::Grouped` construction so the two can never drift.
fn grouped_top(q: &ResolvedQuery, layout: &Layout) -> Result<GroupedTop> {
    let g = q.group_by.as_ref().expect("grouped query");
    let key_pos = layout
        .position(g.table, g.schema_idx)
        .ok_or_else(|| EngineError::planning("group key not in layout"))?;
    // The hash aggregate emits [key, agg₀, agg₁, …]; remember where each
    // select item lands so a projection can restore the select-list order.
    let mut exprs = Vec::new();
    let mut out_positions = Vec::with_capacity(q.outputs.len());
    let mut names = Vec::with_capacity(q.outputs.len());
    for o in &q.outputs {
        match o.agg {
            Some(kind) => {
                let pos = layout
                    .position(o.col.table, o.col.schema_idx)
                    .ok_or_else(|| EngineError::planning("aggregate column not in layout"))?;
                exprs.push(AggExpr { kind, col: pos });
                out_positions.push(exprs.len()); // key occupies slot 0
                names.push(format!("{}({})", kind.sql(), o.col.name));
            }
            None => {
                out_positions.push(0);
                names.push(o.col.name.clone());
            }
        }
    }
    Ok(GroupedTop { key_pos, exprs, out_positions, names })
}

/// Resolve an all-aggregates select list against a pipeline layout: the
/// aggregate expressions (batch positions) and the output column names.
/// Shared by the serial plan top ([`Planner::plan_query`]) and the parallel
/// plan's merge construction so the two can never drift.
fn aggregate_exprs(q: &ResolvedQuery, layout: &Layout) -> Result<(Vec<AggExpr>, Vec<String>)> {
    let mut exprs = Vec::with_capacity(q.outputs.len());
    let mut names = Vec::with_capacity(q.outputs.len());
    for o in &q.outputs {
        let pos = layout
            .position(o.col.table, o.col.schema_idx)
            .ok_or_else(|| EngineError::planning("aggregate column not in layout"))?;
        let kind = o.agg.expect("is_aggregate");
        exprs.push(AggExpr { kind, col: pos });
        names.push(format!("{}({})", kind.sql(), o.col.name));
    }
    Ok((exprs, names))
}

/// Resolve a plain select list against a pipeline layout: projected batch
/// positions and output column names. Shared by the serial and parallel
/// plan tops.
fn projection_positions(q: &ResolvedQuery, layout: &Layout) -> Result<(Vec<usize>, Vec<String>)> {
    let mut cols = Vec::with_capacity(q.outputs.len());
    let mut names = Vec::with_capacity(q.outputs.len());
    for o in &q.outputs {
        let pos = layout
            .position(o.col.table, o.col.schema_idx)
            .ok_or_else(|| EngineError::planning("projected column not in layout"))?;
        cols.push(pos);
        names.push(o.col.name.clone());
    }
    Ok((cols, names))
}

fn wanted_fields(def: &crate::catalog::TableDef, cols: &[ColRef]) -> Result<Vec<WantedField>> {
    cols.iter()
        .map(|c| {
            def.schema
                .field(c.schema_idx)
                .map(|f| WantedField { source_ordinal: f.source_ordinal, data_type: f.data_type })
                .map_err(EngineError::from)
        })
        .collect()
}

/// Source ordinals of every column the query touches on table `t` (feeds the
/// tracking policy's `QueryColumns` mode).
fn query_source_ordinals(
    q: &ResolvedQuery,
    t: usize,
    def: &crate::catalog::TableDef,
) -> Vec<usize> {
    let mut out = Vec::new();
    let mut add = |c: &ColRef| {
        if c.table == t {
            if let Ok(f) = def.schema.field(c.schema_idx) {
                out.push(f.source_ordinal);
            }
        }
    };
    for f in &q.filters {
        add(&f.col);
    }
    if let Some(j) = &q.join {
        add(&j.probe_col);
        add(&j.build_col);
    }
    for o in &q.outputs {
        add(&o.col);
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// This table's filter conjuncts as pushed-down pruning predicates
/// (file-ordinal column references). Incomparable literals are passed
/// through; the zone tests simply decline to prune on them.
fn ibin_prune_preds(q: &ResolvedQuery, t: usize, def: &crate::catalog::TableDef) -> Vec<PrunePred> {
    q.filters
        .iter()
        .filter(|f| f.col.table == t)
        .filter_map(|f| {
            def.schema.field(f.col.schema_idx).ok().map(|field| PrunePred {
                col: field.source_ordinal,
                op: f.op,
                value: f.value.clone(),
            })
        })
        .collect()
}

fn posmap_fingerprint(map: Option<&PositionalMap>) -> u64 {
    let mut h: u64 = 0x9e3779b97f4a7c15;
    if let Some(map) = map {
        for &c in map.tracked_columns() {
            h ^= (c as u64).wrapping_add(0x632be59bd9b4e019);
            h = h.rotate_left(17).wrapping_mul(0x100000001b3);
        }
    }
    h
}

fn check_contiguous(def: &crate::catalog::TableDef) -> Result<()> {
    let contiguous = def.schema.fields().iter().enumerate().all(|(i, f)| f.source_ordinal == i);
    if contiguous {
        Ok(())
    } else {
        Err(EngineError::planning(format!(
            "loading table {} requires a fully-declared contiguous schema",
            def.name
        )))
    }
}

fn root_scalar_program(
    file: &RootSimFile,
    def: &crate::catalog::TableDef,
    cols: &[ColRef],
) -> Result<RootScalarProgram> {
    let mut branches = Vec::with_capacity(cols.len());
    for c in cols {
        let field = def.schema.field(c.schema_idx)?;
        let id = file.scalar_branch(&field.name).ok_or_else(|| {
            EngineError::planning(format!("no scalar branch named {}", field.name))
        })?;
        let dt = file.scalar_type(id);
        if dt != field.data_type {
            return Err(EngineError::planning(format!(
                "branch {} is {dt}, schema declares {}",
                field.name, field.data_type
            )));
        }
        branches.push((id, dt));
    }
    Ok(RootScalarProgram { branches })
}

fn root_collection_program(
    file: &RootSimFile,
    collection: &str,
    parent_scalar: Option<&str>,
    def: &crate::catalog::TableDef,
    cols: &[ColRef],
) -> Result<RootCollectionProgram> {
    let coll = file
        .collection(collection)
        .ok_or_else(|| EngineError::planning(format!("no collection named {collection}")))?;
    let mut fields = Vec::with_capacity(cols.len());
    for c in cols {
        let field = def.schema.field(c.schema_idx)?;
        if parent_scalar == Some(field.name.as_str()) {
            let id = file.scalar_branch(&field.name).ok_or_else(|| {
                EngineError::planning(format!("no scalar branch named {}", field.name))
            })?;
            fields.push((RootColField::ParentScalar(id), file.scalar_type(id)));
        } else {
            let id = file.field(coll, &field.name).ok_or_else(|| {
                EngineError::planning(format!("no field {} in collection {collection}", field.name))
            })?;
            fields.push((RootColField::Item(id), file.field_type(coll, id)));
        }
    }
    Ok(RootCollectionProgram { coll, fields })
}

// ---------------------------------------------------------------------------
// Standalone entry points for hand-assembled plans (the Higgs pipeline)
// ---------------------------------------------------------------------------

/// Build a bottom scan over `cols` of one table with a caller-chosen
/// provenance tag, including pool serving, recording, and posmap harvesting.
pub(crate) fn standalone_scan(
    ctx: &PlannerCtx<'_>,
    q: &ResolvedQuery,
    cols: &[ColRef],
    tag: TableTag,
) -> Result<(Box<dyn Operator>, Harvests)> {
    let mut planner =
        Planner { ctx, explain: Vec::new(), harvests: Harvests::default(), stream: None };
    let built = planner.make_scan(q, 0, cols, tag, None)?;
    Ok((built.op, std::mem::take(&mut planner.harvests)))
}

/// Attach `cols` of a table above an existing operator (late scan) with a
/// caller-chosen tag, including pool backing and shred recording.
pub(crate) fn standalone_attach(
    ctx: &PlannerCtx<'_>,
    q: &ResolvedQuery,
    op: Box<dyn Operator>,
    cols: &[ColRef],
    multi: bool,
    tag: TableTag,
) -> Result<(Box<dyn Operator>, Harvests)> {
    let mut planner =
        Planner { ctx, explain: Vec::new(), harvests: Harvests::default(), stream: None };
    let layout = Layout::default();
    let (next, _) = planner.attach_columns(q, op, layout, 0, cols, multi, "custom attach", tag)?;
    Ok((next, std::mem::take(&mut planner.harvests)))
}
