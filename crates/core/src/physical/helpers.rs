//! Engine-side operator adapters: pool-backed scans/fetchers, side-effect
//! recording (shred population), and positional-map harvesting.

use std::sync::Arc;

use parking_lot::Mutex;

use raw_access::csv::PosMapSource;
use raw_access::fetch::FieldFetcher;
use raw_columnar::batch::TableTag;
use raw_columnar::ops::Operator;
use raw_columnar::profile::{PhaseProfile, ScanMetrics};
use raw_columnar::{Batch, Column, ColumnarError, SparseColumn};
use raw_posmap::PositionalMap;

/// Shared slot the engine drains a scan-built positional map from.
pub type PosMapSink = Arc<Mutex<Option<PositionalMap>>>;

/// Shared shred under construction during one query.
pub type ShredSink = Arc<Mutex<SparseColumn>>;

/// Wraps a scan that may build a positional map; when the scan is exhausted,
/// the map is moved into the sink for the engine to merge.
pub struct HarvestPosMapOp<S: Operator + PosMapSource> {
    inner: S,
    sink: PosMapSink,
    harvested: bool,
}

impl<S: Operator + PosMapSource> HarvestPosMapOp<S> {
    /// Wrap `inner`, delivering its map into `sink` at exhaustion.
    pub fn new(inner: S, sink: PosMapSink) -> Self {
        HarvestPosMapOp { inner, sink, harvested: false }
    }
}

impl<S: Operator + PosMapSource> Operator for HarvestPosMapOp<S> {
    fn next_batch(&mut self) -> Result<Option<Batch>, ColumnarError> {
        let out = self.inner.next_batch()?;
        if out.is_none() && !self.harvested {
            self.harvested = true;
            *self.sink.lock() = self.inner.take_posmap();
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "HarvestPosMap"
    }

    fn scan_profile(&self) -> PhaseProfile {
        self.inner.scan_profile()
    }

    fn scan_metrics(&self) -> ScanMetrics {
        self.inner.scan_metrics()
    }
}

/// Tees selected batch columns into shreds as batches flow through —
/// "populating caches with recently accessed data" as a query side effect.
pub struct RecordingOp {
    inner: Box<dyn Operator>,
    table: TableTag,
    /// (batch column position, shred under construction).
    recordings: Vec<(usize, ShredSink)>,
}

impl RecordingOp {
    /// Record `recordings` (batch position → shred) for rows of `table`.
    pub fn new(
        inner: Box<dyn Operator>,
        table: TableTag,
        recordings: Vec<(usize, ShredSink)>,
    ) -> RecordingOp {
        RecordingOp { inner, table, recordings }
    }
}

impl Operator for RecordingOp {
    fn next_batch(&mut self) -> Result<Option<Batch>, ColumnarError> {
        let Some(batch) = self.inner.next_batch()? else {
            return Ok(None);
        };
        if let Some(rows) = batch.rows_of(self.table) {
            let rows = rows.to_vec();
            for (pos, sink) in &self.recordings {
                let col = batch.column(*pos)?;
                sink.lock().store_column(&rows, col)?;
            }
        }
        Ok(Some(batch))
    }

    fn name(&self) -> &'static str {
        "Recording"
    }

    fn scan_profile(&self) -> PhaseProfile {
        self.inner.scan_profile()
    }

    fn scan_metrics(&self) -> ScanMetrics {
        self.inner.scan_metrics()
    }
}

/// Serves fully-cached columns straight from the shred pool — the warm-cache
/// fast path that makes RAW's repeat queries behave "as if the data had been
/// loaded in advance" (§6).
pub struct PoolScanOp {
    shreds: Vec<Arc<SparseColumn>>,
    tag: TableTag,
    batch_size: usize,
    next_row: usize,
    rows: usize,
}

impl PoolScanOp {
    /// Scan `shreds` (all full, equal length) as a table tagged `tag`.
    pub fn new(
        shreds: Vec<Arc<SparseColumn>>,
        tag: TableTag,
        batch_size: usize,
    ) -> Result<PoolScanOp, ColumnarError> {
        let rows = shreds.first().map_or(0, |s| s.len());
        for s in &shreds {
            if !s.is_full() || s.len() != rows {
                return Err(ColumnarError::Plan {
                    message: "PoolScan requires full, equal-length shreds".into(),
                });
            }
        }
        Ok(PoolScanOp { shreds, tag, batch_size: batch_size.max(1), next_row: 0, rows })
    }
}

impl Operator for PoolScanOp {
    fn next_batch(&mut self) -> Result<Option<Batch>, ColumnarError> {
        if self.next_row >= self.rows {
            return Ok(None);
        }
        let start = self.next_row;
        let len = self.batch_size.min(self.rows - start);
        self.next_row += len;
        let columns = self
            .shreds
            .iter()
            .map(|s| s.dense().slice(start, len))
            .collect::<Result<Vec<_>, _>>()?;
        let rows: Vec<u64> = (start as u64..(start + len) as u64).collect();
        Batch::new(columns)?.with_provenance(self.tag, rows).map(Some)
    }

    fn name(&self) -> &'static str {
        "PoolScan"
    }
}

/// A fetcher that answers from cached shreds when they cover the requested
/// rows, falling back to a raw-file fetcher otherwise.
pub struct PoolBackedFetcher {
    shreds: Vec<Option<Arc<SparseColumn>>>,
    fallback: Option<Box<dyn FieldFetcher>>,
}

impl PoolBackedFetcher {
    /// One optional shred per wanted column (same order as the fallback's
    /// columns).
    pub fn new(
        shreds: Vec<Option<Arc<SparseColumn>>>,
        fallback: Option<Box<dyn FieldFetcher>>,
    ) -> PoolBackedFetcher {
        PoolBackedFetcher { shreds, fallback }
    }

    fn covered(&self, rows: &[u64]) -> bool {
        // Out-of-range mask reads are `false`, so no separate length check.
        self.shreds.iter().all(|s| match s {
            Some(s) => rows.iter().all(|&r| s.loaded_mask().get(r as usize)),
            None => false,
        })
    }
}

impl FieldFetcher for PoolBackedFetcher {
    fn fetch(&mut self, rows: &[u64]) -> Result<Vec<Column>, ColumnarError> {
        if self.covered(rows) {
            let idx: Vec<usize> = rows.iter().map(|&r| r as usize).collect();
            return self.shreds.iter().map(|s| s.as_ref().expect("covered").gather(&idx)).collect();
        }
        match self.fallback.as_mut() {
            Some(f) => f.fetch(rows),
            None => Err(ColumnarError::Plan {
                message: "shred pool does not cover requested rows and no raw-file \
                          fetcher is available (CSV without positional map)"
                    .into(),
            }),
        }
    }

    fn profile(&self) -> PhaseProfile {
        self.fallback.as_ref().map(|f| f.profile()).unwrap_or_default()
    }

    fn metrics(&self) -> ScanMetrics {
        self.fallback.as_ref().map(|f| f.metrics()).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raw_columnar::ops::{collect, BatchSource};
    use raw_columnar::{DataType, Value};

    fn full_shred(values: Vec<i64>) -> Arc<SparseColumn> {
        Arc::new(SparseColumn::full(values.into()))
    }

    #[test]
    fn pool_scan_slices_shreds() {
        let mut op = PoolScanOp::new(
            vec![full_shred(vec![1, 2, 3, 4, 5]), full_shred(vec![10, 20, 30, 40, 50])],
            TableTag(2),
            2,
        )
        .unwrap();
        let out = collect(&mut op).unwrap();
        assert_eq!(out.rows(), 5);
        assert_eq!(out.column(1).unwrap().as_i64().unwrap(), &[10, 20, 30, 40, 50]);
        assert_eq!(out.rows_of(TableTag(2)).unwrap().len(), 5);
    }

    #[test]
    fn pool_scan_rejects_partial() {
        let partial = Arc::new(SparseColumn::new(DataType::Int64, 3));
        assert!(PoolScanOp::new(vec![partial], TableTag(0), 4).is_err());
    }

    #[test]
    fn pool_fetcher_serves_covered_rows() {
        let mut shred = SparseColumn::new(DataType::Int64, 6);
        for r in [1usize, 4] {
            shred.store(r, &Value::Int64(r as i64 * 100)).unwrap();
        }
        let mut f = PoolBackedFetcher::new(vec![Some(Arc::new(shred))], None);
        let cols = f.fetch(&[4, 1]).unwrap();
        assert_eq!(cols[0].as_i64().unwrap(), &[400, 100]);
        assert!(f.fetch(&[2]).is_err(), "uncovered with no fallback");
    }

    #[test]
    fn pool_fetcher_falls_back() {
        struct Canned;
        impl FieldFetcher for Canned {
            fn fetch(&mut self, rows: &[u64]) -> Result<Vec<Column>, ColumnarError> {
                Ok(vec![Column::Int64(rows.iter().map(|&r| r as i64).collect())])
            }
            fn profile(&self) -> PhaseProfile {
                PhaseProfile::default()
            }
            fn metrics(&self) -> ScanMetrics {
                ScanMetrics::default()
            }
        }
        let mut f = PoolBackedFetcher::new(vec![None], Some(Box::new(Canned)));
        let cols = f.fetch(&[7, 9]).unwrap();
        assert_eq!(cols[0].as_i64().unwrap(), &[7, 9]);
    }

    #[test]
    fn recording_op_populates_shreds() {
        let b = Batch::new(vec![vec![10i64, 20].into(), vec![1.5f64, 2.5].into()])
            .unwrap()
            .with_provenance(TableTag(0), vec![3, 8])
            .unwrap();
        let sink_a: ShredSink = Arc::new(Mutex::new(SparseColumn::new(DataType::Int64, 0)));
        let sink_b: ShredSink = Arc::new(Mutex::new(SparseColumn::new(DataType::Float64, 0)));
        let mut op = RecordingOp::new(
            Box::new(BatchSource::new(vec![b])),
            TableTag(0),
            vec![(0, Arc::clone(&sink_a)), (1, Arc::clone(&sink_b))],
        );
        let _ = collect(&mut op).unwrap();
        let a = sink_a.lock();
        assert_eq!(a.get(3).unwrap(), Value::Int64(10));
        assert_eq!(a.get(8).unwrap(), Value::Int64(20));
        assert!(a.get(0).is_err());
        assert_eq!(sink_b.lock().get(8).unwrap(), Value::Float64(2.5));
    }
}
