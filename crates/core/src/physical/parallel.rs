//! Morsel-parallel physical planning.
//!
//! [`try_plan`] decides whether a resolved query is eligible for the
//! parallel path and, if so, partitions the raw file into record-aligned
//! morsels (via `raw-exec`) and builds one full scan→filter→attach pipeline
//! per morsel through the ordinary [`super::Planner`] machinery — the same
//! access-path selection, shred staging, and side-effect recording as the
//! serial planner, just bounded to one [`ScanSegment`] each.
//!
//! Eligible today: single-table queries without `GROUP BY` over CSV, fbin,
//! and rootsim-event sources under the in-situ or JIT access modes.
//! Everything else (joins, grouped aggregation, ibin's pruned scans,
//! root collections, DBMS/external modes, fully-shred-cached tables) falls
//! back to the serial plan — correctness first, coverage growing per the
//! roadmap.
//!
//! Determinism: the morsel grid is a function of the file and the
//! `morsel_bytes` knob only, never of the worker count, so any
//! `parallelism >= 2` produces identical results (and `parallelism == 1`
//! never enters this module at all — the serial path is untouched).

use raw_exec::{partition_csv, partition_csv_with_map, partition_rows, MergePlan, Morsel};

use raw_access::spec::ScanSegment;
use raw_columnar::ops::{Operator, ProjectOp};
use raw_formats::fbin::FbinLayout;

use crate::catalog::TableSource;
use crate::engine::{AccessMode, ShredStrategy};
use crate::error::Result;
use crate::plan::ResolvedQuery;

use super::helpers::PosMapSink;
use super::{AttachWhen, Harvests, Planner, PlannerCtx, TableCols};

/// Never split a file into more morsels than this: beyond a few hundred the
/// per-morsel planning and merge overhead buys no extra load balance.
const MAX_MORSELS: usize = 256;

/// A ready-to-run parallel plan: one pipeline per morsel plus the merge
/// recipe and the side-effect channels the engine absorbs after the barrier.
pub(crate) struct ParallelPlan {
    /// One operator pipeline per morsel, in morsel order.
    pub pipelines: Vec<Box<dyn Operator>>,
    /// How per-morsel outputs combine.
    pub merge: MergePlan,
    /// Shred sinks from every morsel (disjoint global row ranges; the
    /// engine's ordinary absorb path merges them into the shared pool).
    pub harvests: Harvests,
    /// Positional-map fragment sinks in morsel order, with the table each
    /// belongs to; the engine appends fragments in this order to recover the
    /// file-wide map.
    pub posmap_sinks: Vec<(String, PosMapSink)>,
    /// Plan description.
    pub explain: Vec<String>,
    /// Output column names.
    pub output_names: Vec<String>,
}

/// Plan `q` for morsel-parallel execution, or `None` when the query (or the
/// engine state) wants the serial path.
pub(crate) fn try_plan(
    ctx: &mut PlannerCtx<'_>,
    q: &ResolvedQuery,
    threads: usize,
) -> Result<Option<ParallelPlan>> {
    if threads < 2
        || q.tables.len() != 1
        || q.join.is_some()
        || q.group_by.is_some()
        || !matches!(ctx.config.mode, AccessMode::InSitu | AccessMode::Jit)
    {
        return Ok(None);
    }
    let name = q.tables[0].clone();
    let def = ctx.catalog.get(&name)?.clone();
    if !matches!(
        def.source,
        TableSource::Csv { .. } | TableSource::Fbin { .. } | TableSource::RootEvents { .. }
    ) {
        return Ok(None);
    }

    // Fully-cached tables: the serial PoolScan path is already memory-speed
    // and whole-file shaped; don't segment it.
    let all_pooled =
        query_columns(q).iter().all(|col| ctx.pool.get(&name, col).is_some_and(|s| s.is_full()));
    if all_pooled {
        return Ok(None);
    }

    let mut planner = Planner { ctx, explain: Vec::new(), harvests: Harvests::default() };

    // Partition the file. The grid depends on the file (and the morsel-size
    // knob), never on `threads`, so results are thread-count invariant.
    let morsel_bytes = planner.ctx.config.morsel_bytes.max(1);
    let morsels: Vec<Morsel> = match &def.source {
        TableSource::Csv { .. } => {
            let buf = planner.ctx.files.read(def.source.path())?;
            let target = (buf.len() / morsel_bytes).clamp(1, MAX_MORSELS);
            // Positional-map entries double as split hints: column 0's
            // recorded positions are the record starts, so no probe pass.
            let hinted = planner
                .ctx
                .posmaps
                .get(&name)
                .and_then(|m| partition_csv_with_map(m, buf.len(), target));
            match hinted {
                Some(ms) => ms,
                None => {
                    let p = partition_csv(&buf, target);
                    // The probe splits on raw newlines (the JIT dialect).
                    // The general-purpose in-situ scan is quote-aware, so a
                    // quote-bearing file could hide a newline inside a field
                    // the probe would treat as a record boundary — decline
                    // to split and stay serial. (Map-hinted boundaries above
                    // come from an actual parse, so they stay eligible.)
                    if p.saw_quote && ctx_mode_is_insitu(planner.ctx) {
                        return Ok(None);
                    }
                    p.morsels
                }
            }
        }
        TableSource::Fbin { .. } => {
            let buf = planner.ctx.files.read(def.source.path())?;
            let layout = FbinLayout::parse(&buf)?;
            let rows_per_morsel = (morsel_bytes / layout.row_width.max(1)).max(1) as u64;
            let target = (layout.rows / rows_per_morsel).clamp(1, MAX_MORSELS as u64);
            partition_rows(layout.rows, target as usize)
        }
        TableSource::RootEvents { .. } => {
            let file = planner.open_root(&def)?;
            let events = file.num_events();
            let bytes_per_event = (8 * def.schema.len()).max(1);
            let rows_per_morsel = (morsel_bytes / bytes_per_event).max(1) as u64;
            let target = (events / rows_per_morsel).clamp(1, MAX_MORSELS as u64);
            partition_rows(events, target as usize)
        }
        _ => unreachable!("gated above"),
    };
    if morsels.len() < 2 {
        return Ok(None); // nothing to parallelize
    }
    let text_format = matches!(def.source, TableSource::Csv { .. });

    // Slice the single table the way the serial planner does.
    let mut tc = TableCols { filters: Vec::new(), join_key: None, outputs: Vec::new() };
    for f in &q.filters {
        tc.filters.push(f.clone());
    }
    for o in &q.outputs {
        if !tc.outputs.iter().any(|c| c.schema_idx == o.col.schema_idx) {
            tc.outputs.push(o.col.clone());
        }
    }

    let strategy = planner.resolve_strategy(q, 0, &tc);
    let when = match strategy {
        ShredStrategy::FullColumns => AttachWhen::Early,
        _ => AttachWhen::AfterFilters,
    };

    let mut pipelines: Vec<Box<dyn Operator>> = Vec::with_capacity(morsels.len());
    let mut posmap_sinks: Vec<(String, PosMapSink)> = Vec::new();
    let mut harvests = Harvests::default();
    let mut merge: Option<MergePlan> = None;
    let mut output_names: Vec<String> = Vec::new();
    let mut explain_len = 0usize;

    for morsel in &morsels {
        let segment = if text_format {
            ScanSegment {
                first_row: morsel.first_row,
                end_row: Some(morsel.end_row),
                byte_start: morsel.byte_start,
                byte_end: Some(morsel.byte_end),
            }
        } else {
            ScanSegment::rows(morsel.first_row, morsel.end_row)
        };
        let built = planner.build_table_pipeline(q, 0, &tc, strategy, when, Some(segment))?;
        let mut op = built.op;
        let layout = built.layout;

        // The plan top, resolved with the same helpers as the serial
        // planner: scalar aggregation becomes per-morsel partial state
        // merged by raw-exec; projections apply per morsel and concatenate.
        if merge.is_none() {
            if q.is_aggregate() {
                let (exprs, names) = super::aggregate_exprs(q, &layout)?;
                output_names = names;
                merge = Some(MergePlan::Aggregate(exprs));
            } else {
                let (_, names) = super::projection_positions(q, &layout)?;
                output_names = names;
                merge = Some(MergePlan::Concat);
            }
        }
        if matches!(merge, Some(MergePlan::Concat)) {
            let (cols, _) = super::projection_positions(q, &layout)?;
            op = Box::new(ProjectOp::new(op, cols));
        }
        pipelines.push(op);

        // Pull this morsel's posmap sink out so fragments can be appended in
        // morsel order after execution (the generic merge path would reject
        // them: fragments have disjoint row ranges, not equal ones).
        for (table, sink) in planner.harvests.posmaps.drain(..) {
            posmap_sinks.push((table, sink));
        }
        harvests.shreds.append(&mut planner.harvests.shreds);

        // Keep the plan description readable: one morsel's worth of scan
        // notes describes them all.
        match explain_len {
            0 => explain_len = planner.explain.len(),
            n => planner.explain.truncate(n),
        }
    }

    let merge = merge.expect("at least two morsels built");
    planner.explain.push(format!(
        "parallel: {} morsels x {} threads [{}]",
        morsels.len(),
        threads,
        match &merge {
            MergePlan::Concat => "concat in morsel order",
            MergePlan::Aggregate(_) => "partial aggregates merged in morsel order",
        }
    ));
    let explain = std::mem::take(&mut planner.explain);

    Ok(Some(ParallelPlan { pipelines, merge, harvests, posmap_sinks, explain, output_names }))
}

/// Whether the engine is in general-purpose in-situ mode (quote-aware CSV
/// tokenizing, unlike the JIT dialect).
fn ctx_mode_is_insitu(ctx: &PlannerCtx<'_>) -> bool {
    ctx.config.mode == AccessMode::InSitu
}

/// Names of every column the query touches (filters and outputs).
fn query_columns(q: &ResolvedQuery) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for f in &q.filters {
        if !out.contains(&f.col.name) {
            out.push(f.col.name.clone());
        }
    }
    for o in &q.outputs {
        if !out.contains(&o.col.name) {
            out.push(o.col.name.clone());
        }
    }
    out
}
