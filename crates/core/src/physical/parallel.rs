//! Morsel-parallel physical planning.
//!
//! [`try_plan`] decides whether a resolved query is eligible for the
//! parallel path and, if so, runs four stages that share the serial
//! [`super::Planner`]'s machinery — the same access-path selection, shred
//! staging, cost-model consultation, and side-effect recording:
//!
//! 1. **eligibility** — which queries can be morsel-parallelized at all;
//! 2. **partition** — split the probe (driving) table into record-aligned
//!    morsels via `raw-exec`, choosing the probe dialect the scan will use;
//! 3. **per-morsel build** — one scan→filter→join→attach pipeline per
//!    morsel, each bounded to one [`ScanSegment`]. Joins build the
//!    build-side hash table **once** (serially, or from pooled shreds) and
//!    share it read-only across every per-morsel probe pipeline; all three
//!    `JoinPlacement` points are honored, with Late attaches running above
//!    the join per morsel;
//! 4. **merge resolution** — how per-morsel outputs combine: concatenation
//!    for selections, scalar partial-aggregate states for aggregates, and
//!    grouped partial hash-table states ([`MergePlan::Grouped`]) for
//!    `GROUP BY`, all merged deterministically in morsel order.
//!
//! Eligible today: queries over a CSV, fbin, rootsim-event, ibin, or
//! rootsim-collection driving table under the in-situ or JIT access modes —
//! including joins (any serially-scannable build side) and grouped
//! aggregation. Each format partitions on its native granularity (see
//! `raw_exec::morsel`): CSV on probed record boundaries, fbin/root-events
//! by row arithmetic, ibin on **page boundaries** (so per-morsel
//! zone-index pruning tiles the serial candidate set and its counters
//! exactly, and an all-pruned morsel is a no-op), and collections on
//! **event boundaries sized by the offsets table's item counts** (so
//! exploded item rows balance across morsels and concatenate in morsel
//! order). Everything else (DBMS/external modes, fully-shred-cached
//! driving tables) falls back to the serial plan.
//!
//! Determinism: the morsel grid is a function of the file and the
//! `morsel_bytes` / `skew_split` knobs only, never of the worker count, so
//! any `parallelism >= 2` produces identical results (and
//! `parallelism == 1` never enters this module at all — the serial path is
//! untouched). Skew resistance is deterministic by construction: the
//! `skew_split` knob refines the grid at *plan* time (finer sub-morsels the
//! pool can rebalance around a long tail), and the executor's heavy-first
//! claim ordering reorders only *dispatch*, never results or counters.

use std::sync::Arc;

use raw_exec::{
    partition_csv, partition_csv_quoted, partition_csv_quoted_streaming, partition_csv_streaming,
    partition_csv_with_map, partition_items, partition_pages, partition_rows, GroupedMerge,
    MergePlan, Morsel, MorselGate,
};

use raw_access::spec::ScanSegment;
use raw_columnar::batch::TableTag;
use raw_columnar::ops::{drain, HashJoinOp, JoinBuildSide, Operator, ProjectOp};
use raw_columnar::profile::{PhaseProfile, ScanMetrics};
use raw_columnar::{Batch, ColumnarError};
use raw_formats::fbin::FbinLayout;
use raw_formats::file_buffer::ChunkedFileBuffer;
use raw_formats::ibin::IbinLayout;
use raw_formats::rzb::{self, RzbDecoder};

use crate::catalog::{TableDef, TableSource};
use crate::engine::{AccessMode, ShredStrategy};
use crate::error::{EngineError, Result};
use crate::plan::{ColRef, ResolvedQuery};
use crate::stats::MorselMeta;

use super::helpers::PosMapSink;
use super::{slice_per_table, AttachWhen, Harvests, Planner, PlannerCtx, StreamHandle};

/// Never split a file into more morsels than this: beyond a few hundred the
/// per-morsel planning and merge overhead buys no extra load balance.
const MAX_MORSELS: usize = 256;

/// Skew-resistance refinement of a format's natural morsel target: multiply
/// by the `skew_split` knob (1 = off), capped at [`MAX_MORSELS`]. Finer
/// sub-morsels let the pool's dynamic claiming rebalance around a long-tail
/// morsel, and their results merge in the same deterministic morsel order.
/// The refined target is a pure function of the natural target and the knob
/// — never the worker count or runtime timing — so the grid invariant
/// documented on this module is preserved at any setting.
fn refine_target(natural: usize, skew_split: usize) -> usize {
    natural.saturating_mul(skew_split.max(1)).clamp(1, MAX_MORSELS)
}

/// A ready-to-run parallel plan: one pipeline per morsel plus the merge
/// recipe and the side-effect channels the engine absorbs after the barrier.
pub(crate) struct ParallelPlan {
    /// One operator pipeline per morsel, in morsel order.
    pub pipelines: Vec<Box<dyn Operator>>,
    /// How per-morsel outputs combine.
    pub merge: MergePlan,
    /// Shred sinks from the shared build side and from every morsel
    /// (disjoint or identically-valued global row ranges; the engine's
    /// ordinary absorb path merges them into the shared pool).
    pub harvests: Harvests,
    /// Positional-map fragment sinks in morsel order, with the table each
    /// belongs to; the engine appends fragments in this order to recover the
    /// file-wide map. (A join's build side contributes its whole-file map as
    /// the build table's single fragment.)
    pub posmap_sinks: Vec<(String, PosMapSink)>,
    /// Scan work already performed at plan time (the serial drain of a
    /// join's build side); the engine merges it into the query's profile.
    pub build_profile: PhaseProfile,
    /// Scan volume metrics of the plan-time build-side drain.
    pub build_metrics: ScanMetrics,
    /// Per-morsel availability gates (empty on warm/blocking runs): on cold
    /// streamed runs, morsel `i` dispatches only once gate `i` reports its
    /// byte range resident, so early morsels scan while later chunks are
    /// still on disk.
    pub gates: Vec<Option<MorselGate>>,
    /// Plan description.
    pub explain: Vec<String>,
    /// Output column names.
    pub output_names: Vec<String>,
    /// Static morsel metadata (driving format, byte/row ranges), aligned
    /// with `pipelines`; the engine zips it with the runtime morsel traces
    /// into the query's [`crate::stats::QueryTrace`].
    pub morsel_meta: Vec<MorselMeta>,
}

/// Plan `q` for morsel-parallel execution, or `None` when the query (or the
/// engine state) wants the serial path.
pub(crate) fn try_plan(
    ctx: &PlannerCtx<'_>,
    q: &ResolvedQuery,
    threads: usize,
) -> Result<Option<ParallelPlan>> {
    // -- stage 1: eligibility ------------------------------------------------
    if !eligible(ctx, q, threads)? {
        return Ok(None);
    }
    let driving = ctx.catalog.get(&q.tables[0])?.clone();
    let mut planner =
        Planner { ctx, explain: Vec::new(), harvests: Harvests::default(), stream: None };

    // -- stage 2: partition the driving table --------------------------------
    let Some(parted) = partition(&mut planner, &q.tables[0], &driving)? else {
        return Ok(None); // nothing to parallelize
    };
    let Partitioned { morsels, stream, decoder, ready } = parted;
    let text_format = matches!(driving.source, TableSource::Csv { .. });
    let format = source_format(&driving.source);
    let morsel_meta: Vec<MorselMeta> = morsels
        .iter()
        .map(|m| MorselMeta {
            format,
            byte_start: m.byte_start,
            byte_end: m.byte_end,
            first_row: m.first_row,
            end_row: m.end_row,
        })
        .collect();

    // Cold streamed run still in flight: per-morsel pipelines read from the
    // in-flight buffer (no full-residency wait at plan time); the
    // availability gates built below keep execution correct.
    if let Some(st) = &stream {
        planner.note("cold stream in flight: availability-gated morsel dispatch".to_owned());
        planner.stream = Some(StreamHandle::new(driving.source.path().clone(), Arc::clone(st)));
        // A self-join builds (and drains) the build side over the same file
        // at plan time; that read needs full residency now.
        if let Some(_j) = q.join.as_ref() {
            if q.tables.len() > 1 {
                let build_def = planner.ctx.catalog.get(&q.tables[1])?;
                if build_def.source.path() == driving.source.path() {
                    // The decoded rzb buffer fills only when the decoder is
                    // driven; decode everything, then the wait is immediate.
                    if let Some(d) = &decoder {
                        d.ensure_all().map_err(EngineError::from)?;
                    }
                    st.wait_all().map_err(EngineError::from)?;
                }
            }
        }
    }

    // Shared planning state, resolved once (not per morsel): the per-table
    // query slices, materialization strategies, and join-side placements —
    // the same calls, in the same order, as the serial `plan_query`.
    let per_table = slice_per_table(q);
    let strategies: Vec<ShredStrategy> =
        (0..q.tables.len()).map(|t| planner.resolve_strategy(q, t, &per_table[t])).collect();

    // Join: resolve placements per side and build the build side ONCE —
    // serially, through the ordinary whole-file pipeline (pool-served when
    // shreds cover it) — then share the hash table across morsel probes.
    let mut build_profile = PhaseProfile::default();
    let mut build_metrics = ScanMetrics::default();
    let (placements, shared_build, probe_when) = match q.join.as_ref() {
        Some(j) => {
            let placements: Vec<AttachWhen> =
                (0..2).map(|t| planner.resolve_placement(q, t, &per_table[t])).collect();
            let built = planner.build_table_pipeline(
                q,
                1,
                &per_table[1],
                strategies[1],
                placements[1],
                None,
            )?;
            let build_key = built
                .layout
                .position(1, j.build_col.schema_idx)
                .ok_or_else(|| EngineError::planning("build key missing from layout"))?;
            let mut op = built.op;
            let batches = drain(op.as_mut())?;
            build_profile = op.scan_profile();
            build_metrics = op.scan_metrics();
            drop(op); // release sinks so fragments unwrap cheaply later
            let shared = Arc::new(JoinBuildSide::build(Batch::concat(&batches)?, build_key)?);
            planner.note(format!(
                "hash join {}.{} = {}.{} (probe left, build right; build side [{} rows] \
                 built once, shared across {} probe morsels)",
                q.tables[0],
                j.probe_col.name,
                q.tables[1],
                j.build_col.name,
                shared.rows(),
                morsels.len(),
            ));
            let probe_when = placements[0];
            (Some(placements), Some((shared, built.layout)), probe_when)
        }
        None => {
            let when = match strategies[0] {
                ShredStrategy::FullColumns => AttachWhen::Early,
                _ => AttachWhen::AfterFilters,
            };
            (None, None, when)
        }
    };

    // -- stage 3: per-morsel pipeline build ----------------------------------
    let mut pipelines: Vec<Box<dyn Operator>> = Vec::with_capacity(morsels.len());
    let mut posmap_sinks: Vec<(String, PosMapSink)> = Vec::new();
    let mut harvests = Harvests::default();
    let mut merge: Option<MergePlan> = None;
    let mut output_names: Vec<String> = Vec::new();

    // The build side's side effects come first (its posmap is the build
    // table's single whole-file fragment).
    for (table, sink) in planner.harvests.posmaps.drain(..) {
        posmap_sinks.push((table, sink));
    }
    harvests.shreds.append(&mut planner.harvests.shreds);

    for (i, morsel) in morsels.iter().enumerate() {
        // Keep the plan description readable: the first morsel's notes
        // describe them all. Later morsels build against a scratch vec
        // (swapped in here, dropped below) instead of truncating the
        // shared one.
        let kept = (i > 0).then(|| std::mem::take(&mut planner.explain));

        let segment = if text_format {
            ScanSegment {
                first_row: morsel.first_row,
                end_row: Some(morsel.end_row),
                byte_start: morsel.byte_start,
                byte_end: Some(morsel.byte_end),
            }
        } else {
            ScanSegment::rows(morsel.first_row, morsel.end_row)
        };
        let built = planner.build_table_pipeline(
            q,
            0,
            &per_table[0],
            strategies[0],
            probe_when,
            Some(segment),
        )?;
        let mut op = built.op;
        let mut layout = built.layout;

        // The join above each morsel's probe pipeline, probing the shared
        // build side; then Late attaches above the join, for the sides
        // placed there — per morsel, exactly like the serial plan's top.
        if let Some((shared, build_layout)) = &shared_build {
            let j = q.join.as_ref().expect("shared build implies a join");
            let probe_key = layout
                .position(0, j.probe_col.schema_idx)
                .ok_or_else(|| EngineError::planning("probe key missing from layout"))?;
            op = Box::new(HashJoinOp::with_shared(op, Arc::clone(shared), probe_key));
            layout.extend(build_layout);

            let placements = placements.as_ref().expect("join resolved placements");
            for (t, tc) in per_table.iter().enumerate() {
                if placements[t] != AttachWhen::Never {
                    continue;
                }
                let missing: Vec<ColRef> = tc
                    .outputs
                    .iter()
                    .filter(|c| layout.position(t, c.schema_idx).is_none())
                    .cloned()
                    .collect();
                if missing.is_empty() {
                    continue;
                }
                let (next, new_layout) = planner.attach_columns(
                    q,
                    op,
                    layout,
                    t,
                    &missing,
                    /* multi = */ false,
                    "late (above join)",
                    TableTag(t as u32),
                )?;
                op = next;
                layout = new_layout;
            }
        }

        // -- stage 4: merge resolution (first morsel; layouts are
        // identical across morsels by construction) ------------------------
        if merge.is_none() {
            let (resolved, names) = resolve_merge(&mut planner, q, &layout)?;
            merge = Some(resolved);
            output_names = names;
        }
        if matches!(merge, Some(MergePlan::Concat)) {
            let (cols, _) = super::projection_positions(q, &layout)?;
            op = Box::new(ProjectOp::new(op, cols));
        }
        pipelines.push(op);

        // Pull this morsel's posmap sink out so fragments can be appended in
        // morsel order after execution (the generic merge path would reject
        // them: fragments have disjoint row ranges, not equal ones).
        for (table, sink) in planner.harvests.posmaps.drain(..) {
            posmap_sinks.push((table, sink));
        }
        harvests.shreds.append(&mut planner.harvests.shreds);

        if let Some(kept) = kept {
            planner.explain = kept;
        }
    }

    let merge = merge.expect("at least two morsels built");
    planner.explain.push(format!(
        "parallel: {} morsels x {} threads [{}]",
        morsels.len(),
        threads,
        match &merge {
            MergePlan::Concat => "concat in morsel order",
            MergePlan::Aggregate(_) => "partial aggregates merged in morsel order",
            MergePlan::Grouped(_) => "grouped partial states merged in morsel order",
        }
    ));
    let explain = std::mem::take(&mut planner.explain);

    // Availability gates: morsel i runs once bytes ready[i] are resident.
    // Plain streams fill sequentially, so waiting on the prefix is exact;
    // rzb gates actively decode exactly the blocks covering their morsel's
    // range (claims deduplicated across gates), so decode work fans out
    // over the worker pool. A reader I/O failure (or a corrupt block)
    // surfaces through the gate as this morsel's error.
    let gates: Vec<Option<MorselGate>> = match (&stream, &decoder) {
        (Some(_), Some(dec)) => ready
            .iter()
            .cloned()
            .map(|r| {
                let dec = Arc::clone(dec);
                let gate: MorselGate = Box::new(move || {
                    dec.ensure_decoded(r)
                        .map_err(|e| ColumnarError::External { message: e.to_string() })
                });
                Some(gate)
            })
            .collect(),
        (Some(st), None) => ready
            .iter()
            .cloned()
            .map(|r| {
                let st = Arc::clone(st);
                let gate: MorselGate = Box::new(move || {
                    st.wait_available(r)
                        .map_err(|e| ColumnarError::External { message: e.to_string() })
                });
                Some(gate)
            })
            .collect(),
        _ => Vec::new(),
    };

    Ok(Some(ParallelPlan {
        pipelines,
        merge,
        harvests,
        posmap_sinks,
        build_profile,
        build_metrics,
        gates,
        explain,
        output_names,
        morsel_meta,
    }))
}

/// Stable format label for morsel metadata (trace artifacts key on it).
fn source_format(source: &TableSource) -> &'static str {
    match source {
        TableSource::Csv { .. } => "csv",
        TableSource::Fbin { .. } => "fbin",
        TableSource::Ibin { .. } => "ibin",
        TableSource::RootEvents { .. } => "root-events",
        TableSource::RootCollection { .. } => "root-collection",
    }
}

/// Stage 1: whether the query can take the parallel path at all. The
/// *driving* table (0) must be partitionable into record-aligned morsels
/// and not already fully shred-cached; a join's build side only needs an
/// ordinary serial scan, so any source the mode supports qualifies there.
fn eligible(ctx: &PlannerCtx<'_>, q: &ResolvedQuery, threads: usize) -> Result<bool> {
    if threads < 2 || !matches!(ctx.config.mode, AccessMode::InSitu | AccessMode::Jit) {
        return Ok(false);
    }
    let def = ctx.catalog.get(&q.tables[0])?;
    if !matches!(
        def.source,
        TableSource::Csv { .. }
            | TableSource::Fbin { .. }
            | TableSource::Ibin { .. }
            | TableSource::RootEvents { .. }
            | TableSource::RootCollection { .. }
    ) {
        return Ok(false);
    }
    // Fully-cached driving table: the serial PoolScan path is already
    // memory-speed and whole-file shaped; don't segment it.
    let name = q.tables[0].clone();
    let all_pooled =
        table_columns(q, 0).iter().all(|col| ctx.pool.get(&name, col).is_some_and(|s| s.is_full()));
    Ok(!all_pooled)
}

/// Stage 2's product: the morsel grid plus the cold-stream context needed
/// to gate execution on availability.
struct Partitioned {
    morsels: Vec<Morsel>,
    /// The in-flight streaming read of the driving file — `Some` only on
    /// cold runs of flat formats with streaming enabled
    /// (`read_chunk_bytes > 0`). `None` means everything the pipelines
    /// touch is resident by plan time (warm, blocking, or root formats).
    stream: Option<Arc<ChunkedFileBuffer>>,
    /// The block decoder behind `stream` — `Some` only for `.rzb` sources.
    /// When present, `stream` is the decoder's *uncompressed* buffer and
    /// every morsel gate routes through [`RzbDecoder::ensure_decoded`]
    /// (which decodes exactly the blocks covering the range) instead of
    /// passively waiting: the decoded buffer has no background filler.
    decoder: Option<Arc<RzbDecoder>>,
    /// Per-morsel resident-byte requirement, aligned with `morsels`: morsel
    /// `i` may dispatch once bytes `ready[i]` are resident. Plain streams
    /// fill sequentially, so their requirement is the prefix `0..byte_end`
    /// (exact even for formats whose morsels read several disjoint ranges);
    /// `.rzb` gates use the morsel's own `byte_start..byte_end` so each
    /// gate decodes only its covering blocks. Empty when `stream` is
    /// `None`.
    ready: Vec<std::ops::Range<usize>>,
}

/// Wait until the fbin header (magic + ncols + types + nrows) is resident,
/// so `FbinLayout::parse` reads real bytes — fbin's parse touches nothing
/// past the header, unlike ibin's (which decodes the tail zone index and
/// therefore needs the whole file). Short files skip straight to parse's
/// truncation error.
fn wait_fbin_header(st: &ChunkedFileBuffer) -> Result<()> {
    let len = st.len();
    st.wait_available(0..12.min(len)).map_err(EngineError::from)?;
    if len < 12 {
        return Ok(());
    }
    let ncols = u32::from_le_bytes(st.bytes()[8..12].try_into().expect("sized")) as usize;
    st.wait_available(0..(12 + ncols + 8).min(len)).map_err(EngineError::from)?;
    Ok(())
}

/// [`wait_fbin_header`] for a blocked-compressed source: the decoded buffer
/// has no background filler, so the header's covering blocks must be
/// *decoded* (not merely awaited) before `FbinLayout::parse` reads them.
fn wait_fbin_header_rzb(d: &RzbDecoder) -> Result<()> {
    let len = d.len();
    d.ensure_decoded(0..12.min(len)).map_err(EngineError::from)?;
    if len < 12 {
        return Ok(());
    }
    let ncols = u32::from_le_bytes(d.decoded().bytes()[8..12].try_into().expect("sized")) as usize;
    d.ensure_decoded(0..(12 + ncols + 8).min(len)).map_err(EngineError::from)?;
    Ok(())
}

/// Stage 2: split the driving table into morsels, or `None` when the file
/// is too small to split. The grid depends on the file (and the morsel-size
/// knob), never on the worker count — and never on whether the bytes
/// arrived streamed or blocking (the streamed probes are the same code over
/// the same bytes) — so results are thread-count and cold-path invariant.
///
/// On cold runs of flat formats (CSV, fbin, ibin) with streaming enabled,
/// the read is started as a chunked stream and only the bytes partitioning
/// itself needs are awaited: the CSV probe follows the reader chunk by
/// chunk, fbin/ibin wait for their headers. Rootsim formats parse a
/// directory at open time and keep the blocking read.
fn partition(
    planner: &mut Planner<'_, '_>,
    name: &str,
    def: &TableDef,
) -> Result<Option<Partitioned>> {
    let morsel_bytes = planner.ctx.config.morsel_bytes.max(1);
    let chunk_bytes = planner.ctx.config.read_chunk_bytes;
    let skew = planner.ctx.config.skew_split.max(1);
    if skew > 1 {
        planner.note(format!("skew split x{skew}: refined morsel grid"));
    }
    let flat = matches!(
        def.source,
        TableSource::Csv { .. } | TableSource::Fbin { .. } | TableSource::Ibin { .. }
    );
    let mut decoder: Option<Arc<RzbDecoder>> = None;
    let stream: Option<Arc<ChunkedFileBuffer>> =
        if chunk_bytes > 0 && flat && rzb::is_rzb_path(def.source.path()) {
            // Blocked-compressed source: the compressed bytes stream off disk
            // while morsel gates decode exactly the blocks they cover, so early
            // morsels scan while later blocks are still being read AND decoded.
            let cold = !planner.ctx.files.is_warm(def.source.path());
            let dec = planner.ctx.files.read_rzb_streaming(def.source.path(), chunk_bytes)?;
            if cold {
                planner.note(format!(
                    "cold rzb stream: {} blocks x {} bytes (compressed {} -> {} bytes)",
                    dec.block_count(),
                    dec.block_bytes(),
                    dec.compressed_len(),
                    dec.len(),
                ));
            }
            let st = Arc::clone(dec.decoded());
            decoder = Some(dec);
            Some(st)
        } else if chunk_bytes > 0 && flat {
            let cold = !planner.ctx.files.is_warm(def.source.path());
            let st = planner.ctx.files.read_streaming(def.source.path(), chunk_bytes)?;
            if cold {
                // Deterministic observability: the read went through the chunked
                // reader thread (whether or not it is still in flight by the
                // time planning finishes — small files often complete first).
                planner.note(format!(
                    "cold stream: {} chunks x {} bytes",
                    ChunkedFileBuffer::chunk_count(st.len(), st.chunk_bytes()),
                    st.chunk_bytes(),
                ));
            }
            Some(st)
        } else {
            None
        };

    let mut ready: Vec<std::ops::Range<usize>> = Vec::new();
    let morsels: Vec<Morsel> = match &def.source {
        TableSource::Csv { .. } => {
            // Streamed reads probe the in-flight buffer; blocking reads a
            // resident one. The hint lookup and target sizing are shared so
            // both paths partition identically by construction.
            let resident = match &stream {
                Some(_) => None,
                None => Some(planner.ctx.files.read(def.source.path())?),
            };
            let len = stream
                .as_ref()
                .map_or_else(|| resident.as_ref().expect("read").len(), |st| st.len());
            let target = refine_target((len / morsel_bytes).clamp(1, MAX_MORSELS), skew);
            // Positional-map entries double as split hints: column 0's
            // recorded positions are the record starts (per the dialect the
            // map was parsed with), so no probe pass — and on a cold
            // streamed run, no plan-time wait at all: maximal read/scan
            // overlap.
            let hinted =
                planner.ctx.posmaps.get(name).and_then(|m| partition_csv_with_map(m, len, target));
            if hinted.is_none() {
                if let Some(d) = &decoder {
                    // No split hints: the probe has to follow the bytes, and
                    // the decoded buffer has no background filler — decode
                    // everything at plan time. The probe below then sees a
                    // complete buffer (the gates turn into no-ops and are
                    // dropped). With a positional map the probe is skipped
                    // and per-morsel block decoding overlaps the scan.
                    d.ensure_all().map_err(EngineError::from)?;
                }
            }
            // Cold probe otherwise: split on the dialect the scan will use.
            // The general-purpose in-situ scan is quote-aware (a quoted
            // field may contain a newline); the JIT dialect treats every
            // newline as a record end.
            let quote_aware = planner.ctx.config.mode == AccessMode::InSitu;
            let morsels = match (hinted, &stream, &resident) {
                (Some(ms), _, _) => ms,
                (None, Some(st), _) if quote_aware => {
                    partition_csv_quoted_streaming(st, target).map_err(EngineError::from)?.morsels
                }
                (None, Some(st), _) => {
                    partition_csv_streaming(st, target).map_err(EngineError::from)?.morsels
                }
                (None, None, Some(buf)) if quote_aware => partition_csv_quoted(buf, target).morsels,
                (None, None, Some(buf)) => partition_csv(buf, target).morsels,
                (None, None, None) => unreachable!("blocking path always reads the buffer"),
            };
            if stream.is_some() {
                // A morsel reads its own byte range only (scans, posmap
                // tracking, and late posmap-navigated fetches all address
                // record positions inside the segment) — so rzb gates decode
                // just the covering blocks, while plain sequential streams
                // wait on the prefix.
                ready = match &decoder {
                    Some(_) => morsels.iter().map(|m| m.byte_start..m.byte_end).collect(),
                    None => morsels.iter().map(|m| 0..m.byte_end).collect(),
                };
            }
            morsels
        }
        TableSource::Fbin { .. } => {
            let layout = match (&stream, &decoder) {
                (Some(st), Some(d)) => {
                    wait_fbin_header_rzb(d)?;
                    FbinLayout::parse(st.bytes())?
                }
                (Some(st), None) => {
                    wait_fbin_header(st)?;
                    FbinLayout::parse(st.bytes())?
                }
                _ => FbinLayout::parse(&planner.ctx.files.read(def.source.path())?)?,
            };
            let rows_per_morsel = (morsel_bytes / layout.row_width.max(1)).max(1) as u64;
            let target = refine_target(
                (layout.rows / rows_per_morsel).clamp(1, MAX_MORSELS as u64) as usize,
                skew,
            );
            let morsels = partition_rows(layout.rows, target);
            if stream.is_some() {
                // Rows are fixed-width and contiguous: morsel i's bytes end
                // at data_start + end_row * row_width. An rzb gate needs only
                // its own row span's bytes; plain streams wait on the prefix.
                let row_bytes = |row: u64| layout.data_start + row as usize * layout.row_width;
                ready = match &decoder {
                    Some(_) => morsels
                        .iter()
                        .map(|m| row_bytes(m.first_row)..row_bytes(m.end_row))
                        .collect(),
                    None => morsels.iter().map(|m| 0..row_bytes(m.end_row)).collect(),
                };
            }
            morsels
        }
        TableSource::Ibin { .. } => {
            // Page-aligned morsels: each owns whole pages, so per-morsel
            // zone-index pruning (the scan intersects the compiled
            // candidate ranges with its segment) tiles the serial
            // candidate set — and the pruning counters — exactly.
            //
            // `IbinLayout::parse` eagerly decodes the zone index at the
            // file's *tail* (every plan-time parse does — scans, JIT
            // compiles, fetch compiles), so a streamed ibin read must be
            // fully resident before the first parse: with a sequential
            // reader the tail is last, which means ibin gets no
            // read/scan overlap and morsels run ungated. The streamed
            // path still exists so the read itself, the counters, and the
            // buffer-identity rules match the other flat formats.
            let layout = match (&stream, &decoder) {
                (Some(st), Some(d)) => {
                    // Same full-residency requirement, but the decoded
                    // buffer has no background filler: drive the decode
                    // here rather than waiting on bytes nobody produces.
                    d.ensure_all().map_err(EngineError::from)?;
                    IbinLayout::parse(st.bytes())?
                }
                (Some(st), None) => {
                    st.wait_all().map_err(EngineError::from)?;
                    IbinLayout::parse(st.bytes())?
                }
                _ => IbinLayout::parse(&planner.ctx.files.read(def.source.path())?)?,
            };
            let rows_per_morsel = (morsel_bytes / layout.row_width.max(1)).max(1) as u64;
            let target = refine_target(
                (layout.rows / rows_per_morsel).clamp(1, MAX_MORSELS as u64) as usize,
                skew,
            );
            partition_pages(layout.rows, layout.rows_per_page, target)
        }
        TableSource::RootEvents { .. } => {
            // Size from the file's actual per-event payload (scalars,
            // offsets tables, and collection items) — the declared scalar
            // schema alone wildly undercounts collection-heavy files.
            let file = planner.open_root(def)?;
            let events = file.num_events();
            let bytes_per_event = file.bytes_per_event().max(1) as usize;
            let rows_per_morsel = (morsel_bytes / bytes_per_event).max(1) as u64;
            let target = refine_target(
                (events / rows_per_morsel).clamp(1, MAX_MORSELS as u64) as usize,
                skew,
            );
            partition_rows(events, target)
        }
        TableSource::RootCollection { collection, .. } => {
            // Event-aligned morsels sized by the items they actually cover:
            // the offsets table says how many exploded item rows each event
            // contributes, so item-heavy events do not skew morsel cost.
            let file = planner.open_root(def)?;
            let coll = file.collection(collection).ok_or_else(|| {
                EngineError::planning(format!("no collection named {collection}"))
            })?;
            let events = file.num_events();
            let item_bytes: usize = def
                .schema
                .fields()
                .iter()
                .map(|f| f.data_type.fixed_width().unwrap_or(8))
                .sum::<usize>()
                .max(1);
            let items_per_morsel = (morsel_bytes / item_bytes).max(1) as u64;
            let total_items = file.total_items(coll);
            let target = refine_target(
                (total_items / items_per_morsel).clamp(1, MAX_MORSELS as u64) as usize,
                skew,
            );
            if target < 2 || events < 2 {
                // Too small to split; skip materializing the offsets table.
                return Ok(None);
            }
            let offsets: Vec<u64> = (0..=events).map(|e| file.items_upto(coll, e)).collect();
            partition_items(&offsets, target)
        }
    };
    if morsels.len() < 2 {
        // Too small to parallelize. A just-started stream keeps filling in
        // the background; the serial fallback's `read` joins it (one disk
        // read, identical counters to the blocking path).
        return Ok(None);
    }
    // An already-complete stream (tiny file, warm wrapper, a fully-decoded
    // rzb buffer, or the JIT-ibin full wait) needs no gates; an in-flight
    // one gates every morsel.
    let stream = stream.filter(|st| !st.is_complete());
    let decoder = if stream.is_some() { decoder } else { None };
    let ready = if stream.is_some() { ready } else { Vec::new() };
    Ok(Some(Partitioned { morsels, stream, decoder, ready }))
}

/// Stage 4: how per-morsel outputs combine, resolved against the (shared)
/// pipeline layout with the same helpers as the serial plan top.
fn resolve_merge(
    planner: &mut Planner<'_, '_>,
    q: &ResolvedQuery,
    layout: &super::Layout,
) -> Result<(MergePlan, Vec<String>)> {
    if let Some(g) = &q.group_by {
        let top = super::grouped_top(q, layout)?;
        planner.note(format!(
            "hash aggregate {} GROUP BY {}.{}",
            top.names.join(", "),
            q.tables[g.table],
            g.name
        ));
        let merge = MergePlan::Grouped(GroupedMerge {
            key_col: top.key_pos,
            exprs: top.exprs,
            output: top.out_positions,
        });
        Ok((merge, top.names))
    } else if q.is_aggregate() {
        let (exprs, names) = super::aggregate_exprs(q, layout)?;
        planner.note(format!("aggregate {}", names.join(", ")));
        Ok((MergePlan::Aggregate(exprs), names))
    } else {
        let (_, names) = super::projection_positions(q, layout)?;
        planner.note(format!("project {}", names.join(", ")));
        Ok((MergePlan::Concat, names))
    }
}

/// Names of every column the query touches on table `t` (filters, join key,
/// and outputs).
fn table_columns(q: &ResolvedQuery, t: usize) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    let mut add = |c: &ColRef| {
        if c.table == t && !out.contains(&c.name) {
            out.push(c.name.clone());
        }
    };
    for f in &q.filters {
        add(&f.col);
    }
    if let Some(j) = &q.join {
        add(&j.probe_col);
        add(&j.build_col);
    }
    for o in &q.outputs {
        add(&o.col);
    }
    if let Some(g) = &q.group_by {
        add(g);
    }
    out
}
