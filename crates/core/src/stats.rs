//! Per-query execution statistics.

use std::time::Duration;

use raw_columnar::profile::{PhaseProfile, ScanMetrics};

/// Everything the engine measured while answering one query.
#[derive(Debug, Clone, Default)]
pub struct QueryStats {
    /// End-to-end wall time (parse + plan + execute + cache recording).
    pub wall: Duration,
    /// Aggregated raw-data-access phase profile (Figure-3 categories).
    pub scan: PhaseProfile,
    /// Aggregated scan volume counters.
    pub metrics: ScanMetrics,
    /// Bytes read from disk during this query (0 on a fully warm run).
    pub io_bytes: u64,
    /// Time spent compiling access paths (template-cache misses).
    pub compile_time: Duration,
    /// Template-cache hits during planning.
    pub template_hits: u64,
    /// Template-cache misses (compilations) during planning.
    pub template_misses: u64,
    /// Shred-pool hits during planning.
    pub shred_hits: u64,
    /// Shred-pool misses during planning.
    pub shred_misses: u64,
    /// Positional maps built (or extended) as a side effect.
    pub posmaps_built: usize,
    /// Shreds recorded into the pool as a side effect.
    pub shreds_recorded: usize,
    /// Rows in the result.
    pub rows_out: u64,
    /// Plan description, one line per step.
    pub explain: Vec<String>,
}

impl QueryStats {
    /// Wall time in seconds (convenience for reports).
    pub fn wall_secs(&self) -> f64 {
        self.wall.as_secs_f64()
    }

    /// Render a compact one-line summary.
    pub fn summary(&self) -> String {
        format!(
            "wall={:?} io={}B compile={:?} tmpl={}H/{}M shreds={}H/{}M rows={}",
            self.wall,
            self.io_bytes,
            self.compile_time,
            self.template_hits,
            self.template_misses,
            self.shred_hits,
            self.shred_misses,
            self.rows_out
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_renders() {
        let s = QueryStats { rows_out: 3, io_bytes: 42, ..Default::default() };
        let line = s.summary();
        assert!(line.contains("io=42B"));
        assert!(line.contains("rows=3"));
        assert_eq!(s.wall_secs(), 0.0);
    }
}
