//! Per-query execution statistics, the per-morsel query trace, and the
//! EXPLAIN ANALYZE rendering.
//!
//! # The metrics/trace contract
//!
//! Three layers of measurement, from widest to narrowest scope:
//!
//! 1. **`EngineMetrics`** (`raw_trace`) — engine-lifetime atomic counters,
//!    shared by the file pool, chunk streams, and the executor. Monotonic;
//!    never reset by a query. [`crate::RawEngine::metrics`] exposes it.
//! 2. **[`QueryStats`]** — one query's deltas: everything below is charged
//!    between the query's first and last instruction, by subtracting
//!    engine-state snapshots (template/shred cache stats, pool disk bytes)
//!    or by summing per-morsel scan counters.
//! 3. **[`QueryTrace`]** — the per-morsel breakdown of a parallel run: for
//!    each morsel, which worker drained it, how long it waited in its
//!    availability gate, its drain wall time, and its own scan
//!    profile/metrics. Serial runs carry no trace (`None`).
//!
//! ## When each counter is charged
//!
//! - `scan` / `metrics` — summed over every scan operator the query ran
//!   (all morsels, plus a join's plan-time build-side drain). Parallel
//!   counters **tile** the serial run's exactly: the morsel grid partitions
//!   the file, so `rows_scanned`, `rows_pruned`, `fields_tokenized`,
//!   `values_converted`, and `values_materialized` sum to the same totals
//!   for any worker count (the `stats_equivalence` suite pins this).
//! - `io_bytes` — the file pool's `bytes_from_disk` delta across the query:
//!   whole files on blocking cold reads, per completed chunk on streamed
//!   ones; `0` warm. Identical across blocking and streamed cold paths.
//! - `template_*` / `shred_*` / `compile_time` — cache-stat deltas across
//!   the query (planning-time traffic included).
//! - `workers` / `morsels` / `gate_wait` — the parallel run shape; serial
//!   runs report `workers == 1`, `morsels == 0`, zero gate-wait. Gate-wait
//!   (like the engine registry's `chunk_waits`) is *scheduling-dependent*:
//!   it measures real overlap stalls and legitimately differs between
//!   identical runs, so equivalence tests must not assert exact values.
//!
//! ## The single-writer merge rule
//!
//! Morsel traces are recorded by the pool worker that drained the morsel,
//! into that worker's **private** sink (one `Vec` per worker — no lock, no
//! sharing on the hot path), and merged into morsel order only after the
//! pool barrier. One trace record per morsel, never per row: tracing adds
//! no work inside scan loops, and trace volume is O(morsels).

use std::time::Duration;

use raw_columnar::profile::{PhaseProfile, ScanMetrics};
use raw_trace::{Json, MorselTrace};

/// Static, per-morsel plan metadata: what the planner decided a morsel
/// covers, zipped with the runtime [`MorselTrace`] by index.
#[derive(Debug, Clone, Default)]
pub struct MorselMeta {
    /// Driving-table format (`csv`, `fbin`, `ibin`, `root-events`,
    /// `root-collection`).
    pub format: &'static str,
    /// Byte range of the driving file this morsel covers (row-derived for
    /// binary formats).
    pub byte_start: usize,
    /// End of the morsel's byte range (exclusive).
    pub byte_end: usize,
    /// First driving-table row of the morsel.
    pub first_row: u64,
    /// End row (exclusive).
    pub end_row: u64,
}

/// The per-morsel record of one parallel run: runtime traces (in morsel
/// order) zipped with the planner's morsel metadata.
#[derive(Debug, Clone, Default)]
pub struct QueryTrace {
    /// Worker threads the run was configured with.
    pub workers: usize,
    /// Runtime per-morsel records, in morsel order.
    pub morsels: Vec<MorselTrace>,
    /// Planner metadata, aligned with the morsel grid (index = morsel).
    pub meta: Vec<MorselMeta>,
}

impl QueryTrace {
    /// Total time workers spent blocked in availability gates.
    pub fn total_gate_wait(&self) -> Duration {
        self.morsels.iter().map(|t| t.gate_wait).sum()
    }

    /// Distinct workers that actually drained at least one morsel.
    pub fn workers_used(&self) -> usize {
        let mut seen: Vec<usize> = self.morsels.iter().map(|t| t.worker).collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// The per-morsel table: one line per morsel with worker, gate-wait,
    /// drain time, rows, and scan volume.
    pub fn morsel_table(&self) -> String {
        let mut out = String::from(
            "morsel  worker  format  rows            gate_wait    exec         rows_out  scanned  pruned\n",
        );
        for t in &self.morsels {
            let meta = self.meta.get(t.morsel);
            let format = meta.map_or("?", |m| m.format);
            let rows =
                meta.map_or_else(|| "?".to_owned(), |m| format!("{}..{}", m.first_row, m.end_row));
            out.push_str(&format!(
                "{:<6}  {:<6}  {:<6}  {:<14}  {:<11}  {:<11}  {:<8}  {:<7}  {}\n",
                t.morsel,
                t.worker,
                format,
                rows,
                format!("{:.3?}", t.gate_wait),
                format!("{:.3?}", t.exec),
                t.rows_out,
                t.metrics.rows_scanned,
                t.metrics.rows_pruned,
            ));
        }
        out
    }

    /// Serialize: worker count plus the zipped morsel records.
    pub fn to_json(&self) -> Json {
        let morsels = self
            .morsels
            .iter()
            .map(|t| {
                let mut obj = match t.to_json() {
                    Json::Obj(fields) => fields,
                    _ => unreachable!("MorselTrace::to_json returns an object"),
                };
                if let Some(m) = self.meta.get(t.morsel) {
                    obj.push(("format".to_owned(), Json::Str(m.format.to_owned())));
                    obj.push(("byte_start".to_owned(), Json::UInt(m.byte_start as u64)));
                    obj.push(("byte_end".to_owned(), Json::UInt(m.byte_end as u64)));
                    obj.push(("first_row".to_owned(), Json::UInt(m.first_row)));
                    obj.push(("end_row".to_owned(), Json::UInt(m.end_row)));
                }
                Json::Obj(obj)
            })
            .collect();
        Json::obj(vec![
            ("workers", Json::UInt(self.workers as u64)),
            ("workers_used", Json::UInt(self.workers_used() as u64)),
            ("gate_wait_s", Json::Float(self.total_gate_wait().as_secs_f64())),
            ("morsels", Json::Arr(morsels)),
        ])
    }
}

/// Everything the engine measured while answering one query.
#[derive(Debug, Clone, Default)]
pub struct QueryStats {
    /// End-to-end wall time (parse + plan + execute + cache recording).
    pub wall: Duration,
    /// Aggregated raw-data-access phase profile (Figure-3 categories).
    pub scan: PhaseProfile,
    /// Aggregated scan volume counters.
    pub metrics: ScanMetrics,
    /// Bytes read from disk during this query (0 on a fully warm run).
    pub io_bytes: u64,
    /// Time spent compiling access paths (template-cache misses).
    pub compile_time: Duration,
    /// Template-cache hits during planning.
    pub template_hits: u64,
    /// Template-cache misses (compilations) during planning.
    pub template_misses: u64,
    /// Shred-pool hits during planning.
    pub shred_hits: u64,
    /// Shred-pool misses during planning.
    pub shred_misses: u64,
    /// Positional maps built (or extended) as a side effect.
    pub posmaps_built: usize,
    /// Shreds recorded into the pool as a side effect.
    pub shreds_recorded: usize,
    /// Rows in the result.
    pub rows_out: u64,
    /// Worker threads used (1 for serial runs).
    pub workers: usize,
    /// Morsels executed (0 for serial runs).
    pub morsels: usize,
    /// Total worker time blocked in availability gates (cold streamed runs;
    /// scheduling-dependent — advisory, never asserted exactly).
    pub gate_wait: Duration,
    /// Plan description, one line per step.
    pub explain: Vec<String>,
    /// Per-morsel trace of a parallel run (`None` on the serial path).
    pub trace: Option<QueryTrace>,
}

impl QueryStats {
    /// Wall time in seconds (convenience for reports).
    pub fn wall_secs(&self) -> f64 {
        self.wall.as_secs_f64()
    }

    /// Fraction of wall time spent in scan CPU work (can exceed 1.0 under
    /// parallelism: scan time is summed across workers).
    pub fn scan_fraction(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        self.scan.total.as_secs_f64() / self.wall.as_secs_f64()
    }

    /// Render a compact one-line summary: wall time with scan/compile
    /// fractions, I/O, cache traffic, the parallel-run shape, and row
    /// volumes (out and pruned) — the numbers parallel-path triage needs.
    pub fn summary(&self) -> String {
        format!(
            "wall={:?} (scan {:.0}% compile {:.0}%) io={}B compile={:?} tmpl={}H/{}M \
             shreds={}H/{}M workers={} morsels={} gate_wait={:?} rows={} pruned={}",
            self.wall,
            self.scan_fraction() * 100.0,
            if self.wall.is_zero() {
                0.0
            } else {
                self.compile_time.as_secs_f64() / self.wall.as_secs_f64() * 100.0
            },
            self.io_bytes,
            self.compile_time,
            self.template_hits,
            self.template_misses,
            self.shred_hits,
            self.shred_misses,
            self.workers.max(1),
            self.morsels,
            self.gate_wait,
            self.rows_out,
            self.metrics.rows_pruned,
        )
    }

    /// EXPLAIN ANALYZE rendering: every plan line annotated with the
    /// actuals the engine measured for that operator class, followed by the
    /// totals block and (for parallel runs, when `per_morsel`) the
    /// per-morsel worker/gate-wait table.
    ///
    /// Annotation is by plan-line class — scan lines carry scan actuals,
    /// aggregate/project lines carry output rows, the `parallel:` line
    /// carries the run shape — because the serial planner emits free-form
    /// notes, not an operator tree.
    pub fn explain_analyze(&self, per_morsel: bool) -> String {
        let mut out = String::new();
        for line in &self.explain {
            out.push_str(line);
            if line.starts_with("scan ") || line.contains(" scan ") || line.starts_with("fetch ") {
                out.push_str(&format!(
                    "  (actual: rows_scanned={} rows_pruned={} fields_tokenized={} time={:.3?})",
                    self.metrics.rows_scanned,
                    self.metrics.rows_pruned,
                    self.metrics.fields_tokenized,
                    self.scan.total,
                ));
            } else if line.starts_with("aggregate ")
                || line.starts_with("project ")
                || line.starts_with("hash join ")
            {
                out.push_str(&format!("  (actual: rows_out={})", self.rows_out));
            } else if line.starts_with("parallel:") {
                out.push_str(&format!(
                    "  (actual: workers={} morsels={} gate_wait={:.3?})",
                    self.trace.as_ref().map_or(self.workers, |t| t.workers_used()),
                    self.morsels,
                    self.gate_wait,
                ));
            } else if line.starts_with("filter ") {
                out.push_str(&format!(
                    "  (actual: rows_in={})",
                    self.metrics.rows_scanned.saturating_sub(self.metrics.rows_pruned)
                ));
            }
            out.push('\n');
        }
        out.push_str(&format!("totals: {}\n", self.summary()));
        if per_morsel {
            if let Some(trace) = &self.trace {
                out.push_str(&trace.morsel_table());
            }
        }
        out
    }

    /// Serialize the full stats record (trace included when present).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("wall_s", Json::Float(self.wall.as_secs_f64())),
            ("scan_s", Json::Float(self.scan.total.as_secs_f64())),
            ("parsing_s", Json::Float(self.scan.parsing.as_secs_f64())),
            ("conversion_s", Json::Float(self.scan.conversion.as_secs_f64())),
            ("build_columns_s", Json::Float(self.scan.build_columns.as_secs_f64())),
            ("rows_scanned", Json::UInt(self.metrics.rows_scanned)),
            ("rows_pruned", Json::UInt(self.metrics.rows_pruned)),
            ("fields_tokenized", Json::UInt(self.metrics.fields_tokenized)),
            ("values_converted", Json::UInt(self.metrics.values_converted)),
            ("values_materialized", Json::UInt(self.metrics.values_materialized)),
            ("io_bytes", Json::UInt(self.io_bytes)),
            ("compile_s", Json::Float(self.compile_time.as_secs_f64())),
            ("template_hits", Json::UInt(self.template_hits)),
            ("template_misses", Json::UInt(self.template_misses)),
            ("shred_hits", Json::UInt(self.shred_hits)),
            ("shred_misses", Json::UInt(self.shred_misses)),
            ("posmaps_built", Json::UInt(self.posmaps_built as u64)),
            ("shreds_recorded", Json::UInt(self.shreds_recorded as u64)),
            ("rows_out", Json::UInt(self.rows_out)),
            ("workers", Json::UInt(self.workers.max(1) as u64)),
            ("morsels", Json::UInt(self.morsels as u64)),
            ("gate_wait_s", Json::Float(self.gate_wait.as_secs_f64())),
        ];
        if let Some(trace) = &self.trace {
            fields.push(("trace", trace.to_json()));
        }
        Json::obj(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_renders() {
        let s = QueryStats { rows_out: 3, io_bytes: 42, ..Default::default() };
        let line = s.summary();
        assert!(line.contains("io=42B"));
        assert!(line.contains("rows=3"));
        assert!(line.contains("workers=1"));
        assert!(line.contains("pruned=0"));
        assert_eq!(s.wall_secs(), 0.0);
    }

    fn parallel_stats() -> QueryStats {
        let metrics = ScanMetrics { rows_scanned: 100, rows_pruned: 40, ..Default::default() };
        let trace = QueryTrace {
            workers: 4,
            morsels: vec![
                MorselTrace { morsel: 0, worker: 1, rows_out: 30, ..Default::default() },
                MorselTrace { morsel: 1, worker: 0, rows_out: 30, ..Default::default() },
            ],
            meta: vec![
                MorselMeta {
                    format: "csv",
                    byte_start: 0,
                    byte_end: 512,
                    first_row: 0,
                    end_row: 50,
                },
                MorselMeta {
                    format: "csv",
                    byte_start: 512,
                    byte_end: 1024,
                    first_row: 50,
                    end_row: 100,
                },
            ],
        };
        QueryStats {
            metrics,
            rows_out: 60,
            workers: 4,
            morsels: 2,
            explain: vec![
                "scan t_csv [jit]".to_owned(),
                "project a, b".to_owned(),
                "parallel: 2 morsels x 4 threads [concat in morsel order]".to_owned(),
            ],
            trace: Some(trace),
            ..Default::default()
        }
    }

    #[test]
    fn explain_analyze_annotates_operators_and_lists_morsels() {
        let s = parallel_stats();
        let text = s.explain_analyze(true);
        assert!(text.contains("scan t_csv [jit]  (actual: rows_scanned=100 rows_pruned=40"));
        assert!(text.contains("project a, b  (actual: rows_out=60)"));
        assert!(text.contains("(actual: workers=2 morsels=2"));
        assert!(text.contains("totals:"));
        // Per-morsel table: worker + format + row range columns present.
        assert!(text.contains("morsel  worker  format"));
        assert!(text.contains("0..50"));
        assert!(text.contains("50..100"));
        // Without the flag the table is omitted but annotations stay.
        let brief = s.explain_analyze(false);
        assert!(!brief.contains("morsel  worker"));
        assert!(brief.contains("(actual: rows_scanned=100"));
    }

    #[test]
    fn stats_serialize_with_trace() {
        let s = parallel_stats();
        let json = s.to_json();
        assert_eq!(json.get("rows_scanned").and_then(Json::as_u64), Some(100));
        assert_eq!(json.get("morsels").and_then(Json::as_u64), Some(2));
        let trace = json.get("trace").expect("trace present");
        assert_eq!(trace.get("workers").and_then(Json::as_u64), Some(4));
        assert_eq!(trace.get("workers_used").and_then(Json::as_u64), Some(2));
        let morsels = trace.get("morsels").and_then(Json::as_arr).expect("morsel array");
        assert_eq!(morsels.len(), 2);
        assert_eq!(morsels[0].get("format").and_then(Json::as_str), Some("csv"));
        assert_eq!(morsels[1].get("first_row").and_then(Json::as_u64), Some(50));
        // Round-trips through the hand-rolled parser.
        let parsed = raw_trace::json::parse(&json.render()).unwrap();
        assert_eq!(parsed.get("rows_out").and_then(Json::as_u64), Some(60));
    }

    #[test]
    fn trace_totals() {
        let t = QueryTrace {
            workers: 8,
            morsels: vec![
                MorselTrace {
                    morsel: 0,
                    worker: 3,
                    gate_wait: Duration::from_millis(5),
                    ..Default::default()
                },
                MorselTrace {
                    morsel: 1,
                    worker: 3,
                    gate_wait: Duration::from_millis(7),
                    ..Default::default()
                },
            ],
            meta: Vec::new(),
        };
        assert_eq!(t.total_gate_wait(), Duration::from_millis(12));
        assert_eq!(t.workers_used(), 1);
    }
}
