//! The column-shred pool (§3, §5.1).
//!
//! "RAW maintains a pool of previously created column shreds. A shred is
//! used by an upcoming query if the values it contains subsume the values
//! requested. The replacement policy we use for this cache is LRU."
//!
//! Entries are [`SparseColumn`]s keyed by (table, column): full columns are
//! shreds whose loaded mask is all-ones. Insertions *merge* (the pool
//! accumulates coverage across queries); eviction is LRU by byte budget.
//!
//! # Concurrency
//!
//! The pool is shared by every [`Session`](crate::Session) of an engine, so
//! all methods take `&self`:
//!
//! - Lookups (`get` / `get_full`) hold the entry map's **read** lock; the
//!   LRU touch and hit/miss counters are relaxed atomics, so concurrent
//!   readers never serialize on a write lock.
//! - Publications (`insert_merge` / `insert_full`) hold the **write** lock
//!   and *merge* coverage into any resident shred (union of loaded rows),
//!   so two queries publishing shreds for the same column both land — the
//!   merge-on-publish protocol in CONCURRENCY.md.
//! - `total_bytes` is a running total maintained on insert/merge/evict/
//!   clear, so staying under budget costs one LRU scan per *eviction*
//!   rather than a full-map byte sum per loop iteration.
//!
//! All atomics here are `Relaxed`: each is an independent statistic or an
//! LRU timestamp, and every structural map change is ordered by the
//! `RwLock` itself.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use raw_columnar::{Column, SparseColumn};

/// Pool statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShredPoolStats {
    /// Lookups that found a usable shred.
    pub hits: u64,
    /// Lookups that found nothing (or insufficient coverage).
    pub misses: u64,
    /// Shreds evicted to stay within budget.
    pub evictions: u64,
}

struct Entry {
    shred: Arc<SparseColumn>,
    last_used: AtomicU64,
    bytes: usize,
}

/// LRU pool of column shreds, shareable across concurrent sessions.
pub struct ShredPool {
    entries: RwLock<HashMap<(String, String), Entry>>,
    budget_bytes: usize,
    /// Running sum of every entry's `bytes` — kept exact under the write
    /// lock so eviction never has to re-sum the map.
    total_bytes: AtomicUsize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

fn shred_bytes(s: &SparseColumn) -> usize {
    // The loaded-mask is one bit per row: round *up* so short shreds
    // (and any non-multiple-of-8 length) are not undercounted.
    s.dense().heap_bytes() + s.len().div_ceil(8)
}

impl ShredPool {
    /// A pool that evicts LRU entries beyond `budget_bytes`.
    pub fn new(budget_bytes: usize) -> ShredPool {
        ShredPool {
            entries: RwLock::new(HashMap::new()),
            budget_bytes,
            total_bytes: AtomicUsize::new(0),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Current statistics. Every lookup contributes exactly one net hit or
    /// miss, so `hits + misses` equals the number of lookups even under
    /// contention.
    pub fn stats(&self) -> ShredPoolStats {
        ShredPoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Total bytes held (running total, not a map scan).
    pub fn heap_bytes(&self) -> usize {
        self.total_bytes.load(Ordering::Relaxed)
    }

    /// Number of cached shreds.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    /// Drop everything.
    pub fn clear(&self) {
        let mut entries = self.entries.write();
        entries.clear();
        self.total_bytes.store(0, Ordering::Relaxed);
    }

    /// Fetch the shred for (`table`, `column`) regardless of coverage,
    /// touching LRU. Callers check coverage themselves ([`SparseColumn`]
    /// exposes `covers_rows` / `is_full`).
    pub fn get(&self, table: &str, column: &str) -> Option<Arc<SparseColumn>> {
        let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let key = (table.to_owned(), column.to_owned());
        let entries = self.entries.read();
        match entries.get(&key) {
            Some(e) => {
                e.last_used.store(now, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&e.shred))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Fetch only if the shred covers the *entire* column of `len` rows
    /// (used by bottom scans, which need every row).
    pub fn get_full(&self, table: &str, column: &str, len: u64) -> Option<Arc<SparseColumn>> {
        let shred = self.get(table, column)?;
        if shred.len() as u64 >= len && shred.is_full() {
            Some(shred)
        } else {
            // The partial hit is not usable as a full column: reclassify
            // the lookup (net effect stays one miss).
            self.hits.fetch_sub(1, Ordering::Relaxed);
            self.misses.fetch_add(1, Ordering::Relaxed);
            None
        }
    }

    /// Merge `incoming` into the pool entry for (`table`, `column`). If an
    /// entry exists, the union of loaded rows is kept (incoming wins on
    /// overlap); otherwise the shred is inserted as-is.
    pub fn insert_merge(
        &self,
        table: &str,
        column: &str,
        incoming: SparseColumn,
    ) -> raw_columnar::Result<()> {
        let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let key = (table.to_owned(), column.to_owned());
        let mut entries = self.entries.write();
        match entries.get_mut(&key) {
            Some(e) => {
                // Grow the resident shred if the incoming one is longer.
                let merged = Arc::make_mut(&mut e.shred);
                if incoming.len() > merged.len() {
                    merged.grow_to(incoming.len());
                }
                merged.absorb(&incoming)?;
                let new_bytes = shred_bytes(merged);
                if new_bytes >= e.bytes {
                    self.total_bytes.fetch_add(new_bytes - e.bytes, Ordering::Relaxed);
                } else {
                    self.total_bytes.fetch_sub(e.bytes - new_bytes, Ordering::Relaxed);
                }
                e.bytes = new_bytes;
                e.last_used.store(now, Ordering::Relaxed);
            }
            None => {
                let bytes = shred_bytes(&incoming);
                self.total_bytes.fetch_add(bytes, Ordering::Relaxed);
                entries.insert(
                    key,
                    Entry { shred: Arc::new(incoming), last_used: AtomicU64::new(now), bytes },
                );
            }
        }
        self.evict_to_budget(&mut entries);
        Ok(())
    }

    /// Convenience: cache a fully-loaded column.
    pub fn insert_full(
        &self,
        table: &str,
        column: &str,
        column_data: Column,
    ) -> raw_columnar::Result<()> {
        self.insert_merge(table, column, SparseColumn::full(column_data))
    }

    fn evict_to_budget(&self, entries: &mut HashMap<(String, String), Entry>) {
        while self.total_bytes.load(Ordering::Relaxed) > self.budget_bytes && !entries.is_empty() {
            let victim = entries
                .iter()
                .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| k.clone());
            let Some(victim) = victim else { break };
            if let Some(e) = entries.remove(&victim) {
                self.total_bytes.fetch_sub(e.bytes, Ordering::Relaxed);
            }
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raw_columnar::{DataType, Value};

    fn shred(rows: &[usize], len: usize) -> SparseColumn {
        let mut s = SparseColumn::new(DataType::Int64, len);
        for &r in rows {
            s.store(r, &Value::Int64(r as i64 * 10)).unwrap();
        }
        s
    }

    #[test]
    fn insert_get_and_coverage() {
        let pool = ShredPool::new(1 << 20);
        pool.insert_merge("t", "col11", shred(&[1, 3], 10)).unwrap();
        let s = pool.get("t", "col11").unwrap();
        assert!(s.covers_rows(&[1, 3]));
        assert!(!s.covers_rows(&[2]));
        assert!(pool.get("t", "colX").is_none());
        assert_eq!(pool.stats().hits, 1);
        assert_eq!(pool.stats().misses, 1);
    }

    #[test]
    fn merge_accumulates_coverage() {
        let pool = ShredPool::new(1 << 20);
        pool.insert_merge("t", "c", shred(&[1], 10)).unwrap();
        pool.insert_merge("t", "c", shred(&[4, 5], 10)).unwrap();
        let s = pool.get("t", "c").unwrap();
        assert!(s.covers_rows(&[1, 4, 5]));
        assert_eq!(pool.len(), 1, "merged, not duplicated");
    }

    #[test]
    fn merge_grows_shorter_entry() {
        let pool = ShredPool::new(1 << 20);
        pool.insert_merge("t", "c", shred(&[1], 4)).unwrap();
        pool.insert_merge("t", "c", shred(&[7], 10)).unwrap();
        let s = pool.get("t", "c").unwrap();
        assert_eq!(s.len(), 10);
        assert!(s.covers_rows(&[1, 7]));
    }

    #[test]
    fn get_full_requires_full_coverage() {
        let pool = ShredPool::new(1 << 20);
        pool.insert_merge("t", "c", shred(&[0, 1, 2], 3)).unwrap();
        assert!(pool.get_full("t", "c", 3).is_some());
        assert!(pool.get_full("t", "c", 5).is_none(), "file longer than shred");
        pool.insert_merge("t", "d", shred(&[0], 3)).unwrap();
        assert!(pool.get_full("t", "d", 3).is_none(), "partial");
    }

    #[test]
    fn full_column_roundtrip() {
        let pool = ShredPool::new(1 << 20);
        pool.insert_full("t", "c", vec![1i64, 2, 3].into()).unwrap();
        let s = pool.get_full("t", "c", 3).unwrap();
        assert_eq!(s.dense().as_i64().unwrap(), &[1, 2, 3]);
    }

    #[test]
    fn lru_eviction_respects_budget() {
        // Each 100-row i64 shred is ~813 bytes; budget of 2000 holds two.
        let pool = ShredPool::new(2000);
        pool.insert_full("t", "a", vec![0i64; 100].into()).unwrap();
        pool.insert_full("t", "b", vec![0i64; 100].into()).unwrap();
        assert_eq!(pool.len(), 2);
        // Touch "a" so "b" becomes LRU, then insert "c".
        pool.get("t", "a");
        pool.insert_full("t", "c", vec![0i64; 100].into()).unwrap();
        assert_eq!(pool.len(), 2);
        assert!(pool.get("t", "b").is_none(), "b was evicted");
        assert!(pool.get("t", "a").is_some());
        assert!(pool.get("t", "c").is_some());
        assert_eq!(pool.stats().evictions, 1);
    }

    #[test]
    fn running_total_tracks_map_contents() {
        let pool = ShredPool::new(1 << 20);
        assert_eq!(pool.heap_bytes(), 0);
        pool.insert_merge("t", "a", shred(&[1], 4)).unwrap();
        let after_insert = pool.heap_bytes();
        assert!(after_insert > 0);
        // Merging a longer shred grows the entry; the total follows.
        pool.insert_merge("t", "a", shred(&[9], 100)).unwrap();
        let after_merge = pool.heap_bytes();
        assert!(after_merge > after_insert);
        // The running total matches a fresh sum over the entries.
        let summed: usize = pool.entries.read().values().map(|e| e.bytes).sum();
        assert_eq!(after_merge, summed);
        pool.clear();
        assert_eq!(pool.heap_bytes(), 0);
    }

    #[test]
    fn mask_bytes_round_up() {
        // 3 rows => 1 mask byte, not 0; 9 rows => 2, not 1.
        let s3 = shred(&[0], 3);
        let s9 = shred(&[0], 9);
        assert_eq!(shred_bytes(&s3), s3.dense().heap_bytes() + 1);
        assert_eq!(shred_bytes(&s9), s9.dense().heap_bytes() + 2);
    }

    #[test]
    fn type_conflict_on_merge_errors() {
        let pool = ShredPool::new(1 << 20);
        pool.insert_full("t", "c", vec![1i64].into()).unwrap();
        let wrong = SparseColumn::full(vec![1.0f64].into());
        assert!(pool.insert_merge("t", "c", wrong).is_err());
    }

    #[test]
    fn clear_empties() {
        let pool = ShredPool::new(1 << 20);
        pool.insert_full("t", "c", vec![1i64].into()).unwrap();
        pool.clear();
        assert!(pool.is_empty());
        assert_eq!(pool.heap_bytes(), 0);
    }
}
