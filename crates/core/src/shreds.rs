//! The column-shred pool (§3, §5.1).
//!
//! "RAW maintains a pool of previously created column shreds. A shred is
//! used by an upcoming query if the values it contains subsume the values
//! requested. The replacement policy we use for this cache is LRU."
//!
//! Entries are [`SparseColumn`]s keyed by (table, column): full columns are
//! shreds whose loaded mask is all-ones. Insertions *merge* (the pool
//! accumulates coverage across queries); eviction is LRU by byte budget.

use std::collections::HashMap;
use std::sync::Arc;

use raw_columnar::{Column, SparseColumn};

/// Pool statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShredPoolStats {
    /// Lookups that found a usable shred.
    pub hits: u64,
    /// Lookups that found nothing (or insufficient coverage).
    pub misses: u64,
    /// Shreds evicted to stay within budget.
    pub evictions: u64,
}

struct Entry {
    shred: Arc<SparseColumn>,
    last_used: u64,
    bytes: usize,
}

/// LRU pool of column shreds.
pub struct ShredPool {
    entries: HashMap<(String, String), Entry>,
    budget_bytes: usize,
    clock: u64,
    stats: ShredPoolStats,
}

fn shred_bytes(s: &SparseColumn) -> usize {
    s.dense().heap_bytes() + s.len() / 8
}

impl ShredPool {
    /// A pool that evicts LRU entries beyond `budget_bytes`.
    pub fn new(budget_bytes: usize) -> ShredPool {
        ShredPool {
            entries: HashMap::new(),
            budget_bytes,
            clock: 0,
            stats: ShredPoolStats::default(),
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> ShredPoolStats {
        self.stats
    }

    /// Total bytes held.
    pub fn heap_bytes(&self) -> usize {
        self.entries.values().map(|e| e.bytes).sum()
    }

    /// Number of cached shreds.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Fetch the shred for (`table`, `column`) regardless of coverage,
    /// touching LRU. Callers check coverage themselves ([`SparseColumn`]
    /// exposes `covers_rows` / `is_full`).
    pub fn get(&mut self, table: &str, column: &str) -> Option<Arc<SparseColumn>> {
        self.clock += 1;
        let key = (table.to_owned(), column.to_owned());
        match self.entries.get_mut(&key) {
            Some(e) => {
                e.last_used = self.clock;
                self.stats.hits += 1;
                Some(Arc::clone(&e.shred))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Fetch only if the shred covers the *entire* column of `len` rows
    /// (used by bottom scans, which need every row).
    pub fn get_full(&mut self, table: &str, column: &str, len: u64) -> Option<Arc<SparseColumn>> {
        let shred = self.get(table, column)?;
        if shred.len() as u64 >= len && shred.is_full() {
            Some(shred)
        } else {
            // The partial hit is not usable as a full column.
            self.stats.hits -= 1;
            self.stats.misses += 1;
            None
        }
    }

    /// Merge `incoming` into the pool entry for (`table`, `column`). If an
    /// entry exists, the union of loaded rows is kept (incoming wins on
    /// overlap); otherwise the shred is inserted as-is.
    pub fn insert_merge(
        &mut self,
        table: &str,
        column: &str,
        incoming: SparseColumn,
    ) -> raw_columnar::Result<()> {
        self.clock += 1;
        let key = (table.to_owned(), column.to_owned());
        match self.entries.get_mut(&key) {
            Some(e) => {
                // Grow the resident shred if the incoming one is longer.
                let merged = Arc::make_mut(&mut e.shred);
                if incoming.len() > merged.len() {
                    merged.grow_to(incoming.len());
                }
                merged.absorb(&incoming)?;
                e.bytes = shred_bytes(merged);
                e.last_used = self.clock;
            }
            None => {
                let bytes = shred_bytes(&incoming);
                self.entries
                    .insert(key, Entry { shred: Arc::new(incoming), last_used: self.clock, bytes });
            }
        }
        self.evict_to_budget();
        Ok(())
    }

    /// Convenience: cache a fully-loaded column.
    pub fn insert_full(
        &mut self,
        table: &str,
        column: &str,
        column_data: Column,
    ) -> raw_columnar::Result<()> {
        self.insert_merge(table, column, SparseColumn::full(column_data))
    }

    fn evict_to_budget(&mut self) {
        while self.heap_bytes() > self.budget_bytes && !self.entries.is_empty() {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("non-empty");
            self.entries.remove(&victim);
            self.stats.evictions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raw_columnar::{DataType, Value};

    fn shred(rows: &[usize], len: usize) -> SparseColumn {
        let mut s = SparseColumn::new(DataType::Int64, len);
        for &r in rows {
            s.store(r, &Value::Int64(r as i64 * 10)).unwrap();
        }
        s
    }

    #[test]
    fn insert_get_and_coverage() {
        let mut pool = ShredPool::new(1 << 20);
        pool.insert_merge("t", "col11", shred(&[1, 3], 10)).unwrap();
        let s = pool.get("t", "col11").unwrap();
        assert!(s.covers_rows(&[1, 3]));
        assert!(!s.covers_rows(&[2]));
        assert!(pool.get("t", "colX").is_none());
        assert_eq!(pool.stats().hits, 1);
        assert_eq!(pool.stats().misses, 1);
    }

    #[test]
    fn merge_accumulates_coverage() {
        let mut pool = ShredPool::new(1 << 20);
        pool.insert_merge("t", "c", shred(&[1], 10)).unwrap();
        pool.insert_merge("t", "c", shred(&[4, 5], 10)).unwrap();
        let s = pool.get("t", "c").unwrap();
        assert!(s.covers_rows(&[1, 4, 5]));
        assert_eq!(pool.len(), 1, "merged, not duplicated");
    }

    #[test]
    fn merge_grows_shorter_entry() {
        let mut pool = ShredPool::new(1 << 20);
        pool.insert_merge("t", "c", shred(&[1], 4)).unwrap();
        pool.insert_merge("t", "c", shred(&[7], 10)).unwrap();
        let s = pool.get("t", "c").unwrap();
        assert_eq!(s.len(), 10);
        assert!(s.covers_rows(&[1, 7]));
    }

    #[test]
    fn get_full_requires_full_coverage() {
        let mut pool = ShredPool::new(1 << 20);
        pool.insert_merge("t", "c", shred(&[0, 1, 2], 3)).unwrap();
        assert!(pool.get_full("t", "c", 3).is_some());
        assert!(pool.get_full("t", "c", 5).is_none(), "file longer than shred");
        pool.insert_merge("t", "d", shred(&[0], 3)).unwrap();
        assert!(pool.get_full("t", "d", 3).is_none(), "partial");
    }

    #[test]
    fn full_column_roundtrip() {
        let mut pool = ShredPool::new(1 << 20);
        pool.insert_full("t", "c", vec![1i64, 2, 3].into()).unwrap();
        let s = pool.get_full("t", "c", 3).unwrap();
        assert_eq!(s.dense().as_i64().unwrap(), &[1, 2, 3]);
    }

    #[test]
    fn lru_eviction_respects_budget() {
        // Each 100-row i64 shred is ~812 bytes; budget of 2000 holds two.
        let mut pool = ShredPool::new(2000);
        pool.insert_full("t", "a", vec![0i64; 100].into()).unwrap();
        pool.insert_full("t", "b", vec![0i64; 100].into()).unwrap();
        assert_eq!(pool.len(), 2);
        // Touch "a" so "b" becomes LRU, then insert "c".
        pool.get("t", "a");
        pool.insert_full("t", "c", vec![0i64; 100].into()).unwrap();
        assert_eq!(pool.len(), 2);
        assert!(pool.get("t", "b").is_none(), "b was evicted");
        assert!(pool.get("t", "a").is_some());
        assert!(pool.get("t", "c").is_some());
        assert_eq!(pool.stats().evictions, 1);
    }

    #[test]
    fn type_conflict_on_merge_errors() {
        let mut pool = ShredPool::new(1 << 20);
        pool.insert_full("t", "c", vec![1i64].into()).unwrap();
        let wrong = SparseColumn::full(vec![1.0f64].into());
        assert!(pool.insert_merge("t", "c", wrong).is_err());
    }

    #[test]
    fn clear_empties() {
        let mut pool = ShredPool::new(1 << 20);
        pool.insert_full("t", "c", vec![1i64].into()).unwrap();
        pool.clear();
        assert!(pool.is_empty());
        assert_eq!(pool.heap_bytes(), 0);
    }
}
