//! Integration tests for cost-model-driven adaptive planning: the engine
//! must harvest statistics as a side effect of queries, and `Adaptive`
//! strategies/placements must (a) return the same answers as every fixed
//! configuration and (b) pick the regime the paper's figures prescribe.

use raw_columnar::{DataType, Schema, Value};
use raw_engine::{
    AccessMode, EngineConfig, JoinPlacement, QueryResult, RawEngine, ShredStrategy, TableDef,
    TableSource,
};
use raw_formats::datagen;

const ROWS: usize = 600;
const COLS: usize = 12;

fn adaptive_config() -> EngineConfig {
    EngineConfig {
        mode: AccessMode::Jit,
        shreds: ShredStrategy::Adaptive,
        join_placement: JoinPlacement::Adaptive,
        ..EngineConfig::default()
    }
}

fn engine_with_csv(config: EngineConfig) -> RawEngine {
    let engine = RawEngine::new(config);
    let t = datagen::int_table(42, ROWS, COLS);
    let bytes = raw_formats::csv::writer::to_bytes(&t).unwrap();
    engine.files().insert("/virtual/file1.csv", bytes);
    engine.register_table(TableDef {
        name: "file1".into(),
        schema: Schema::uniform(COLS, DataType::Int64),
        source: TableSource::Csv { path: "/virtual/file1.csv".into() },
    });
    engine
}

fn engine_with_join_twin(config: EngineConfig) -> RawEngine {
    let engine = engine_with_csv(config);
    let t = datagen::int_table(42, ROWS, COLS);
    let shuffled = datagen::shuffled_copy(&t, 7);
    let bytes = raw_formats::fbin::to_bytes(&shuffled).unwrap();
    engine.files().insert("/virtual/file2.fbin", bytes);
    engine.register_table(TableDef {
        name: "file2".into(),
        schema: Schema::uniform(COLS, DataType::Int64),
        source: TableSource::Fbin { path: "/virtual/file2.fbin".into() },
    });
    engine
}

fn scalar_i64(r: &QueryResult) -> i64 {
    match r.scalar().unwrap() {
        Value::Int64(v) => v,
        other => panic!("expected int64, got {other:?}"),
    }
}

fn explain_line(r: &QueryResult, needle: &str) -> Option<String> {
    r.stats.explain.iter().find(|l| l.contains(needle)).cloned()
}

#[test]
fn statistics_are_harvested_as_side_effects() {
    let engine = engine_with_csv(adaptive_config());
    assert!(engine.table_stats().is_empty());

    let x = datagen::literal_for_selectivity(0.4);
    engine.query(&format!("SELECT MAX(col1) FROM file1 WHERE col1 < {x}")).unwrap();

    // The first query reads col1 fully: a histogram and the row count must
    // now be known without any explicit ANALYZE step.
    let stats = engine.table_stats();
    assert_eq!(stats.table_rows("file1"), Some(ROWS as u64));
    let h = stats.histogram("file1", "col1").expect("histogram harvested");
    assert_eq!(h.rows(), ROWS as u64);

    // And the estimate is close to the literal's design selectivity.
    let sel = stats.estimate("file1", "col1", raw_columnar::CmpOp::Lt, &Value::Int64(x)).unwrap();
    assert!((sel - 0.4).abs() < 0.1, "estimated {sel}, designed 0.4");
}

#[test]
fn reset_clears_harvested_statistics() {
    let engine = engine_with_csv(adaptive_config());
    let x = datagen::literal_for_selectivity(0.4);
    engine.query(&format!("SELECT MAX(col1) FROM file1 WHERE col1 < {x}")).unwrap();
    assert!(!engine.table_stats().is_empty());
    engine.reset_adaptive_state();
    assert!(engine.table_stats().is_empty());
    assert_eq!(engine.table_stats().table_rows("file1"), None);
}

#[test]
fn first_query_has_no_late_path_and_goes_full() {
    let engine = engine_with_csv(adaptive_config());
    let x = datagen::literal_for_selectivity(0.1);
    // No posmap and no stats yet: CSV shreds are infeasible, so the
    // adaptive choice must be full columns.
    let r = engine.query(&format!("SELECT MAX(col11) FROM file1 WHERE col1 < {x}")).unwrap();
    let line = explain_line(&r, "adaptive strategy").expect("adaptive note present");
    assert!(line.contains("FullColumns"), "{line}");
    assert!(explain_line(&r, "attach").is_none(), "no late attach on query 1");
}

#[test]
fn adaptive_picks_shreds_at_low_selectivity_and_full_at_high() {
    let engine = engine_with_csv(adaptive_config());
    let warm = datagen::literal_for_selectivity(0.4);
    engine.query(&format!("SELECT MAX(col1) FROM file1 WHERE col1 < {warm}")).unwrap();

    // Low selectivity: fetch col11 late, for survivors only (Fig. 5 left).
    let low = datagen::literal_for_selectivity(0.02);
    let r = engine.query(&format!("SELECT MAX(col11) FROM file1 WHERE col1 < {low}")).unwrap();
    let line = explain_line(&r, "adaptive strategy").unwrap();
    assert!(line.contains("ColumnShreds"), "{line}");
    assert!(explain_line(&r, "attach").is_some(), "late attach expected: {line}");

    // ~100% selectivity: nothing filters, shredding buys nothing (Fig. 5
    // right, converged curves) — the model keeps the full-column plan.
    let engine = engine_with_csv(adaptive_config());
    engine.query(&format!("SELECT MAX(col1) FROM file1 WHERE col1 < {warm}")).unwrap();
    let high = datagen::literal_for_selectivity(1.0);
    let r = engine.query(&format!("SELECT MAX(col11) FROM file1 WHERE col1 < {high}")).unwrap();
    let line = explain_line(&r, "adaptive strategy").unwrap();
    assert!(line.contains("FullColumns"), "{line}");
}

#[test]
fn adaptive_answers_match_fixed_strategies() {
    for sel in [0.01, 0.25, 0.6, 1.0] {
        let x = datagen::literal_for_selectivity(sel);
        let q1 = format!("SELECT MAX(col1) FROM file1 WHERE col1 < {x}");
        let q2 = format!("SELECT MAX(col11) FROM file1 WHERE col1 < {x}");

        let mut answers = Vec::new();
        for shreds in
            [ShredStrategy::FullColumns, ShredStrategy::ColumnShreds, ShredStrategy::Adaptive]
        {
            let engine = engine_with_csv(EngineConfig { shreds, ..adaptive_config() });
            let a1 = engine.query(&q1).unwrap().scalar().unwrap();
            let a2 = engine.query(&q2).unwrap().scalar().unwrap();
            answers.push((a1, a2));
        }
        assert_eq!(answers[0], answers[1], "sel {sel}");
        assert_eq!(answers[1], answers[2], "sel {sel}");
    }
}

#[test]
fn adaptive_join_placement_pipelined_side_goes_late() {
    let engine = engine_with_join_twin(adaptive_config());
    let x = datagen::literal_for_selectivity(0.05);
    // Warm file1 so a positional map exists — without one, CSV late
    // fetches are infeasible and Early is the only correct answer.
    engine.query(&format!("SELECT MAX(col1) FROM file1 WHERE col1 < {x}")).unwrap();
    // Projected column on the probe (pipelined) side; filter on the build
    // side: qualifying probe rows keep their order, so late fetches stay
    // sequential and cheap (Fig. 11).
    let r = engine
        .query(&format!(
            "SELECT MAX(file1.col11) FROM file1 JOIN file2 ON file1.col1 = file2.col1 \
             WHERE file2.col2 < {x}"
        ))
        .unwrap();
    let line = explain_line(&r, "adaptive join placement for file1").unwrap();
    assert!(line.contains("Pipelined"), "{line}");
    assert!(line.contains("Late"), "{line}");
}

#[test]
fn adaptive_join_placement_cold_csv_side_goes_early() {
    // On a cold engine the CSV side has no positional map: late fetch is
    // infeasible (infinite cost) and the model must fall back to Early
    // rather than plan an impossible attach.
    let engine = engine_with_join_twin(adaptive_config());
    let x = datagen::literal_for_selectivity(0.05);
    let r = engine
        .query(&format!(
            "SELECT MAX(file1.col11) FROM file1 JOIN file2 ON file1.col1 = file2.col1 \
             WHERE file2.col2 < {x}"
        ))
        .unwrap();
    let line = explain_line(&r, "adaptive join placement for file1").unwrap();
    assert!(line.contains("Early"), "{line}");
}

#[test]
fn adaptive_join_placement_breaking_side_depends_on_selectivity() {
    // Build side stats come from a DBMS-style warm-up? No — harvest them
    // with a plain scan query on file2 first, then ask the join.
    let run = |sel: f64| -> (String, i64) {
        let engine = engine_with_join_twin(adaptive_config());
        let x = datagen::literal_for_selectivity(sel);
        // Harvest stats for file2.col2 (full scan of the filter column).
        engine.query(&format!("SELECT MAX(col2) FROM file2 WHERE col2 < {x}")).unwrap();
        let r = engine
            .query(&format!(
                "SELECT MAX(file2.col11) FROM file1 JOIN file2 ON file1.col1 = file2.col1 \
                 WHERE file2.col2 < {x}"
            ))
            .unwrap();
        let line = explain_line(&r, "adaptive join placement for file2").unwrap();
        (line, scalar_i64(&r))
    };

    let (low_line, low_val) = run(0.02);
    assert!(low_line.contains("Breaking"), "{low_line}");
    // Low selectivity: materialization is deferred past the filters. With
    // the filter on this side, Intermediate reads the same row count as
    // Late but in order — the model correctly never pays the shuffle
    // (Fig. 12: Intermediate tracks Late at low selectivity and beats it
    // at high selectivity).
    assert!(low_line.contains("Intermediate") || low_line.contains("Late"), "{low_line}");
    assert!(!low_line.contains("Early ("), "{low_line}");

    let (high_line, high_val) = run(0.98);
    // High selectivity: deferral buys nothing; Early's streaming read of
    // the full column wins (Fig. 12 right side).
    assert!(high_line.contains("Early"), "{high_line}");

    // Cross-check answers against a fixed-placement engine.
    for (sel, want) in [(0.02, low_val), (0.98, high_val)] {
        let fixed = engine_with_join_twin(EngineConfig {
            join_placement: JoinPlacement::Early,
            shreds: ShredStrategy::FullColumns,
            ..adaptive_config()
        });
        let x = datagen::literal_for_selectivity(sel);
        let r = fixed
            .query(&format!(
                "SELECT MAX(file2.col11) FROM file1 JOIN file2 ON file1.col1 = file2.col1 \
                 WHERE file2.col2 < {x}"
            ))
            .unwrap();
        assert_eq!(scalar_i64(&r), want, "sel {sel}");
    }
}

#[test]
fn adaptive_in_non_jit_modes_is_safe() {
    for mode in [AccessMode::Dbms, AccessMode::ExternalTables, AccessMode::InSitu] {
        let engine = engine_with_csv(EngineConfig { mode, ..adaptive_config() });
        let x = datagen::literal_for_selectivity(0.3);
        let r = engine.query(&format!("SELECT MAX(col11) FROM file1 WHERE col1 < {x}")).unwrap();
        // Same answer as a JIT adaptive engine.
        let jit = engine_with_csv(adaptive_config());
        let want = jit.query(&format!("SELECT MAX(col11) FROM file1 WHERE col1 < {x}")).unwrap();
        assert_eq!(scalar_i64(&r), scalar_i64(&want), "{mode:?}");
    }
}

#[test]
fn adaptive_multi_column_conjunctions_match_fixed() {
    let x1 = datagen::literal_for_selectivity(0.7);
    let x2 = datagen::literal_for_selectivity(0.5);
    let warm = format!("SELECT MAX(col1) FROM file1 WHERE col1 < {x1}");
    let q = format!("SELECT MAX(col6) FROM file1 WHERE col1 < {x1} AND col5 < {x2}");

    let mut answers = Vec::new();
    for shreds in
        [ShredStrategy::MultiColumnShreds, ShredStrategy::ColumnShreds, ShredStrategy::Adaptive]
    {
        let engine = engine_with_csv(EngineConfig { shreds, ..adaptive_config() });
        engine.query(&warm).unwrap();
        answers.push(engine.query(&q).unwrap().scalar().unwrap());
    }
    assert_eq!(answers[0], answers[1]);
    assert_eq!(answers[1], answers[2]);
}

#[test]
fn explain_shows_cost_estimates() {
    let engine = engine_with_csv(adaptive_config());
    let x = datagen::literal_for_selectivity(0.2);
    engine.query(&format!("SELECT MAX(col1) FROM file1 WHERE col1 < {x}")).unwrap();
    let lines = engine.explain(&format!("SELECT MAX(col11) FROM file1 WHERE col1 < {x}")).unwrap();
    let note =
        lines.iter().find(|l| l.contains("adaptive strategy")).expect("adaptive note in explain");
    assert!(note.contains("full="), "{note}");
    assert!(note.contains("shreds="), "{note}");
    assert!(note.contains("est. sel"), "{note}");
}
