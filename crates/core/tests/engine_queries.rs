//! End-to-end engine tests: every access mode and shred strategy must return
//! identical answers, caches must behave per the paper, and joins must work
//! across placements and file formats.

use raw_columnar::{DataType, Schema, Value};
use raw_engine::{
    AccessMode, EngineConfig, JoinPlacement, QueryResult, RawEngine, ShredStrategy, TableDef,
    TableSource,
};
use raw_formats::datagen;
use raw_posmap::TrackingPolicy;

const ROWS: usize = 500;
const COLS: usize = 12;

/// Register the standard synthetic table as a virtual CSV file.
fn engine_with_csv(config: EngineConfig) -> RawEngine {
    let engine = RawEngine::new(config);
    let t = datagen::int_table(42, ROWS, COLS);
    let bytes = raw_formats::csv::writer::to_bytes(&t).unwrap();
    engine.files().insert("/virtual/file1.csv", bytes);
    engine.register_table(TableDef {
        name: "file1".into(),
        schema: Schema::uniform(COLS, DataType::Int64),
        source: TableSource::Csv { path: "/virtual/file1.csv".into() },
    });
    engine
}

/// Register CSV twin + shuffled fbin twin for join tests.
fn engine_with_twins(config: EngineConfig) -> RawEngine {
    let engine = engine_with_csv(config);
    let t = datagen::int_table(42, ROWS, COLS);
    let shuffled = datagen::shuffled_copy(&t, 7);
    let bytes = raw_formats::fbin::to_bytes(&shuffled).unwrap();
    engine.files().insert("/virtual/file2.fbin", bytes);
    engine.register_table(TableDef {
        name: "file2".into(),
        schema: Schema::uniform(COLS, DataType::Int64),
        source: TableSource::Fbin { path: "/virtual/file2.fbin".into() },
    });
    engine
}

/// Ground truth via direct evaluation on the generated table.
fn expected_max_where_lt(agg_col: usize, pred_col: usize, x: i64) -> Option<i64> {
    let t = datagen::int_table(42, ROWS, COLS);
    let pred = t.column(pred_col).unwrap().as_i64().unwrap();
    let agg = t.column(agg_col).unwrap().as_i64().unwrap();
    pred.iter().zip(agg).filter(|(&p, _)| p < x).map(|(_, &a)| a).max()
}

fn scalar_i64(r: &QueryResult) -> i64 {
    match r.scalar().unwrap() {
        Value::Int64(v) => v,
        other => panic!("expected int64, got {other:?}"),
    }
}

fn config(mode: AccessMode, shreds: ShredStrategy) -> EngineConfig {
    EngineConfig { mode, shreds, ..EngineConfig::from_env() }
}

#[test]
fn all_modes_agree_on_q1_and_q2() {
    let x = datagen::literal_for_selectivity(0.4);
    let q1 = format!("SELECT MAX(col1) FROM file1 WHERE col1 < {x}");
    let q2 = format!("SELECT MAX(col11) FROM file1 WHERE col1 < {x}");
    let expect1 = expected_max_where_lt(0, 0, x).unwrap();
    let expect2 = expected_max_where_lt(10, 0, x).unwrap();

    for mode in [AccessMode::Dbms, AccessMode::ExternalTables, AccessMode::InSitu, AccessMode::Jit]
    {
        for shreds in [
            ShredStrategy::FullColumns,
            ShredStrategy::ColumnShreds,
            ShredStrategy::MultiColumnShreds,
        ] {
            let engine = engine_with_csv(config(mode, shreds));
            let r1 = engine.query(&q1).unwrap();
            assert_eq!(scalar_i64(&r1), expect1, "{mode:?}/{shreds:?} q1");
            let r2 = engine.query(&q2).unwrap();
            assert_eq!(scalar_i64(&r2), expect2, "{mode:?}/{shreds:?} q2");
        }
    }
}

#[test]
fn fbin_modes_agree() {
    let t = datagen::int_table(42, ROWS, COLS);
    let bytes = raw_formats::fbin::to_bytes(&t).unwrap();
    let x = datagen::literal_for_selectivity(0.25);
    let expect = expected_max_where_lt(5, 0, x).unwrap();

    for mode in [AccessMode::Dbms, AccessMode::InSitu, AccessMode::Jit] {
        for shreds in [ShredStrategy::FullColumns, ShredStrategy::ColumnShreds] {
            let engine = RawEngine::new(config(mode, shreds));
            engine.files().insert("/virtual/t.fbin", bytes.clone());
            engine.register_table(TableDef {
                name: "t".into(),
                schema: Schema::uniform(COLS, DataType::Int64),
                source: TableSource::Fbin { path: "/virtual/t.fbin".into() },
            });
            let r = engine.query(&format!("SELECT MAX(col6) FROM t WHERE col1 < {x}")).unwrap();
            assert_eq!(scalar_i64(&r), expect, "{mode:?}/{shreds:?}");
        }
    }
}

#[test]
fn zero_selectivity_yields_null() {
    let engine = engine_with_csv(EngineConfig::from_env());
    let r = engine.query("SELECT MAX(col11) FROM file1 WHERE col1 < 0").unwrap();
    assert_eq!(r.scalar().unwrap(), Value::Utf8("NULL".into()));
}

#[test]
fn full_selectivity_reads_everything() {
    let engine = engine_with_csv(EngineConfig::from_env());
    let x = datagen::INT_VALUE_RANGE;
    let r = engine.query(&format!("SELECT MAX(col11) FROM file1 WHERE col1 < {x}")).unwrap();
    assert_eq!(scalar_i64(&r), expected_max_where_lt(10, 0, x).unwrap());
}

#[test]
fn posmap_is_built_then_used() {
    let engine = engine_with_csv(config(AccessMode::Jit, ShredStrategy::ColumnShreds));
    assert!(engine.posmap("file1").is_none());

    let x = datagen::literal_for_selectivity(0.2);
    let r1 = engine.query(&format!("SELECT MAX(col1) FROM file1 WHERE col1 < {x}")).unwrap();
    assert_eq!(r1.stats.posmaps_built, 1);
    let map = engine.posmap("file1").expect("map built by Q1");
    // Default policy: every 10th column.
    assert_eq!(map.tracked_columns(), &[0, 10]);
    assert_eq!(map.rows(), ROWS as u64);

    // Q2 must navigate via the map, not re-tokenize the whole file.
    let r2 = engine.query(&format!("SELECT MAX(col11) FROM file1 WHERE col1 < {x}")).unwrap();
    assert_eq!(r2.stats.posmaps_built, 0, "no rebuild on Q2");
    assert_eq!(scalar_i64(&r2), expected_max_where_lt(10, 0, x).unwrap());
}

#[test]
fn shred_pool_serves_second_query() {
    let engine = engine_with_csv(config(AccessMode::Jit, ShredStrategy::ColumnShreds));
    let x = datagen::literal_for_selectivity(0.3);
    let q = format!("SELECT MAX(col1) FROM file1 WHERE col1 < {x}");

    let r1 = engine.query(&q).unwrap();
    assert!(r1.stats.shreds_recorded >= 1, "Q1 caches col1");
    assert!(r1.stats.io_bytes == 0, "virtual file: no disk I/O");

    // Re-running the same query must be served from the pool: no tokenizing,
    // no conversions from raw bytes.
    let r2 = engine.query(&q).unwrap();
    assert_eq!(scalar_i64(&r1), scalar_i64(&r2));
    assert_eq!(r2.stats.metrics.fields_tokenized, 0, "pool scan tokenizes nothing");
    assert!(
        r2.stats.explain.iter().any(|l| l.contains("shred pool")),
        "plan: {:?}",
        r2.stats.explain
    );
}

#[test]
fn column_shreds_touch_fewer_values_at_low_selectivity() {
    let x = datagen::literal_for_selectivity(0.05);
    let q2 = format!("SELECT MAX(col11) FROM file1 WHERE col1 < {x}");
    let warmup = format!("SELECT MAX(col1) FROM file1 WHERE col1 < {x}");

    let run = |shreds: ShredStrategy| -> u64 {
        let engine = engine_with_csv(EngineConfig {
            mode: AccessMode::Jit,
            shreds,
            // Cache only positions, not data, so Q2's reads are measurable.
            cache_shreds: false,
            ..EngineConfig::from_env()
        });
        engine.query(&warmup).unwrap();
        let r = engine.query(&q2).unwrap();
        r.stats.metrics.values_converted
    };

    let full = run(ShredStrategy::FullColumns);
    let shred = run(ShredStrategy::ColumnShreds);
    // Full columns converts all rows of both columns; shreds converts all of
    // col1 plus only the ~5% survivors of col11.
    assert!(shred < full * 3 / 4, "expected shreds ({shred}) well below full ({full})");
}

#[test]
fn join_all_placements_agree_csv_fbin() {
    let x = datagen::literal_for_selectivity(0.3);
    // col1 values collide across the twins (same multiset), so the equi-join
    // is selective but non-empty.
    let q = format!(
        "SELECT MAX(file1.col11) FROM file1 JOIN file2 ON file1.col1 = file2.col1 \
         WHERE file2.col2 < {x}"
    );
    let mut reference: Option<i64> = None;
    for placement in [JoinPlacement::Early, JoinPlacement::Intermediate, JoinPlacement::Late] {
        let engine = engine_with_twins(EngineConfig {
            mode: AccessMode::Jit,
            shreds: ShredStrategy::ColumnShreds,
            join_placement: placement,
            ..EngineConfig::from_env()
        });
        // Warm-up query to build the CSV positional map (late CSV fetches
        // need it).
        engine.query(&format!("SELECT MAX(col1) FROM file1 WHERE col1 < {x}")).unwrap();
        let r = engine.query(&q).unwrap();
        let got = scalar_i64(&r);
        match reference {
            None => reference = Some(got),
            Some(v) => assert_eq!(v, got, "{placement:?} diverges"),
        }
    }
    // Cross-check against DBMS mode.
    let engine = engine_with_twins(config(AccessMode::Dbms, ShredStrategy::FullColumns));
    let r = engine.query(&q).unwrap();
    assert_eq!(scalar_i64(&r), reference.unwrap());
}

#[test]
fn join_projected_column_from_build_side() {
    let x = datagen::literal_for_selectivity(0.5);
    let q = format!(
        "SELECT MAX(file2.col11) FROM file1 JOIN file2 ON file1.col1 = file2.col1 \
         WHERE file2.col2 < {x}"
    );
    let mut results = Vec::new();
    for placement in [JoinPlacement::Early, JoinPlacement::Intermediate, JoinPlacement::Late] {
        let engine = engine_with_twins(EngineConfig {
            join_placement: placement,
            ..EngineConfig::from_env()
        });
        results.push(scalar_i64(&engine.query(&q).unwrap()));
    }
    assert!(results.windows(2).all(|w| w[0] == w[1]), "{results:?}");
}

#[test]
fn multiple_aggregates_single_pass() {
    let engine = engine_with_csv(EngineConfig::from_env());
    let x = datagen::literal_for_selectivity(0.6);
    let r = engine
        .query(&format!(
            "SELECT MAX(col11), MIN(col11), COUNT(col1), AVG(col3) FROM file1 WHERE col1 < {x}"
        ))
        .unwrap();
    assert_eq!(r.batch.num_columns(), 4);
    assert_eq!(r.column_names[0], "MAX(col11)");
    let count = match r.value(0, 2).unwrap() {
        Value::Int64(v) => v,
        other => panic!("{other:?}"),
    };
    let t = datagen::int_table(42, ROWS, COLS);
    let expected = t.column(0).unwrap().as_i64().unwrap().iter().filter(|&&v| v < x).count() as i64;
    assert_eq!(count, expected);
}

#[test]
fn bare_projection() {
    let engine = engine_with_csv(EngineConfig::from_env());
    let r = engine.query("SELECT col1, col2 FROM file1 WHERE col1 < 50000000").unwrap();
    assert_eq!(r.batch.num_columns(), 2);
    assert_eq!(r.column_names, vec!["col1", "col2"]);
    let col1 = r.batch.column(0).unwrap().as_i64().unwrap();
    assert!(col1.iter().all(|&v| v < 50_000_000));
    assert_eq!(r.stats.rows_out, col1.len() as u64);
}

#[test]
fn speculative_multi_column_shreds_two_predicates() {
    let x = datagen::literal_for_selectivity(0.5);
    let q = format!("SELECT MAX(col6) FROM file1 WHERE col1 < {x} AND col5 < {x}");

    let t = datagen::int_table(42, ROWS, COLS);
    let c1 = t.column(0).unwrap().as_i64().unwrap();
    let c5 = t.column(4).unwrap().as_i64().unwrap();
    let c6 = t.column(5).unwrap().as_i64().unwrap();
    let expect = c1
        .iter()
        .zip(c5)
        .zip(c6)
        .filter(|((&a, &b), _)| a < x && b < x)
        .map(|(_, &v)| v)
        .max()
        .unwrap();

    for shreds in
        [ShredStrategy::FullColumns, ShredStrategy::ColumnShreds, ShredStrategy::MultiColumnShreds]
    {
        let engine = engine_with_csv(config(AccessMode::Jit, shreds));
        // First query builds the positional map.
        engine.query(&format!("SELECT MAX(col1) FROM file1 WHERE col1 < {x}")).unwrap();
        let r = engine.query(&q).unwrap();
        assert_eq!(scalar_i64(&r), expect, "{shreds:?}");
    }
}

#[test]
fn posmap_stride7_nearest_navigation() {
    let engine = engine_with_csv(EngineConfig {
        posmap_policy: TrackingPolicy::EveryK { stride: 7 },
        ..EngineConfig::from_env()
    });
    let x = datagen::literal_for_selectivity(0.3);
    engine.query(&format!("SELECT MAX(col1) FROM file1 WHERE col1 < {x}")).unwrap();
    let map = engine.posmap("file1").unwrap();
    assert_eq!(map.tracked_columns(), &[0, 7]);
    // col11 (ordinal 10) must be reached via nearest (7) + incremental parse.
    let r = engine.query(&format!("SELECT MAX(col11) FROM file1 WHERE col1 < {x}")).unwrap();
    assert_eq!(scalar_i64(&r), expected_max_where_lt(10, 0, x).unwrap());
    assert!(r.stats.metrics.fields_tokenized > 0, "incremental parsing happened");
}

#[test]
fn cold_vs_warm_io_accounting() {
    // Use a real temp file so disk I/O is observable.
    let t = datagen::int_table(1, 200, 4);
    let path = std::env::temp_dir().join(format!("raw_engine_io_{}.csv", std::process::id()));
    raw_formats::csv::writer::write_file(&t, &path).unwrap();

    let engine = RawEngine::new(EngineConfig::from_env());
    engine.register_table(TableDef {
        name: "t".into(),
        schema: Schema::uniform(4, DataType::Int64),
        source: TableSource::Csv { path: path.clone() },
    });
    let r1 = engine.query("SELECT MAX(col2) FROM t WHERE col1 < 900000000").unwrap();
    assert!(r1.stats.io_bytes > 0, "cold run reads from disk");
    let r2 = engine.query("SELECT MAX(col3) FROM t WHERE col1 < 900000000").unwrap();
    assert_eq!(r2.stats.io_bytes, 0, "warm run is served from the buffer pool");

    engine.drop_file_caches();
    let r3 = engine.query("SELECT MAX(col4) FROM t WHERE col1 < 900000000").unwrap();
    assert!(r3.stats.io_bytes > 0, "cold again after eviction");
    std::fs::remove_file(&path).ok();
}

#[test]
fn template_cache_hits_on_repeat() {
    // Disable shred caching so repeat queries actually hit the raw file
    // (with caching on, the pool serves repeats and no template is needed).
    let engine = engine_with_csv(EngineConfig {
        mode: AccessMode::Jit,
        shreds: ShredStrategy::FullColumns,
        cache_shreds: false,
        ..EngineConfig::from_env()
    });
    let q = "SELECT MAX(col2) FROM file1 WHERE col1 < 100000000";
    let r1 = engine.query(q).unwrap();
    assert!(r1.stats.template_misses >= 1, "first run compiles (sequential program)");
    // The second run sees a positional map, so it compiles the *map-driven*
    // access path — a different template (the paper: per file & per query
    // instance). The third run re-uses it.
    let r2 = engine.query(q).unwrap();
    assert!(r2.stats.template_misses >= 1, "new access path once the map exists");
    let r3 = engine.query(q).unwrap();
    assert_eq!(r3.stats.template_misses, 0, "third run hits the template cache");
    assert!(r3.stats.template_hits >= 1);
}

#[test]
fn reset_adaptive_state_forgets_everything() {
    let engine = engine_with_csv(EngineConfig::from_env());
    engine.query("SELECT MAX(col1) FROM file1 WHERE col1 < 400000000").unwrap();
    assert!(engine.posmap("file1").is_some());
    engine.reset_adaptive_state();
    assert!(engine.posmap("file1").is_none());
    let r = engine.query("SELECT MAX(col1) FROM file1 WHERE col1 < 400000000").unwrap();
    assert_eq!(r.stats.posmaps_built, 1, "map rebuilt after reset");
}

#[test]
fn explain_describes_plan() {
    let engine = engine_with_csv(EngineConfig::from_env());
    let lines =
        engine.query("SELECT MAX(col11) FROM file1 WHERE col1 < 1000").unwrap().stats.explain;
    let text = lines.join("\n");
    assert!(text.contains("scan file1"), "{text}");
    assert!(text.contains("filter file1.col1 < 1000"), "{text}");
    assert!(text.contains("aggregate MAX(col11)"), "{text}");
}

#[test]
fn errors_are_clean() {
    let engine = engine_with_csv(EngineConfig::from_env());
    assert!(engine.query("SELECT MAX(colX) FROM file1").is_err());
    assert!(engine.query("SELECT MAX(col1) FROM nope").is_err());
    assert!(engine.query("not sql at all").is_err());

    // Malformed file contents: error, not panic.
    let engine = RawEngine::new(EngineConfig::from_env());
    engine.files().insert("/virtual/bad.csv", b"1,notanint\n".to_vec());
    engine.register_table(TableDef {
        name: "bad".into(),
        schema: Schema::uniform(2, DataType::Int64),
        source: TableSource::Csv { path: "/virtual/bad.csv".into() },
    });
    let err = engine.query("SELECT MAX(col2) FROM bad").unwrap_err();
    assert!(err.to_string().contains("cannot parse"), "{err}");
}

#[test]
fn simulated_compile_latency_charged_once() {
    let engine = engine_with_csv(EngineConfig {
        simulated_compile_latency: std::time::Duration::from_millis(30),
        ..EngineConfig::from_env()
    });
    let q = "SELECT MAX(col1) FROM file1 WHERE col1 < 100";
    let r1 = engine.query(q).unwrap();
    assert!(r1.stats.compile_time >= std::time::Duration::from_millis(30));
    let r2 = engine.query(q).unwrap();
    assert!(r2.stats.compile_time < std::time::Duration::from_millis(30));
}
