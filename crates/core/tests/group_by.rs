//! End-to-end `GROUP BY` queries: grouped aggregation must agree across
//! every access mode and materialization strategy, compose with joins and
//! shreds, and enforce the SQL grouping rules.

use std::collections::BTreeMap;

use raw_columnar::{Column, DataType, Field, MemTable, Schema, Value};
use raw_engine::{
    AccessMode, EngineConfig, QueryResult, RawEngine, ShredStrategy, TableDef, TableSource,
};

/// A small sales-like table: region id (low-cardinality key), quantity,
/// price.
fn sales_table() -> MemTable {
    let n = 500;
    let region: Vec<i64> = (0..n).map(|i| (i * 7 + 1) % 9).collect();
    let quantity: Vec<i64> = (0..n).map(|i| (i * 13 + 5) % 40).collect();
    let price: Vec<f64> = (0..n).map(|i| ((i * 31 + 3) % 1000) as f64 / 10.0).collect();
    MemTable::new(
        Schema::new(vec![
            Field::new("region", DataType::Int64),
            Field::new("quantity", DataType::Int64),
            Field::new("price", DataType::Float64),
        ]),
        vec![Column::Int64(region), Column::Int64(quantity), Column::Float64(price)],
    )
    .unwrap()
}

fn engine_with_sales(config: EngineConfig, fbin: bool) -> RawEngine {
    let engine = RawEngine::new(config);
    let t = sales_table();
    let (path, source, bytes) = if fbin {
        let p = "/virtual/sales.fbin";
        (p, TableSource::Fbin { path: p.into() }, raw_formats::fbin::to_bytes(&t).unwrap())
    } else {
        let p = "/virtual/sales.csv";
        (p, TableSource::Csv { path: p.into() }, raw_formats::csv::writer::to_bytes(&t).unwrap())
    };
    engine.files().insert(path, bytes);
    engine.register_table(TableDef { name: "sales".into(), schema: t.schema().clone(), source });
    engine
}

/// Naive reference: per-region (sum of quantity, count, max price).
fn reference(filter_quantity_lt: Option<i64>) -> BTreeMap<i64, (i64, i64, f64)> {
    let t = sales_table();
    let region = t.column(0).unwrap().as_i64().unwrap();
    let quantity = t.column(1).unwrap().as_i64().unwrap();
    let price = t.column(2).unwrap().as_f64().unwrap();
    let mut out: BTreeMap<i64, (i64, i64, f64)> = BTreeMap::new();
    for i in 0..region.len() {
        if let Some(x) = filter_quantity_lt {
            if quantity[i] >= x {
                continue;
            }
        }
        let e = out.entry(region[i]).or_insert((0, 0, f64::NEG_INFINITY));
        e.0 += quantity[i];
        e.1 += 1;
        e.2 = e.2.max(price[i]);
    }
    out
}

fn check_against_reference(r: &QueryResult, expect: &BTreeMap<i64, (i64, i64, f64)>) {
    assert_eq!(r.batch.rows(), expect.len(), "group count");
    for (i, (&k, &(sum, cnt, maxp))) in expect.iter().enumerate() {
        assert_eq!(r.value(i, 0).unwrap(), Value::Int64(k), "key at row {i}");
        assert_eq!(r.value(i, 1).unwrap(), Value::Int64(sum), "sum at key {k}");
        assert_eq!(r.value(i, 2).unwrap(), Value::Int64(cnt), "count at key {k}");
        assert_eq!(r.value(i, 3).unwrap(), Value::Float64(maxp), "max at key {k}");
    }
}

const Q: &str = "SELECT region, SUM(quantity), COUNT(quantity), MAX(price) \
                 FROM sales GROUP BY region";

#[test]
fn group_by_agrees_across_modes_and_formats() {
    let expect = reference(None);
    for fbin in [false, true] {
        for mode in
            [AccessMode::Dbms, AccessMode::ExternalTables, AccessMode::InSitu, AccessMode::Jit]
        {
            let engine = engine_with_sales(EngineConfig { mode, ..EngineConfig::from_env() }, fbin);
            let r = engine.query(Q).unwrap();
            check_against_reference(&r, &expect);
            assert_eq!(
                r.column_names,
                vec!["region", "SUM(quantity)", "COUNT(quantity)", "MAX(price)"]
            );
        }
    }
}

#[test]
fn group_by_composes_with_filters_and_shreds() {
    let expect = reference(Some(20));
    for shreds in [
        ShredStrategy::FullColumns,
        ShredStrategy::ColumnShreds,
        ShredStrategy::MultiColumnShreds,
        ShredStrategy::Adaptive,
    ] {
        let engine = engine_with_sales(
            EngineConfig { mode: AccessMode::Jit, shreds, ..EngineConfig::from_env() },
            false,
        );
        // Warm-up builds the positional map so shred plans can fetch late.
        engine.query("SELECT MAX(quantity) FROM sales WHERE quantity < 20").unwrap();
        let r = engine
            .query(
                "SELECT region, SUM(quantity), COUNT(quantity), MAX(price) \
                 FROM sales WHERE quantity < 20 GROUP BY region",
            )
            .unwrap();
        check_against_reference(&r, &expect);
    }
}

#[test]
fn aggregate_only_select_list_still_groups() {
    let engine = engine_with_sales(EngineConfig::from_env(), false);
    let r = engine.query("SELECT COUNT(quantity) FROM sales GROUP BY region").unwrap();
    let expect = reference(None);
    assert_eq!(r.batch.rows(), expect.len());
    let counts: Vec<i64> = expect.values().map(|v| v.1).collect();
    for (i, want) in counts.iter().enumerate() {
        assert_eq!(r.value(i, 0).unwrap(), Value::Int64(*want));
    }
}

#[test]
fn select_order_is_respected() {
    let engine = engine_with_sales(EngineConfig::from_env(), false);
    let r = engine
        .query("SELECT COUNT(quantity), region, SUM(quantity) FROM sales GROUP BY region")
        .unwrap();
    let expect = reference(None);
    for (i, (&k, &(sum, cnt, _))) in expect.iter().enumerate() {
        assert_eq!(r.value(i, 0).unwrap(), Value::Int64(cnt));
        assert_eq!(r.value(i, 1).unwrap(), Value::Int64(k));
        assert_eq!(r.value(i, 2).unwrap(), Value::Int64(sum));
    }
}

#[test]
fn group_by_over_join() {
    // Join sales with a region-dimension file, group by the key.
    let engine = engine_with_sales(EngineConfig::from_env(), false);
    let dim = MemTable::new(
        Schema::new(vec![
            Field::new("region", DataType::Int64),
            Field::new("tier", DataType::Int64),
        ]),
        vec![Column::Int64((0..9).collect()), Column::Int64((0..9).map(|r| r % 3).collect())],
    )
    .unwrap();
    engine.files().insert("/virtual/dim.csv", raw_formats::csv::writer::to_bytes(&dim).unwrap());
    engine.register_table(TableDef {
        name: "dim".into(),
        schema: dim.schema().clone(),
        source: TableSource::Csv { path: "/virtual/dim.csv".into() },
    });

    let r = engine
        .query(
            "SELECT dim.tier, COUNT(sales.quantity) FROM sales \
             JOIN dim ON sales.region = dim.region GROUP BY dim.tier",
        )
        .unwrap();
    // Reference: every sale joins exactly one dim row; count per tier.
    let expect_by_region = reference(None);
    let mut by_tier: BTreeMap<i64, i64> = BTreeMap::new();
    for (&region, &(_, cnt, _)) in &expect_by_region {
        *by_tier.entry(region % 3).or_insert(0) += cnt;
    }
    assert_eq!(r.batch.rows(), by_tier.len());
    for (i, (&tier, &cnt)) in by_tier.iter().enumerate() {
        assert_eq!(r.value(i, 0).unwrap(), Value::Int64(tier));
        assert_eq!(r.value(i, 1).unwrap(), Value::Int64(cnt));
    }
}

#[test]
fn empty_group_by_result_has_zero_rows() {
    let engine = engine_with_sales(EngineConfig::from_env(), false);
    let r = engine
        .query("SELECT region, COUNT(quantity) FROM sales WHERE quantity < -1 GROUP BY region")
        .unwrap();
    assert_eq!(r.batch.rows(), 0);
}

#[test]
fn grouping_rules_enforced() {
    let engine = engine_with_sales(EngineConfig::from_env(), false);
    // Bare column that is not the key.
    let err = engine.query("SELECT price, COUNT(quantity) FROM sales GROUP BY region").unwrap_err();
    assert!(err.to_string().contains("GROUP BY"), "{err}");
    // No aggregate at all.
    assert!(engine.query("SELECT region FROM sales GROUP BY region").is_err());
    // Unknown key.
    assert!(engine.query("SELECT COUNT(price) FROM sales GROUP BY nope").is_err());
    // Float keys unsupported (typed error, not panic).
    assert!(engine.query("SELECT COUNT(quantity) FROM sales GROUP BY price").is_err());
}

/// CI canary for the env-forced parallel configuration: when
/// `RAW_PARALLELISM >= 2` reaches `EngineConfig::from_env`, a grouped
/// query over a splittable file must actually take the parallel path —
/// otherwise the `parallel-path` CI job would go green while exercising
/// nothing but the serial planner. A no-op under default (serial) runs.
#[test]
fn env_forced_parallelism_engages_parallel_path() {
    let mut config = EngineConfig::from_env();
    if config.parallelism < 2 {
        return;
    }
    // Robust to the job forgetting RAW_MORSEL_BYTES: the sales file is
    // ~10 KiB, so cap the morsel size to guarantee a multi-morsel grid.
    config.morsel_bytes = config.morsel_bytes.min(2 << 10);
    let engine = engine_with_sales(config, false);
    let r = engine.query(Q).unwrap();
    assert!(
        r.stats.explain.iter().any(|l| l.contains("parallel:")),
        "RAW_PARALLELISM >= 2 but the grouped query stayed serial: {:#?}",
        r.stats.explain
    );
}

#[test]
fn group_by_parses_and_prints_round_trip() {
    let stmt = raw_engine::sql::parse(Q).unwrap();
    assert!(stmt.group_by.is_some());
    let printed = stmt.to_string();
    let again = raw_engine::sql::parse(&printed).unwrap();
    assert_eq!(stmt, again);
}
