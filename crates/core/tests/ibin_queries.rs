//! End-to-end queries over the indexed binary format: every access mode
//! must agree, and only the JIT path may exploit the embedded page index.
//!
//! Engines are configured through [`EngineConfig::from_env`], so the CI
//! `RAW_PARALLELISM=4` job runs this whole suite on the page-aligned
//! morsel-parallel path — pruning counters, explain notes, and template
//! cache behavior must hold there too.

use raw_columnar::{DataType, Schema, Value};
use raw_engine::{
    AccessMode, EngineConfig, QueryResult, RawEngine, ShredStrategy, TableDef, TableSource,
};
use raw_formats::datagen;

const ROWS: usize = 800;
const COLS: usize = 6;
const PAGE: u32 = 64;

fn table(sorted: bool) -> raw_columnar::MemTable {
    let t = datagen::int_table(77, ROWS, COLS);
    if sorted {
        datagen::sorted_copy(&t, 0)
    } else {
        t
    }
}

fn engine_with_ibin(config: EngineConfig, sorted: bool) -> RawEngine {
    let engine = RawEngine::new(config);
    let t = table(sorted);
    let bytes = raw_formats::ibin::to_bytes_with(&t, PAGE, sorted.then_some(0)).unwrap();
    engine.files().insert("/virtual/t.ibin", bytes);
    engine.register_table(TableDef {
        name: "t".into(),
        schema: Schema::uniform(COLS, DataType::Int64),
        source: TableSource::Ibin { path: "/virtual/t.ibin".into() },
    });
    engine
}

fn scalar_i64(r: &QueryResult) -> i64 {
    match r.scalar().unwrap() {
        Value::Int64(v) => v,
        other => panic!("expected int64, got {other:?}"),
    }
}

fn expected_max_where_lt(sorted: bool, agg: usize, pred: usize, x: i64) -> Option<i64> {
    let t = table(sorted);
    let p = t.column(pred).unwrap().as_i64().unwrap();
    let a = t.column(agg).unwrap().as_i64().unwrap();
    p.iter().zip(a).filter(|(&pv, _)| pv < x).map(|(_, &av)| av).max()
}

#[test]
fn all_modes_agree_on_ibin() {
    for sorted in [false, true] {
        for sel in [0.05, 0.5, 1.0] {
            let x = datagen::literal_for_selectivity(sel);
            let expect = expected_max_where_lt(sorted, 4, 0, x).unwrap();
            for mode in
                [AccessMode::Dbms, AccessMode::ExternalTables, AccessMode::InSitu, AccessMode::Jit]
            {
                for shreds in [ShredStrategy::FullColumns, ShredStrategy::ColumnShreds] {
                    let engine = engine_with_ibin(
                        EngineConfig { mode, shreds, ..EngineConfig::from_env() },
                        sorted,
                    );
                    let r =
                        engine.query(&format!("SELECT MAX(col5) FROM t WHERE col1 < {x}")).unwrap();
                    assert_eq!(
                        scalar_i64(&r),
                        expect,
                        "{mode:?}/{shreds:?} sorted={sorted} sel={sel}"
                    );
                }
            }
        }
    }
}

#[test]
fn jit_prunes_sorted_files_and_insitu_does_not() {
    let x = datagen::literal_for_selectivity(0.1);
    let q = format!("SELECT MAX(col5) FROM t WHERE col1 < {x}");

    let jit =
        engine_with_ibin(EngineConfig { mode: AccessMode::Jit, ..EngineConfig::from_env() }, true);
    let r = jit.query(&q).unwrap();
    assert!(
        r.stats.metrics.rows_pruned > (ROWS as u64) / 2,
        "10% selectivity on the sort key must prune most pages, pruned {}",
        r.stats.metrics.rows_pruned
    );
    assert!(r.stats.metrics.rows_scanned < ROWS as u64, "pruned rows must not be scanned");
    let note = r.stats.explain.iter().find(|l| l.contains("ibin jit")).expect("jit scan note");
    assert!(note.contains("index pruned"), "{note}");

    let insitu = engine_with_ibin(
        EngineConfig { mode: AccessMode::InSitu, ..EngineConfig::from_env() },
        true,
    );
    let r = insitu.query(&q).unwrap();
    assert_eq!(r.stats.metrics.rows_pruned, 0, "general-purpose scans are index-blind");
    assert_eq!(r.stats.metrics.rows_scanned, ROWS as u64);
}

#[test]
fn unsorted_zone_maps_still_prune_conservatively() {
    // Uniform random data rarely lets zone maps prune (every page spans
    // most of the domain) — but correctness must hold regardless, and an
    // impossible predicate must prune everything.
    let jit =
        engine_with_ibin(EngineConfig { mode: AccessMode::Jit, ..EngineConfig::from_env() }, false);
    let r = jit.query("SELECT COUNT(col1) FROM t WHERE col1 < -5").unwrap();
    assert_eq!(scalar_i64(&r), 0);
    assert_eq!(r.stats.metrics.rows_pruned, ROWS as u64, "contradiction prunes all pages");
}

#[test]
fn conjunctive_predicates_prune_and_answer_correctly() {
    let t = table(true);
    let x1 = datagen::literal_for_selectivity(0.3);
    let x2 = datagen::literal_for_selectivity(0.7);
    let p1 = t.column(0).unwrap().as_i64().unwrap();
    let p2 = t.column(2).unwrap().as_i64().unwrap();
    let a = t.column(4).unwrap().as_i64().unwrap();
    let expect = p1
        .iter()
        .zip(p2)
        .zip(a)
        .filter(|((&v1, &v2), _)| v1 < x1 && v2 < x2)
        .map(|(_, &av)| av)
        .max()
        .unwrap();

    let engine =
        engine_with_ibin(EngineConfig { mode: AccessMode::Jit, ..EngineConfig::from_env() }, true);
    let r = engine
        .query(&format!("SELECT MAX(col5) FROM t WHERE col1 < {x1} AND col3 < {x2}"))
        .unwrap();
    assert_eq!(scalar_i64(&r), expect);
    assert!(r.stats.metrics.rows_pruned > 0, "sort-key conjunct prunes");
}

#[test]
fn pruned_prefix_shreds_never_masquerade_as_full_columns() {
    // Regression: Q1's pruned scan records only a prefix of col1. The pool
    // must treat that shred as *partial* — a widening Q2 must go back to
    // the file (or fall back through the pool) and still see all 800 rows.
    let engine =
        engine_with_ibin(EngineConfig { mode: AccessMode::Jit, ..EngineConfig::from_env() }, true);
    let x1 = datagen::literal_for_selectivity(0.1);
    let x2 = datagen::literal_for_selectivity(0.9);
    for (x, label) in [(x1, "narrow"), (x2, "wide"), (x1, "narrow again")] {
        let r = engine.query(&format!("SELECT MAX(col5) FROM t WHERE col1 < {x}")).unwrap();
        assert_eq!(scalar_i64(&r), expected_max_where_lt(true, 4, 0, x).unwrap(), "{label}");
    }
}

#[test]
fn template_cache_distinguishes_predicates() {
    // Full columns keeps the bottom scan shape identical across queries,
    // isolating the template-cache keying on pruning predicates.
    let engine = engine_with_ibin(
        EngineConfig {
            mode: AccessMode::Jit,
            shreds: ShredStrategy::FullColumns,
            cache_shreds: false,
            ..EngineConfig::from_env()
        },
        true,
    );
    let x1 = datagen::literal_for_selectivity(0.1);
    let x2 = datagen::literal_for_selectivity(0.9);
    let r1 = engine.query(&format!("SELECT MAX(col5) FROM t WHERE col1 < {x1}")).unwrap();
    assert!(r1.stats.template_misses > 0, "first query compiles");
    // Different literal → different pruning → different program.
    let r2 = engine.query(&format!("SELECT MAX(col5) FROM t WHERE col1 < {x2}")).unwrap();
    assert!(r2.stats.template_misses > 0, "new predicate recompiles");
    // Re-asking the first query hits the cache.
    let r3 = engine.query(&format!("SELECT MAX(col5) FROM t WHERE col1 < {x1}")).unwrap();
    assert!(r3.stats.template_misses == 0 && r3.stats.template_hits > 0);
}

#[test]
fn column_shreds_work_over_ibin() {
    let x = datagen::literal_for_selectivity(0.1);
    let engine = engine_with_ibin(
        EngineConfig {
            mode: AccessMode::Jit,
            shreds: ShredStrategy::ColumnShreds,
            ..EngineConfig::from_env()
        },
        true,
    );
    let q = format!("SELECT MAX(col5) FROM t WHERE col1 < {x}");
    let r = engine.query(&q).unwrap();
    assert_eq!(scalar_i64(&r), expected_max_where_lt(true, 4, 0, x).unwrap());
    let attach = r.stats.explain.iter().find(|l| l.contains("attach"));
    assert!(attach.is_some(), "shred attach expected: {:?}", r.stats.explain);
    // The late fetch reads only survivors of both the index pruning and
    // the exact filter.
    assert!(r.stats.shreds_recorded > 0);
}

#[test]
fn adaptive_strategy_works_over_ibin() {
    let x = datagen::literal_for_selectivity(0.05);
    let engine = engine_with_ibin(
        EngineConfig {
            mode: AccessMode::Jit,
            shreds: ShredStrategy::Adaptive,
            ..EngineConfig::from_env()
        },
        true,
    );
    // Warm-up harvests the histogram.
    engine.query(&format!("SELECT MAX(col1) FROM t WHERE col1 < {x}")).unwrap();
    let r = engine.query(&format!("SELECT MAX(col5) FROM t WHERE col1 < {x}")).unwrap();
    assert_eq!(scalar_i64(&r), expected_max_where_lt(true, 4, 0, x).unwrap());
    let note =
        r.stats.explain.iter().find(|l| l.contains("adaptive strategy")).expect("adaptive note");
    assert!(note.contains("ColumnShreds"), "binary late fetches are cheap: {note}");
}

#[test]
fn corrupt_ibin_file_yields_error_not_panic() {
    let engine = RawEngine::new(EngineConfig::default());
    engine.files().insert("/virtual/bad.ibin", b"RAWIBIN1garbage".to_vec());
    engine.register_table(TableDef {
        name: "bad".into(),
        schema: Schema::uniform(3, DataType::Int64),
        source: TableSource::Ibin { path: "/virtual/bad.ibin".into() },
    });
    assert!(engine.query("SELECT MAX(col1) FROM bad").is_err());
}

#[test]
fn ibin_joins_with_csv() {
    // Heterogeneous join: indexed binary ⋈ CSV, both raw.
    let engine =
        engine_with_ibin(EngineConfig { mode: AccessMode::Jit, ..EngineConfig::from_env() }, true);
    let csv_table = datagen::int_table(77, ROWS, COLS); // same data, unsorted
    let bytes = raw_formats::csv::writer::to_bytes(&csv_table).unwrap();
    engine.files().insert("/virtual/u.csv", bytes);
    engine.register_table(TableDef {
        name: "u".into(),
        schema: Schema::uniform(COLS, DataType::Int64),
        source: TableSource::Csv { path: "/virtual/u.csv".into() },
    });
    let x = datagen::literal_for_selectivity(0.2);
    let r = engine
        .query(&format!("SELECT COUNT(u.col5) FROM u JOIN t ON u.col1 = t.col1 WHERE t.col1 < {x}"))
        .unwrap();
    // Same content on both sides: every filtered t row matches exactly one
    // u row (values are unique with overwhelming probability at this seed).
    let t = table(true);
    let expect = t.column(0).unwrap().as_i64().unwrap().iter().filter(|&&v| v < x).count() as i64;
    assert_eq!(scalar_i64(&r), expect);
}
