//! Property tests at the engine level: every access mode × shred strategy
//! must return the same answer for arbitrary tables and queries, across
//! query sequences that exercise the adaptive caches.

use proptest::prelude::*;

use raw_columnar::{DataType, Schema, Value};
use raw_engine::{AccessMode, EngineConfig, RawEngine, ShredStrategy, TableDef, TableSource};
use raw_formats::datagen;
use raw_posmap::TrackingPolicy;

fn engine_for(
    bytes: &[u8],
    cols: usize,
    mode: AccessMode,
    shreds: ShredStrategy,
    stride: usize,
    fbin: bool,
) -> RawEngine {
    let engine = RawEngine::new(EngineConfig {
        mode,
        shreds,
        posmap_policy: TrackingPolicy::EveryK { stride },
        batch_size: 64, // small batches stress boundaries
        ..EngineConfig::default()
    });
    let path = if fbin { "/virtual/t.fbin" } else { "/virtual/t.csv" };
    engine.files().insert(path, bytes.to_vec());
    engine.register_table(TableDef {
        name: "t".into(),
        schema: Schema::uniform(cols, DataType::Int64),
        source: if fbin {
            TableSource::Fbin { path: path.into() }
        } else {
            TableSource::Csv { path: path.into() }
        },
    });
    engine
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn histogram_estimates_track_empirical_fractions(
        values in proptest::collection::vec(-1_000_000i64..1_000_000, 50..2000),
        x in -1_100_000i64..1_100_000,
    ) {
        use raw_columnar::{CmpOp, Column};
        use raw_engine::ColumnHistogram;

        let col = Column::Int64(values.clone());
        let h = ColumnHistogram::build(&col).unwrap();
        let est = h.selectivity(CmpOp::Lt, &Value::Int64(x)).unwrap();
        let truth = values.iter().filter(|&&v| v < x).count() as f64
            / values.len() as f64;
        // Equi-width histograms bound the error by one bucket's mass plus
        // sampling noise; 64 buckets over adversarial skew can still put
        // lots of mass in one bucket, so only require a loose band plus
        // exactness at the extremes.
        prop_assert!(
            (est - truth).abs() <= 0.55,
            "est {est} vs truth {truth} for x={x}"
        );
        if x <= *values.iter().min().unwrap() {
            prop_assert_eq!(est, 0.0);
        }
        if x > *values.iter().max().unwrap() {
            prop_assert_eq!(est, 1.0);
        }
        // Complements are exact by construction.
        let ge = h.selectivity(CmpOp::Ge, &Value::Int64(x)).unwrap();
        prop_assert!((est + ge - 1.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_fraction_below_is_monotone(
        values in proptest::collection::vec(any::<i64>(), 2..500),
        probes in proptest::collection::vec(any::<f64>(), 2..20),
    ) {
        use raw_columnar::Column;
        use raw_engine::ColumnHistogram;

        let h = ColumnHistogram::build(&Column::Int64(values)).unwrap();
        let mut probes: Vec<f64> = probes.into_iter().filter(|p| p.is_finite()).collect();
        probes.sort_by(f64::total_cmp);
        let fracs: Vec<f64> = probes.iter().map(|&p| h.fraction_below(p)).collect();
        for w in fracs.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12, "monotonicity violated: {fracs:?}");
        }
        for f in fracs {
            prop_assert!((0.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn cost_model_shred_estimates_monotone_in_selectivity(
        sels in proptest::collection::vec(0.0f64..=1.0, 2..8),
    ) {
        use raw_columnar::DataType;
        use raw_engine::cost::{CostModel, FilterDesc, PosmapAvail, ScanFormat, StrategyInput};

        let m = CostModel::default();
        let mut sels = sels;
        sels.sort_by(f64::total_cmp);
        let costs: Vec<f64> = sels
            .iter()
            .map(|&sel| {
                let d = m.choose_strategy(&StrategyInput {
                    format: ScanFormat::Csv(PosmapAvail::Exact),
                    rows: 1e6,
                    filters: vec![FilterDesc { data_type: DataType::Int64, selectivity: sel }],
                    outputs: vec![DataType::Int64],
                });
                d.estimates
                    .iter()
                    .find(|(l, _)| *l == "shreds")
                    .map(|(_, c)| *c)
                    .unwrap_or(f64::INFINITY)
            })
            .collect();
        for w in costs.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-6, "shred cost must grow with selectivity: {costs:?}");
        }
    }

    #[test]
    fn all_modes_agree_on_query_sequences(
        seed in 1u64..1000,
        rows in 1usize..120,
        cols in 3usize..10,
        stride in 1usize..6,
        // (aggregated column, predicate column, selectivity percent) triples
        queries in proptest::collection::vec(
            (0usize..10, 0usize..10, 0u32..=100),
            1..4,
        ),
        fbin in proptest::bool::ANY,
    ) {
        let table = datagen::int_table(seed, rows, cols);
        let bytes = if fbin {
            raw_formats::fbin::to_bytes(&table).unwrap()
        } else {
            raw_formats::csv::writer::to_bytes(&table).unwrap()
        };

        // Normalize query columns into range.
        let queries: Vec<(usize, usize, i64)> = queries
            .into_iter()
            .map(|(a, p, s)| {
                (a % cols, p % cols, datagen::literal_for_selectivity(f64::from(s) / 100.0))
            })
            .collect();

        // Ground truth per query.
        let expected: Vec<Option<i64>> = queries
            .iter()
            .map(|&(agg, pred, x)| {
                let p = table.column(pred).unwrap().as_i64().unwrap();
                let a = table.column(agg).unwrap().as_i64().unwrap();
                p.iter().zip(a).filter(|(&pv, _)| pv < x).map(|(_, &av)| av).max()
            })
            .collect();

        let configs = [
            (AccessMode::Dbms, ShredStrategy::FullColumns),
            (AccessMode::ExternalTables, ShredStrategy::FullColumns),
            (AccessMode::InSitu, ShredStrategy::FullColumns),
            (AccessMode::Jit, ShredStrategy::FullColumns),
            (AccessMode::Jit, ShredStrategy::ColumnShreds),
            (AccessMode::Jit, ShredStrategy::MultiColumnShreds),
            (AccessMode::Jit, ShredStrategy::Adaptive),
            (AccessMode::InSitu, ShredStrategy::Adaptive), // falls back, must agree
        ];
        for (mode, shreds) in configs {
            if fbin && mode == AccessMode::ExternalTables {
                // fine, supported — keep
            }
            let engine = engine_for(&bytes, cols, mode, shreds, stride, fbin);
            // The whole *sequence* runs on one engine so positional maps and
            // shreds built by earlier queries serve later ones.
            for (qi, &(agg, pred, x)) in queries.iter().enumerate() {
                let sql = format!(
                    "SELECT MAX(col{}) FROM t WHERE col{} < {x}",
                    agg + 1,
                    pred + 1
                );
                let got = engine.query(&sql).unwrap();
                let got = got.scalar().unwrap();
                match expected[qi] {
                    Some(v) => prop_assert_eq!(
                        got, Value::Int64(v),
                        "{:?}/{:?} query {}", mode, shreds, qi
                    ),
                    None => prop_assert_eq!(
                        got, Value::Utf8("NULL".into()),
                        "{:?}/{:?} query {}", mode, shreds, qi
                    ),
                }
            }
        }
    }

    #[test]
    fn ibin_pruning_agrees_with_every_mode(
        seed in 1u64..500,
        rows in 1usize..200,
        page in 1u32..40,
        sorted in proptest::bool::ANY,
        queries in proptest::collection::vec(
            (0usize..6, 0usize..6, 0u32..=100),
            1..4,
        ),
    ) {
        let cols = 6;
        let base = datagen::int_table(seed, rows, cols);
        let table = if sorted { datagen::sorted_copy(&base, 0) } else { base };
        let bytes = raw_formats::ibin::to_bytes_with(
            &table,
            page,
            if sorted { Some(0) } else { None },
        )
        .unwrap();

        let queries: Vec<(usize, usize, i64)> = queries
            .into_iter()
            .map(|(a, p, s)| {
                (a % cols, p % cols, datagen::literal_for_selectivity(f64::from(s) / 100.0))
            })
            .collect();
        let expected: Vec<Option<i64>> = queries
            .iter()
            .map(|&(agg, pred, x)| {
                let p = table.column(pred).unwrap().as_i64().unwrap();
                let a = table.column(agg).unwrap().as_i64().unwrap();
                p.iter().zip(a).filter(|(&pv, _)| pv < x).map(|(_, &av)| av).max()
            })
            .collect();

        let configs = [
            (AccessMode::Dbms, ShredStrategy::FullColumns),
            (AccessMode::ExternalTables, ShredStrategy::FullColumns),
            (AccessMode::InSitu, ShredStrategy::FullColumns),
            (AccessMode::Jit, ShredStrategy::FullColumns),
            (AccessMode::Jit, ShredStrategy::ColumnShreds),
            (AccessMode::Jit, ShredStrategy::Adaptive),
        ];
        for (mode, shreds) in configs {
            let engine = RawEngine::new(EngineConfig {
                mode,
                shreds,
                batch_size: 64,
                ..EngineConfig::default()
            });
            engine.files().insert("/virtual/t.ibin", bytes.clone());
            engine.register_table(TableDef {
                name: "t".into(),
                schema: Schema::uniform(cols, DataType::Int64),
                source: TableSource::Ibin { path: "/virtual/t.ibin".into() },
            });
            for (qi, &(agg, pred, x)) in queries.iter().enumerate() {
                let sql = format!(
                    "SELECT MAX(col{}) FROM t WHERE col{} < {x}",
                    agg + 1,
                    pred + 1
                );
                let got = engine.query(&sql).unwrap().scalar().unwrap();
                match expected[qi] {
                    Some(v) => prop_assert_eq!(
                        got, Value::Int64(v),
                        "{:?}/{:?} q{} sorted={}", mode, shreds, qi, sorted
                    ),
                    None => prop_assert_eq!(
                        got, Value::Utf8("NULL".into()),
                        "{:?}/{:?} q{} sorted={}", mode, shreds, qi, sorted
                    ),
                }
            }
        }
    }

    #[test]
    fn conjunctions_agree_across_strategies(
        seed in 1u64..500,
        rows in 1usize..100,
        x1 in 0u32..=100,
        x2 in 0u32..=100,
    ) {
        let cols = 8;
        let table = datagen::int_table(seed, rows, cols);
        let bytes = raw_formats::csv::writer::to_bytes(&table).unwrap();
        let l1 = datagen::literal_for_selectivity(f64::from(x1) / 100.0);
        let l2 = datagen::literal_for_selectivity(f64::from(x2) / 100.0);
        let sql = format!(
            "SELECT MAX(col6), COUNT(col1) FROM t WHERE col1 < {l1} AND col5 < {l2}"
        );

        let mut results = Vec::new();
        for shreds in [
            ShredStrategy::FullColumns,
            ShredStrategy::ColumnShreds,
            ShredStrategy::MultiColumnShreds,
            ShredStrategy::Adaptive,
        ] {
            let engine = engine_for(&bytes, cols, AccessMode::Jit, shreds, 3, false);
            // Warm-up builds the positional map so shreds can fetch late.
            engine.query(&format!("SELECT MAX(col1) FROM t WHERE col1 < {l1}")).unwrap();
            let r = engine.query(&sql).unwrap();
            results.push((r.value(0, 0).unwrap(), r.value(0, 1).unwrap()));
        }
        prop_assert_eq!(&results[0], &results[1]);
        prop_assert_eq!(&results[1], &results[2]);
        prop_assert_eq!(&results[2], &results[3]);
    }
}
