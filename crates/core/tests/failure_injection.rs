//! Failure injection at the engine level: malformed raw files, truncated
//! binaries, schema mismatches, and missing files must surface as typed
//! errors — never panics — and must not poison the engine for subsequent
//! queries.

use raw_columnar::{DataType, Schema, Value};
use raw_engine::{AccessMode, EngineConfig, RawEngine, ShredStrategy, TableDef, TableSource};
use raw_formats::datagen;

fn engine(config: EngineConfig) -> RawEngine {
    RawEngine::new(config)
}

fn register_csv(e: &mut RawEngine, name: &str, cols: usize, bytes: Vec<u8>) {
    let path = format!("/virtual/{name}.csv");
    e.files().insert(&path, bytes);
    e.register_table(TableDef {
        name: name.into(),
        schema: Schema::uniform(cols, DataType::Int64),
        source: TableSource::Csv { path: path.into() },
    });
}

#[test]
fn malformed_csv_field_errors_in_every_mode() {
    let bytes = b"1,2,3\n4,notanumber,6\n7,8,9\n".to_vec();
    for mode in [AccessMode::Dbms, AccessMode::ExternalTables, AccessMode::InSitu, AccessMode::Jit]
    {
        let mut e = engine(EngineConfig { mode, ..EngineConfig::default() });
        register_csv(&mut e, "t", 3, bytes.clone());
        let err = e.query("SELECT MAX(col2) FROM t WHERE col1 < 100").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("int64") || msg.to_lowercase().contains("parse"), "{mode:?}: {msg}");
    }
}

#[test]
fn malformed_row_only_hurts_queries_that_touch_it() {
    // The bad value sits in column 3; queries over columns 1-2 must work.
    let bytes = b"1,2,x\n4,5,y\n".to_vec();
    let mut e = engine(EngineConfig::default());
    register_csv(&mut e, "t", 3, bytes);
    let r = e.query("SELECT MAX(col2) FROM t WHERE col1 < 100").unwrap();
    assert_eq!(r.scalar().unwrap(), Value::Int64(5));
    assert!(e.query("SELECT MAX(col3) FROM t").is_err());
    // And the failed query must not poison the engine.
    let r = e.query("SELECT MAX(col1) FROM t").unwrap();
    assert_eq!(r.scalar().unwrap(), Value::Int64(4));
}

#[test]
fn ragged_csv_rows_error() {
    let bytes = b"1,2,3\n4,5\n6,7,8\n".to_vec();
    let mut e = engine(EngineConfig::default());
    register_csv(&mut e, "t", 3, bytes);
    assert!(e.query("SELECT MAX(col3) FROM t").is_err());
}

#[test]
fn empty_csv_file_aggregates_to_null() {
    let mut e = engine(EngineConfig::default());
    register_csv(&mut e, "t", 3, Vec::new());
    let r = e.query("SELECT MAX(col1) FROM t").unwrap();
    assert_eq!(r.scalar().unwrap(), Value::Utf8("NULL".into()));
}

#[test]
fn missing_file_is_an_error_not_a_panic() {
    let e = engine(EngineConfig::default());
    e.register_table(TableDef {
        name: "ghost".into(),
        schema: Schema::uniform(2, DataType::Int64),
        source: TableSource::Csv { path: "/does/not/exist.csv".into() },
    });
    let err = e.query("SELECT MAX(col1) FROM ghost").unwrap_err();
    assert!(!err.to_string().is_empty());
}

#[test]
fn truncated_fbin_errors_in_every_mode() {
    let t = datagen::int_table(5, 50, 4);
    let mut bytes = raw_formats::fbin::to_bytes(&t).unwrap();
    bytes.truncate(bytes.len() - 7);
    for mode in [AccessMode::Dbms, AccessMode::InSitu, AccessMode::Jit] {
        let e = engine(EngineConfig { mode, ..EngineConfig::default() });
        e.files().insert("/virtual/t.fbin", bytes.clone());
        e.register_table(TableDef {
            name: "t".into(),
            schema: Schema::uniform(4, DataType::Int64),
            source: TableSource::Fbin { path: "/virtual/t.fbin".into() },
        });
        assert!(e.query("SELECT MAX(col1) FROM t").is_err(), "{mode:?}");
    }
}

#[test]
fn truncated_ibin_index_section_errors() {
    let t = datagen::int_table(5, 50, 4);
    let mut bytes = raw_formats::ibin::to_bytes_with(&t, 8, None).unwrap();
    bytes.truncate(bytes.len() - 1); // clip the last zone entry
    for mode in [AccessMode::Dbms, AccessMode::InSitu, AccessMode::Jit] {
        let e = engine(EngineConfig { mode, ..EngineConfig::default() });
        e.files().insert("/virtual/t.ibin", bytes.clone());
        e.register_table(TableDef {
            name: "t".into(),
            schema: Schema::uniform(4, DataType::Int64),
            source: TableSource::Ibin { path: "/virtual/t.ibin".into() },
        });
        assert!(e.query("SELECT MAX(col1) FROM t").is_err(), "{mode:?}");
    }
}

#[test]
fn fbin_schema_type_mismatch_rejected() {
    let t = datagen::int_table(5, 10, 3); // three Int64 columns on disk
    let bytes = raw_formats::fbin::to_bytes(&t).unwrap();
    let e = engine(EngineConfig::default());
    e.files().insert("/virtual/t.fbin", bytes);
    e.register_table(TableDef {
        name: "t".into(),
        schema: Schema::uniform(3, DataType::Float64), // lie about the types
        source: TableSource::Fbin { path: "/virtual/t.fbin".into() },
    });
    assert!(e.query("SELECT MAX(col1) FROM t").is_err());
}

#[test]
fn wrong_magic_rejected_for_binary_formats() {
    let e = engine(EngineConfig::default());
    e.files().insert("/virtual/a.fbin", b"NOTMAGIC________".to_vec());
    e.files().insert("/virtual/b.ibin", b"NOTMAGIC________".to_vec());
    e.register_table(TableDef {
        name: "a".into(),
        schema: Schema::uniform(1, DataType::Int64),
        source: TableSource::Fbin { path: "/virtual/a.fbin".into() },
    });
    e.register_table(TableDef {
        name: "b".into(),
        schema: Schema::uniform(1, DataType::Int64),
        source: TableSource::Ibin { path: "/virtual/b.ibin".into() },
    });
    assert!(e.query("SELECT MAX(col1) FROM a").is_err());
    assert!(e.query("SELECT MAX(col1) FROM b").is_err());
}

#[test]
fn engine_survives_a_burst_of_failures_then_answers() {
    let mut e = engine(EngineConfig::default());
    register_csv(&mut e, "good", 3, b"1,2,3\n4,5,6\n".to_vec());
    register_csv(&mut e, "bad", 3, b"1,oops,3\n".to_vec());
    for _ in 0..5 {
        assert!(e.query("SELECT MAX(col2) FROM bad").is_err());
        assert!(e.query("SELECT MAX(colZ) FROM good").is_err());
        assert!(e.query("SELECT nonsense").is_err());
    }
    let r = e.query("SELECT MAX(col2) FROM good WHERE col1 < 100").unwrap();
    assert_eq!(r.scalar().unwrap(), Value::Int64(5));
}

#[test]
fn adaptive_mode_handles_malformed_files_gracefully() {
    // Adaptive planning must not mask raw-data errors or invent answers.
    let mut e = engine(EngineConfig { shreds: ShredStrategy::Adaptive, ..EngineConfig::default() });
    register_csv(&mut e, "t", 3, b"1,2,3\n4,bad,6\n".to_vec());
    assert!(e.query("SELECT MAX(col2) FROM t WHERE col1 < 10").is_err());
    let r = e.query("SELECT MAX(col1) FROM t WHERE col1 < 10").unwrap();
    assert_eq!(r.scalar().unwrap(), Value::Int64(4));
}
