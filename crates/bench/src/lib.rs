//! # raw-bench
//!
//! The harness that regenerates **every table and figure** of the paper's
//! evaluation (§4.2, §5.2–§5.3, §6). Two entry points:
//!
//! - the [`experiments`] module: one function per table/figure, each
//!   returning a formatted [`report::ExpTable`] with the same rows/series
//!   the paper plots;
//! - `cargo run --release -p raw-bench --bin reproduce` runs them all and
//!   writes the results referenced by `EXPERIMENTS.md`;
//! - `cargo bench` runs criterion versions of the same measurements at a
//!   reduced grid for regression tracking.
//!
//! Scale is configurable with environment variables (see [`Scale`]): the
//! defaults run the full suite in minutes on a laptop. Absolute numbers are
//! **not** expected to match the paper (28 GB files on 2014 Xeons vs.
//! hundred-MB files here); the *shapes* — who wins, by what factor, where
//! curves cross — are.

pub mod ablations;
pub mod baseline;
pub mod datasets;
pub mod experiments;
pub mod report;

use std::time::{Duration, Instant};

/// Dataset sizes, overridable via environment.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Rows of the 30-column integer table (paper: 100 M).
    pub narrow_rows: usize,
    /// Rows of the 120-column mixed table (paper: 30 M).
    pub wide_rows: usize,
    /// Rows of each join-side table (paper: 100 M).
    pub join_rows: usize,
    /// Events in the Higgs dataset (paper: 900 GB across 127 files).
    pub higgs_events: usize,
    /// Repetitions for warm measurements (median taken).
    pub repeats: usize,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            narrow_rows: 200_000,
            wide_rows: 40_000,
            join_rows: 60_000,
            higgs_events: 120_000,
            repeats: 3,
        }
    }
}

impl Scale {
    /// Read the scale from `RAW_BENCH_*` environment variables, falling back
    /// to defaults. `RAW_BENCH_SCALE=tiny` selects a fast CI-friendly grid.
    pub fn from_env() -> Scale {
        let mut s = Scale::default();
        if std::env::var("RAW_BENCH_SCALE").as_deref() == Ok("tiny") {
            s = Scale {
                narrow_rows: 20_000,
                wide_rows: 5_000,
                join_rows: 8_000,
                higgs_events: 10_000,
                repeats: 1,
            };
        }
        let get = |name: &str| std::env::var(name).ok().and_then(|v| v.parse::<usize>().ok());
        if let Some(v) = get("RAW_BENCH_NARROW_ROWS") {
            s.narrow_rows = v;
        }
        if let Some(v) = get("RAW_BENCH_WIDE_ROWS") {
            s.wide_rows = v;
        }
        if let Some(v) = get("RAW_BENCH_JOIN_ROWS") {
            s.join_rows = v;
        }
        if let Some(v) = get("RAW_BENCH_HIGGS_EVENTS") {
            s.higgs_events = v;
        }
        if let Some(v) = get("RAW_BENCH_REPEATS") {
            s.repeats = v.max(1);
        }
        s
    }
}

/// The selectivity sweep used by the figure reproductions.
pub const SELECTIVITIES: &[f64] = &[0.01, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0];

/// Wall-clock one invocation.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Median wall time of `n` invocations (the value of the last run is
/// returned so callers can validate it).
pub fn median_time<T>(n: usize, mut f: impl FnMut() -> T) -> (T, Duration) {
    assert!(n >= 1);
    let mut times = Vec::with_capacity(n);
    let mut last = None;
    for _ in 0..n {
        let (out, d) = time_once(&mut f);
        times.push(d);
        last = Some(out);
    }
    times.sort_unstable();
    (last.expect("n >= 1"), times[times.len() / 2])
}

/// Format a duration in adaptive units for tables.
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_stable() {
        let (v, d) = median_time(3, || 7);
        assert_eq!(v, 7);
        assert!(d >= Duration::ZERO);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.000 ms");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.0 µs");
    }

    #[test]
    fn scale_env_tiny() {
        // Not setting env here (tests run in parallel); just check defaults.
        let s = Scale::default();
        assert!(s.narrow_rows > s.wide_rows);
    }
}
