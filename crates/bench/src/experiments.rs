//! One function per table/figure of the paper's evaluation.
//!
//! Every experiment follows the paper's protocol: the workload is the
//! two-query sequence Q1 = `SELECT MAX(col1) FROM t WHERE col1 < X` then
//! Q2 = `SELECT MAX(col11) FROM t WHERE col1 < X`; selectivity is swept by
//! changing X; caches built by Q1 (positional maps, column shreds, loaded
//! tables) are available to Q2, exactly as in §4.2: "Intermediate query
//! results are cached and available for re-use by subsequent queries."

use std::time::Instant;

use raw_columnar::profile::Phase;
use raw_engine::{AccessMode, EngineConfig, JoinPlacement, QueryResult, RawEngine, ShredStrategy};
use raw_formats::datagen::literal_for_selectivity;
use raw_formats::file_buffer::FileBufferPool;
use raw_higgs::{HandwrittenAnalysis, HiggsCuts, RawHiggsAnalysis};
use raw_posmap::TrackingPolicy;

use crate::datasets;
use crate::report::ExpTable;

/// A factory producing a fresh engine per measurement repetition.
type EngineMaker = Box<dyn Fn() -> RawEngine>;
use crate::{fmt_duration, time_once, Scale, SELECTIVITIES};

/// Q1 of the microbenchmarks.
pub fn q1(table: &str, x: i64) -> String {
    format!("SELECT MAX(col1) FROM {table} WHERE col1 < {x}")
}

/// Q2 of the microbenchmarks.
pub fn q2(table: &str, x: i64) -> String {
    format!("SELECT MAX(col11) FROM {table} WHERE col1 < {x}")
}

/// The grouped-aggregate workload of the fig13 scaling study (shared with
/// the criterion bench so the regression tracker measures the same query
/// the experiment table reports).
pub fn grouped_q(table: &str, x: i64) -> String {
    format!("SELECT col2, COUNT(col1), SUM(col3) FROM {table} WHERE col1 < {x} GROUP BY col2")
}

/// Engine config for one of the paper's systems. The paper's measurements
/// are single-threaded, so `parallelism` is pinned to 1 here; `fig13`
/// varies it explicitly to measure morsel-parallel scaling.
pub fn system_config(mode: AccessMode, shreds: ShredStrategy, stride: usize) -> EngineConfig {
    EngineConfig {
        mode,
        shreds,
        posmap_policy: TrackingPolicy::EveryK { stride },
        parallelism: 1,
        ..EngineConfig::default()
    }
}

fn run(engine: &mut RawEngine, sql: &str) -> QueryResult {
    engine.query(sql).unwrap_or_else(|e| panic!("query failed: {e}\n  {sql}"))
}

/// Median wall time of the measured query over `repeats` *fresh* engines
/// (each repeat replays the warm-up queries first, so caches are in the
/// same state the paper's protocol prescribes and repeats don't contaminate
/// each other through the shred pool).
fn measure_point(
    repeats: usize,
    make_engine: &dyn Fn() -> RawEngine,
    warm_queries: &[String],
    measured: &str,
) -> std::time::Duration {
    let mut times = Vec::with_capacity(repeats.max(1));
    for _ in 0..repeats.max(1) {
        let mut engine = make_engine();
        for w in warm_queries {
            run(&mut engine, w);
        }
        let (_, d) = time_once(|| run(&mut engine, measured));
        times.push(d);
    }
    times.sort_unstable();
    times[times.len() / 2]
}

/// The §4.2 access-path systems compared in Figure 1.
fn fig1_systems() -> Vec<(&'static str, EngineConfig)> {
    vec![
        ("DBMS", system_config(AccessMode::Dbms, ShredStrategy::FullColumns, 10)),
        (
            "External Tables",
            system_config(AccessMode::ExternalTables, ShredStrategy::FullColumns, 10),
        ),
        ("In Situ", system_config(AccessMode::InSitu, ShredStrategy::FullColumns, 10)),
        ("JIT", system_config(AccessMode::Jit, ShredStrategy::FullColumns, 10)),
        ("In Situ Col.7", system_config(AccessMode::InSitu, ShredStrategy::FullColumns, 7)),
        ("JIT Col.7", system_config(AccessMode::Jit, ShredStrategy::FullColumns, 7)),
    ]
}

/// Figure 1a: CSV, cold run, Q1 per system.
pub fn fig1a(scale: &Scale) -> ExpTable {
    let x = literal_for_selectivity(0.4);
    let mut table = ExpTable::new(
        "Figure 1a — CSV cold run: SELECT MAX(col1) WHERE col1 < X",
        vec!["system".into(), "Q1 time".into(), "io bytes".into()],
    );
    table.note(format!("dataset: {} rows x 30 int columns (CSV), X at 40%", scale.narrow_rows));
    table.note("expect: in-situ variants <= DBMS/External (fewer conversions); I/O dominates");
    for (name, config) in fig1_systems() {
        let mut engine = datasets::engine_narrow_csv(scale, config);
        engine.drop_file_caches();
        let (r, d) = time_once(|| run(&mut engine, &q1("file1", x)));
        table.row(vec![name.into(), fmt_duration(d), r.stats.io_bytes.to_string()]);
    }
    table
}

/// Figure 1b: CSV, warm run, Q2 per system across selectivities.
pub fn fig1b(scale: &Scale) -> ExpTable {
    let mut table = ExpTable::new(
        "Figure 1b — CSV warm run: SELECT MAX(col11) WHERE col1 < X",
        std::iter::once("system".to_owned())
            .chain(SELECTIVITIES.iter().map(|s| format!("{:.0}%", s * 100.0)))
            .collect(),
    );
    table.note(format!("dataset: {} rows x 30 int columns (CSV)", scale.narrow_rows));
    table.note("Q1 runs first (builds positional map, caches col1); Q2 is measured");
    table.note("expect: DBMS fastest; JIT ~2x faster than In Situ; Col.7 variants slower");
    let systems: Vec<(&str, EngineConfig)> =
        fig1_systems().into_iter().filter(|(n, _)| *n != "External Tables").collect();
    for (name, config) in systems {
        let mut cells = vec![name.to_owned()];
        for &sel in SELECTIVITIES {
            let x = literal_for_selectivity(sel);
            let s = *scale;
            let cfg = config.clone();
            let d = measure_point(
                scale.repeats,
                &move || datasets::engine_narrow_csv(&s, cfg.clone()),
                &[q1("file1", x)],
                &q2("file1", x),
            );
            cells.push(fmt_duration(d));
        }
        table.row(cells);
    }
    table
}

/// Figure 2: binary file, warm run, Q2 across selectivities.
pub fn fig2(scale: &Scale) -> ExpTable {
    let mut table = ExpTable::new(
        "Figure 2 — binary file: SELECT MAX(col11) WHERE col1 < X",
        std::iter::once("system".to_owned())
            .chain(SELECTIVITIES.iter().map(|s| format!("{:.0}%", s * 100.0)))
            .collect(),
    );
    table.note(format!("dataset: {} rows x 30 int columns (fbin)", scale.narrow_rows));
    table.note("expect: same ordering as CSV with smaller gaps (no conversions)");
    for (name, mode) in
        [("In Situ", AccessMode::InSitu), ("JIT", AccessMode::Jit), ("DBMS", AccessMode::Dbms)]
    {
        let mut cells = vec![name.to_owned()];
        for &sel in SELECTIVITIES {
            let x = literal_for_selectivity(sel);
            let s = *scale;
            let d = measure_point(
                scale.repeats,
                &move || {
                    datasets::engine_narrow_fbin(
                        &s,
                        system_config(mode, ShredStrategy::FullColumns, 10),
                    )
                },
                &[q1("file1", x)],
                &q2("file1", x),
            );
            cells.push(fmt_duration(d));
        }
        table.row(cells);
    }
    table
}

/// Figure 3: cost breakdown of the warm CSV Q2 at 40% selectivity.
pub fn fig3(scale: &Scale) -> ExpTable {
    let x = literal_for_selectivity(0.4);
    let mut table = ExpTable::new(
        "Figure 3 — breakdown of query execution costs (CSV Q1, warm file, @40%)",
        vec![
            "system".into(),
            "main loop".into(),
            "parsing".into(),
            "conversion".into(),
            "build columns".into(),
            "scan total".into(),
            "query total".into(),
        ],
    );
    table.note("expect: JIT shrinks main loop / parsing / conversion;");
    table.note("        building columns remains significant for both");
    for (name, mode) in [("In Situ", AccessMode::InSitu), ("JIT", AccessMode::Jit)] {
        let mut engine = datasets::engine_narrow_csv(
            scale,
            EngineConfig {
                // Full columns: the §4 comparison predates shreds. No data
                // caches: the paper profiles Q1 "on a warm system" — warm
                // file caches, but a sequential tokenizing scan (no
                // positional map exists before the first query).
                cache_shreds: false,
                ..system_config(mode, ShredStrategy::FullColumns, 10)
            },
        );
        // Warm the file buffer without running any query.
        engine.files().read(&datasets::narrow_csv(scale)).expect("prefetch file");
        let (r, d) = time_once(|| run(&mut engine, &q1("file1", x)));
        let p = r.stats.scan;
        table.row(vec![
            name.into(),
            fmt_duration(p.phase(Phase::MainLoop)),
            fmt_duration(p.phase(Phase::Parsing)),
            fmt_duration(p.phase(Phase::Conversion)),
            fmt_duration(p.phase(Phase::BuildColumns)),
            fmt_duration(p.total),
            fmt_duration(d),
        ]);
    }
    table
}

/// Shared driver for the full-vs-shreds sweeps (Figures 5–8).
fn shreds_sweep(
    repeats: usize,
    title: &str,
    notes: &[String],
    engines: &[(&str, EngineMaker)],
    warm_query: &dyn Fn(i64) -> String,
    measured_query: &dyn Fn(i64) -> String,
) -> ExpTable {
    let mut table = ExpTable::new(
        title,
        std::iter::once("system".to_owned())
            .chain(SELECTIVITIES.iter().map(|s| format!("{:.0}%", s * 100.0)))
            .collect(),
    );
    for n in notes {
        table.note(n.clone());
    }
    for (name, make) in engines {
        let mut cells = vec![(*name).to_owned()];
        for &sel in SELECTIVITIES {
            let x = literal_for_selectivity(sel);
            let d = measure_point(repeats, make, &[warm_query(x)], &measured_query(x));
            cells.push(fmt_duration(d));
        }
        table.row(cells);
    }
    table
}

/// Figure 5: CSV full vs shredded columns (plus Col.7 variants and DBMS).
pub fn fig5(scale: &Scale) -> ExpTable {
    let s = *scale;
    let engines: Vec<(&str, EngineMaker)> = vec![
        ("Full", engine_maker_csv(s, ShredStrategy::FullColumns, 10)),
        ("Shreds", engine_maker_csv(s, ShredStrategy::ColumnShreds, 10)),
        ("Full - Col.7", engine_maker_csv(s, ShredStrategy::FullColumns, 7)),
        ("Shreds - Col.7", engine_maker_csv(s, ShredStrategy::ColumnShreds, 7)),
        (
            "DBMS",
            Box::new(move || {
                datasets::engine_narrow_csv(
                    &s,
                    system_config(AccessMode::Dbms, ShredStrategy::FullColumns, 10),
                )
            }),
        ),
    ];
    shreds_sweep(
        s.repeats,
        "Figure 5 — full vs shredded columns (CSV): SELECT MAX(col11) WHERE col1 < X",
        &[
            format!("dataset: {} rows x 30 int columns (CSV); Q1 warms caches", s.narrow_rows),
            "expect: shreds <= full everywhere, ~large gap at 1%, converging at 100%".into(),
        ],
        &engines,
        &|x| q1("file1", x),
        &|x| q2("file1", x),
    )
}

fn engine_maker_csv(scale: Scale, shreds: ShredStrategy, stride: usize) -> EngineMaker {
    // Caching stays on: the paper's protocol caches Q1's results, so Q2's
    // predicate column comes from the shred pool and the measured cost is
    // the per-strategy handling of the aggregated column.
    Box::new(move || {
        datasets::engine_narrow_csv(&scale, system_config(AccessMode::Jit, shreds, stride))
    })
}

/// Figure 6: binary full vs shredded columns.
pub fn fig6(scale: &Scale) -> ExpTable {
    let s = *scale;
    let make = |shreds: ShredStrategy| -> EngineMaker {
        Box::new(move || {
            datasets::engine_narrow_fbin(&s, system_config(AccessMode::Jit, shreds, 10))
        })
    };
    let engines: Vec<(&str, EngineMaker)> = vec![
        ("Full", make(ShredStrategy::FullColumns)),
        ("Shreds", make(ShredStrategy::ColumnShreds)),
    ];
    shreds_sweep(
        s.repeats,
        "Figure 6 — full vs shredded columns (binary): SELECT MAX(col11) WHERE col1 < X",
        &[
            format!("dataset: {} rows x 30 int columns (fbin)", s.narrow_rows),
            "expect: shreds <= full, converging at 100% (no conversion cost here)".into(),
        ],
        &engines,
        &|x| q1("file1", x),
        &|x| q2("file1", x),
    )
}

/// Figures 7/8 shared driver: the 120-column floating-point tables.
fn wide_sweep(binary: bool, scale: &Scale) -> ExpTable {
    let s = *scale;
    let title = if binary {
        "Figure 8 — 120 columns, floating point (binary): SELECT MAX(col11) WHERE col1 < X"
    } else {
        "Figure 7 — 120 columns, floating point (CSV): SELECT MAX(col11) WHERE col1 < X"
    };
    let make = move |mode: AccessMode, shreds: ShredStrategy| -> EngineMaker {
        Box::new(move || datasets::engine_wide(&s, system_config(mode, shreds, 10), binary))
    };
    let engines: Vec<(&str, EngineMaker)> = vec![
        ("DBMS", make(AccessMode::Dbms, ShredStrategy::FullColumns)),
        ("Full Columns", make(AccessMode::Jit, ShredStrategy::FullColumns)),
        ("Column Shreds", make(AccessMode::Jit, ShredStrategy::ColumnShreds)),
    ];
    shreds_sweep(
        s.repeats,
        title,
        &[
            format!("dataset: {} rows x 120 columns (col1 int, col11 float)", s.wide_rows),
            if binary {
                "expect: small absolute differences; shreds competitive with DBMS widely".into()
            } else {
                "expect: DBMS clearly faster (float conversion is expensive); \
                 shreds competitive only at low selectivity"
                    .into()
            },
        ],
        &engines,
        &|x| q1("wide", x),
        &|x| q2("wide", x),
    )
}

/// Figure 7: wide CSV with floating-point aggregation column.
pub fn fig7(scale: &Scale) -> ExpTable {
    wide_sweep(false, scale)
}

/// Figure 8: wide binary with floating-point aggregation column.
pub fn fig8(scale: &Scale) -> ExpTable {
    wide_sweep(true, scale)
}

/// Figure 9: speculative multi-column shreds with two predicates.
pub fn fig9(scale: &Scale) -> ExpTable {
    let s = *scale;
    let make = move |shreds: ShredStrategy| -> EngineMaker {
        Box::new(move || {
            datasets::engine_narrow_csv(&s, system_config(AccessMode::Jit, shreds, 10))
        })
    };
    let engines: Vec<(&str, EngineMaker)> = vec![
        ("Full", make(ShredStrategy::FullColumns)),
        ("Shreds", make(ShredStrategy::ColumnShreds)),
        ("Multi-column Shreds", make(ShredStrategy::MultiColumnShreds)),
    ];
    shreds_sweep(
        s.repeats,
        "Figure 9 — full vs shreds vs multi-column shreds: \
         SELECT MAX(col6) WHERE col1 < X AND col5 < X",
        &[
            format!("dataset: {} rows x 30 int columns (CSV); Q1 warms caches", s.narrow_rows),
            "expect: shreds best at low selectivity; multi-column best of both beyond ~40%".into(),
        ],
        &engines,
        &|x| q1("file1", x),
        &|x| format!("SELECT MAX(col6) FROM file1 WHERE col1 < {x} AND col5 < {x}"),
    )
}

/// Figures 11/12 shared driver: join with the projected column on the
/// pipelined (file1) or pipeline-breaking (file2) side.
fn join_sweep(breaking: bool, scale: &Scale) -> ExpTable {
    let s = *scale;
    let title = if breaking {
        "Figure 12 — join, projected column on the build (pipeline-breaking) side"
    } else {
        "Figure 11 — join, projected column on the probe (pipelined) side"
    };
    let projected_table = if breaking { "file2" } else { "file1" };
    let query = move |x: i64| {
        format!(
            "SELECT MAX({projected_table}.col11) FROM file1 JOIN file2 \
             ON file1.col1 = file2.col1 WHERE file2.col2 < {x}"
        )
    };

    let mut placements: Vec<(&str, AccessMode, JoinPlacement)> = vec![
        ("Early", AccessMode::Jit, JoinPlacement::Early),
        ("Late", AccessMode::Jit, JoinPlacement::Late),
    ];
    if breaking {
        placements.insert(1, ("Intermediate", AccessMode::Jit, JoinPlacement::Intermediate));
    }
    placements.push(("DBMS", AccessMode::Dbms, JoinPlacement::Early));

    let mut table = ExpTable::new(
        title,
        std::iter::once("placement".to_owned())
            .chain(SELECTIVITIES.iter().map(|s| format!("{:.0}%", s * 100.0)))
            .collect(),
    );
    table.note(format!(
        "dataset: file1 = {} rows x 30 cols (CSV); file2 = shuffled twin",
        s.join_rows
    ));
    table.note("query: SELECT MAX(side.col11) FROM file1 JOIN file2 ON col1 WHERE file2.col2 < X");
    table.note(if breaking {
        "expect: Late degrades at high selectivity (random access); Early wins there"
    } else {
        "expect: Late <= Early everywhere, converging at 100%"
    });

    for (name, mode, placement) in placements {
        let mut cells = vec![name.to_owned()];
        for &sel in SELECTIVITIES {
            let x = literal_for_selectivity(sel);
            // Pre-load the filter/key columns as the paper does ("column 1
            // of file1 and columns 1 and 2 of file2 have been loaded by
            // previous queries"), building positional maps along the way.
            let d = measure_point(
                s.repeats,
                &move || {
                    datasets::engine_join_pair(
                        &s,
                        EngineConfig {
                            mode,
                            shreds: ShredStrategy::ColumnShreds,
                            join_placement: placement,
                            ..EngineConfig::default()
                        },
                    )
                },
                &[
                    "SELECT MAX(col1) FROM file1".to_owned(),
                    "SELECT MAX(col1), MAX(col2) FROM file2".to_owned(),
                ],
                &query(x),
            );
            cells.push(fmt_duration(d));
        }
        table.row(cells);
    }
    table
}

/// Figure 11: pipelined-side projection.
pub fn fig11(scale: &Scale) -> ExpTable {
    join_sweep(false, scale)
}

/// Figure 12: pipeline-breaking-side projection.
pub fn fig12(scale: &Scale) -> ExpTable {
    join_sweep(true, scale)
}

/// Figure 13 (beyond the paper): morsel-parallel scaling across worker
/// counts — the §8 future-work multi-core dimension, served by the
/// `raw-exec` subsystem. Four workloads, one per segmentation family:
/// the Figure-1 cold CSV aggregate scan (record-aligned morsels), a
/// grouped-aggregate workload (same morsels, grouped partial states), a
/// sorted-ibin pruned scan (page-aligned morsels, per-morsel zone-index
/// pruning), and a rootsim muon-collection aggregate (item-sized
/// event-range morsels).
pub fn fig13(scale: &Scale) -> ExpTable {
    let x = literal_for_selectivity(0.4);
    let mut table = ExpTable::new(
        "Figure 13 — morsel-parallel scaling: cold runs by worker count",
        vec!["query".into(), "threads".into(), "time".into(), "speedup vs 1".into(), "plan".into()],
    );
    table.note(format!(
        "dataset: {} rows x 30 int columns (CSV/ibin twins), X at 40%; JIT full columns",
        scale.narrow_rows
    ));
    table.note("grouped agg groups a bounded-cardinality key (1024 groups)");
    table.note("ibin is sorted by col1 (B-tree regime): the index prunes inside each morsel");
    table.note(format!(
        "collection agg explodes the muon items of {} rootsim events",
        scale.higgs_events
    ));
    table.note("expect: near-linear scaling up to the physical core count");
    type Maker = fn(&Scale, EngineConfig) -> RawEngine;
    let workloads: [(&str, String, Maker); 4] = [
        ("scan agg", q1("file1", x), datasets::engine_narrow_csv),
        ("grouped agg", grouped_q("file1", x), datasets::engine_grouped_csv),
        ("ibin pruned agg", q1("file1", x), datasets::engine_narrow_ibin),
        (
            "collection agg",
            "SELECT MAX(pt), COUNT(pt) FROM muons WHERE pt > 20.0".to_owned(),
            datasets::engine_muon_collection,
        ),
    ];
    for (label, sql, make_engine) in &workloads {
        let mut baseline: Option<std::time::Duration> = None;
        for threads in [1usize, 2, 4, 8] {
            let config = EngineConfig {
                parallelism: threads,
                ..system_config(AccessMode::Jit, ShredStrategy::FullColumns, 10)
            };
            let mut times = Vec::with_capacity(scale.repeats.max(1));
            let mut plan_line = "serial".to_owned();
            for _ in 0..scale.repeats.max(1) {
                let mut engine = make_engine(scale, config.clone());
                engine.drop_file_caches();
                let (r, d) = time_once(|| run(&mut engine, sql));
                if let Some(line) = r.stats.explain.iter().find(|l| l.contains("parallel:")) {
                    plan_line = line.clone();
                }
                times.push(d);
            }
            times.sort_unstable();
            let d = times[times.len() / 2];
            let speedup = match baseline {
                None => {
                    baseline = Some(d);
                    "1.00x".to_owned()
                }
                Some(base) => format!("{:.2}x", base.as_secs_f64() / d.as_secs_f64()),
            };
            table.row(vec![
                (*label).to_owned(),
                threads.to_string(),
                fmt_duration(d),
                speedup,
                plan_line,
            ]);
        }
    }
    table
}

/// Table 2: first-query times over the 120-column tables.
/// Figure 14 (beyond the paper) — cold-scan overlap: chunk-streamed cold
/// reads (a dedicated reader thread + availability-gated morsel dispatch)
/// vs the blocking cold read that slurps the whole file before any worker
/// starts. Streaming changes *when* bytes meet workers, never what is
/// computed — results and I/O counters are asserted identical by the
/// `cold_equivalence` suite; this experiment measures the wall-time side.
pub fn fig14(scale: &Scale) -> ExpTable {
    let x = literal_for_selectivity(0.4);
    let mut table = ExpTable::new(
        "Figure 14 — cold-scan overlap: chunk-streamed vs blocking cold reads",
        vec![
            "query".into(),
            "threads".into(),
            "read path".into(),
            "time".into(),
            "vs blocking".into(),
        ],
    );
    table.note(format!(
        "dataset: {} rows x 30 int columns; X at 40%; JIT full columns, cold file caches",
        scale.narrow_rows
    ));
    table.note("blocking = read_chunk_bytes 0 (whole file before the first worker);");
    table.note("streamed chunk sizes via RAW_READ_CHUNK_BYTES; morsels dispatch on availability");
    table
        .note("expect: streamed cold runs approach max(read time, scan time) instead of their sum");
    type Maker = fn(&Scale, EngineConfig) -> RawEngine;
    let workloads: [(&str, String, Maker); 2] = [
        ("csv scan agg", q1("file1", x), datasets::engine_narrow_csv),
        ("fbin scan agg", q1("file1", x), datasets::engine_narrow_fbin),
    ];
    let read_paths: [(&str, usize); 4] = [
        ("blocking", 0),
        ("stream 4 MiB", 4 << 20),
        ("stream 256 KiB", 256 << 10),
        ("stream 64 KiB", 64 << 10),
    ];
    for (label, sql, make_engine) in &workloads {
        for threads in [2usize, 8] {
            let mut baseline: Option<std::time::Duration> = None;
            for (path_label, chunk) in &read_paths {
                let config = EngineConfig {
                    parallelism: threads,
                    read_chunk_bytes: *chunk,
                    ..system_config(AccessMode::Jit, ShredStrategy::FullColumns, 10)
                };
                let mut times = Vec::with_capacity(scale.repeats.max(1));
                for _ in 0..scale.repeats.max(1) {
                    let mut engine = make_engine(scale, config.clone());
                    engine.drop_file_caches();
                    let (_r, d) = time_once(|| run(&mut engine, sql));
                    times.push(d);
                }
                times.sort_unstable();
                let d = times[times.len() / 2];
                let vs = match baseline {
                    None => {
                        baseline = Some(d);
                        "1.00x".to_owned()
                    }
                    Some(base) => format!("{:.2}x", base.as_secs_f64() / d.as_secs_f64()),
                };
                table.row(vec![
                    (*label).to_owned(),
                    threads.to_string(),
                    (*path_label).to_owned(),
                    fmt_duration(d),
                    vs,
                ]);
            }
        }
    }
    table
}

pub fn table2(scale: &Scale) -> ExpTable {
    let x = literal_for_selectivity(0.4);
    let mut table = ExpTable::new(
        "Table 2 — 1st query over 120-column tables: SELECT MAX(col1) WHERE col1 < X",
        vec!["system".into(), "format".into(), "Q1 time".into()],
    );
    table.note(format!("dataset: {} rows x 120 columns; cold file caches", scale.wide_rows));
    table.note("expect: DBMS slowest (loads all 120 columns); Full == Shreds for Q1");
    for binary in [false, true] {
        let format = if binary { "Binary" } else { "CSV" };
        for (name, mode, shreds) in [
            ("DBMS", AccessMode::Dbms, ShredStrategy::FullColumns),
            ("Full Columns", AccessMode::Jit, ShredStrategy::FullColumns),
            ("Column Shreds", AccessMode::Jit, ShredStrategy::ColumnShreds),
        ] {
            let mut engine = datasets::engine_wide(scale, system_config(mode, shreds, 10), binary);
            engine.drop_file_caches();
            let (_, d) = time_once(|| run(&mut engine, &q1("wide", x)));
            table.row(vec![name.into(), format.into(), fmt_duration(d)]);
        }
    }
    table
}

/// Table 3: the Higgs analysis, hand-written vs RAW, cold and warm.
pub fn table3(scale: &Scale) -> ExpTable {
    let dataset = datasets::higgs(scale);
    let cuts = HiggsCuts::default();

    let files = FileBufferPool::new();
    let mut hw =
        HandwrittenAnalysis::open(&files, &dataset.root_path, &dataset.goodruns_path, cuts)
            .expect("open handwritten analysis");
    let t = Instant::now();
    let hw_cold_result = hw.run();
    let hw_cold = t.elapsed();
    let t = Instant::now();
    let hw_warm_result = hw.run();
    let hw_warm = t.elapsed();
    assert_eq!(hw_cold_result, hw_warm_result);

    let mut raw = RawHiggsAnalysis::open(&dataset, EngineConfig::default(), cuts);
    let t = Instant::now();
    let raw_cold_result = raw.run().expect("RAW cold run");
    let raw_cold = t.elapsed();
    let t = Instant::now();
    let raw_warm_result = raw.run().expect("RAW warm run");
    let raw_warm = t.elapsed();
    assert_eq!(raw_cold_result, raw_warm_result);
    assert_eq!(raw_cold_result, hw_cold_result, "implementations disagree");

    let mut table = ExpTable::new(
        "Table 3 — Higgs analysis: hand-written vs RAW",
        vec!["system".into(), "1st query (cold)".into(), "2nd query (warm)".into()],
    );
    table.note(format!(
        "dataset: {} events, {} Higgs candidates found (results verified equal)",
        scale.higgs_events, raw_cold_result.candidates
    ));
    table.note("expect: comparable cold; RAW orders of magnitude faster warm");
    table.row(vec![
        "Hand-written (C++-style)".into(),
        fmt_duration(hw_cold),
        fmt_duration(hw_warm),
    ]);
    table.row(vec!["RAW".into(), fmt_duration(raw_cold), fmt_duration(raw_warm)]);
    table.row(vec![
        "warm speedup".into(),
        String::new(),
        format!("{:.1}x", hw_warm.as_secs_f64() / raw_warm.as_secs_f64().max(1e-9)),
    ]);
    table
}

/// The hardware/environment note standing in for the paper's Table 1.
pub fn table1_environment() -> ExpTable {
    let mut table = ExpTable::new(
        "Table 1 — experimental environment",
        vec!["property".into(), "value".into()],
    );
    table.note("the paper used dual/octo-socket Xeons with 28-45 GB datasets;");
    table.note("this reproduction runs laptop-scale and compares shapes, not seconds");
    table.row(vec!["os".into(), std::env::consts::OS.into()]);
    table.row(vec!["arch".into(), std::env::consts::ARCH.into()]);
    table.row(vec![
        "logical cpus".into(),
        std::thread::available_parallelism().map(|n| n.to_string()).unwrap_or_default(),
    ]);
    table
}

/// Run every experiment (the `reproduce` binary's payload).
pub fn all(scale: &Scale) -> Vec<ExpTable> {
    vec![
        table1_environment(),
        fig1a(scale),
        fig1b(scale),
        fig2(scale),
        fig3(scale),
        table2(scale),
        fig5(scale),
        fig6(scale),
        fig7(scale),
        fig8(scale),
        fig9(scale),
        fig11(scale),
        fig12(scale),
        table3(scale),
    ]
}

/// Total data rows across a set of experiment tables (used by tests).
pub fn total_of(tables: &[ExpTable]) -> usize {
    tables.iter().map(|t| t.rows.len()).sum()
}
