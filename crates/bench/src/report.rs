//! Plain-text result tables, in the spirit of the paper's figures.

use std::fmt::Write as _;

/// One reproduced table/figure: a title, column headers, and rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpTable {
    /// E.g. `"Figure 5 — Full vs Shredded Columns (CSV)"`.
    pub title: String,
    /// Notes on setup (dataset, query, what to look for).
    pub notes: Vec<String>,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl ExpTable {
    /// Start a table.
    pub fn new(title: impl Into<String>, headers: Vec<String>) -> ExpTable {
        ExpTable { title: title.into(), notes: Vec::new(), headers, rows: Vec::new() }
    }

    /// Add a setup note.
    pub fn note(&mut self, line: impl Into<String>) {
        self.notes.push(line.into());
    }

    /// Add a data row; pads/truncates to the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        let mut cells = cells;
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        for note in &self.notes {
            let _ = writeln!(out, "   {note}");
        }
        let line = |out: &mut String, cells: &[String]| {
            let mut s = String::from("  ");
            for (i, cell) in cells.iter().enumerate().take(ncols) {
                if i > 0 {
                    s.push_str("  ");
                }
                let pad = widths[i].saturating_sub(cell.chars().count());
                if i == 0 {
                    // First column left-aligned.
                    s.push_str(cell);
                    s.push_str(&" ".repeat(pad));
                } else {
                    s.push_str(&" ".repeat(pad));
                    s.push_str(cell);
                }
            }
            out.push_str(s.trim_end());
            out.push('\n');
        };
        line(&mut out, &self.headers);
        let rule: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
        line(&mut out, &rule);
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = ExpTable::new("Figure X", vec!["system".into(), "time".into()]);
        t.note("demo note");
        t.row(vec!["DBMS".into(), "1.0 s".into()]);
        t.row(vec!["JIT access paths".into(), "0.5 s".into()]);
        let s = t.render();
        assert!(s.contains("## Figure X"));
        assert!(s.contains("demo note"));
        let lines: Vec<&str> = s.lines().collect();
        // header + rule + 2 rows after title/note
        assert_eq!(lines.len(), 6);
        assert!(lines[3].starts_with("  ------"));
    }

    #[test]
    fn rows_are_padded() {
        let mut t = ExpTable::new("T", vec!["a".into(), "b".into(), "c".into()]);
        t.row(vec!["x".into()]);
        assert_eq!(t.rows[0].len(), 3);
    }
}
