//! Ablation experiments for the design choices DESIGN.md calls out.
//!
//! The paper's figures compare whole systems; these ablations isolate one
//! mechanism each, answering "how much does this specific design decision
//! buy, and where does it stop paying?":
//!
//! - [`ablation_index`] — the §4.1 claim that generated access paths can
//!   exploit format-embedded indexes: index-aware JIT vs. index-blind
//!   general-purpose scans over the same `ibin` file.
//! - [`ablation_adaptive`] — the §8 future-work cost model: does the
//!   `Adaptive` strategy track the best fixed strategy across the
//!   selectivity sweep?
//! - [`ablation_posmap`] — the positional-map granularity trade-off §2.3
//!   describes ("number of positions to track vs. future benefits"),
//!   swept over tracking strides.
//! - [`ablation_compile`] — the §4.2 compilation-overhead discussion: how
//!   a template cache amortizes (simulated) compile latency across query
//!   resubmissions.
//! - [`ablation_batch`] — the vectorization granularity the columnar
//!   substrate (Supersonic stand-in) rests on: batch-size sweep.

use std::time::Duration;

use raw_engine::{AccessMode, EngineConfig, RawEngine, ShredStrategy};
use raw_formats::datagen::literal_for_selectivity;
use raw_posmap::TrackingPolicy;

use crate::experiments::{q1, q2, system_config};
use crate::report::ExpTable;
use crate::{datasets, fmt_duration, time_once, Scale, SELECTIVITIES};

fn run(engine: &mut RawEngine, sql: &str) -> raw_engine::QueryResult {
    engine.query(sql).unwrap_or_else(|e| panic!("query failed: {e}\n  {sql}"))
}

fn median(mut times: Vec<Duration>) -> Duration {
    times.sort_unstable();
    times[times.len() / 2]
}

/// Ablation: index-aware JIT scans vs. index-blind access over `ibin`.
pub fn ablation_index(scale: &Scale) -> ExpTable {
    let s = *scale;
    let mut table = ExpTable::new(
        "Ablation — format-embedded index (ibin, sorted by col1): \
         SELECT MAX(col11) WHERE col1 < X",
        std::iter::once("system".to_owned())
            .chain(SELECTIVITIES.iter().map(|s| format!("{:.0}%", s * 100.0)))
            .collect(),
    );
    table.note(format!(
        "dataset: {} rows x 30 int columns (ibin, 4096-row pages, sorted key)",
        s.narrow_rows
    ));
    table.note(
        "expect: JIT time grows with selectivity (pruning shrinks the scan); \
         in-situ flat (index-blind); DBMS flat after load",
    );

    let systems: Vec<(&str, AccessMode)> = vec![
        ("JIT (index)", AccessMode::Jit),
        ("In Situ (blind)", AccessMode::InSitu),
        ("DBMS", AccessMode::Dbms),
    ];
    for (name, mode) in systems {
        let mut cells = vec![name.to_owned()];
        for &sel in SELECTIVITIES {
            let x = literal_for_selectivity(sel);
            let mut times = Vec::new();
            for _ in 0..s.repeats.max(1) {
                let mut engine = datasets::engine_narrow_ibin(
                    &s,
                    system_config(mode, ShredStrategy::FullColumns, 10),
                );
                run(&mut engine, &q1("file1", x)); // warm buffers / DBMS load
                let (_, d) = time_once(|| run(&mut engine, &q2("file1", x)));
                times.push(d);
            }
            cells.push(fmt_duration(median(times)));
        }
        table.row(cells);
    }

    // One more row: the fraction of rows the JIT scan skipped per point.
    let mut cells = vec!["JIT rows pruned".to_owned()];
    for &sel in SELECTIVITIES {
        let x = literal_for_selectivity(sel);
        let mut engine = datasets::engine_narrow_ibin(
            &s,
            system_config(AccessMode::Jit, ShredStrategy::FullColumns, 10),
        );
        let r = run(&mut engine, &q2("file1", x));
        cells.push(format!(
            "{:.0}%",
            100.0 * r.stats.metrics.rows_pruned as f64 / s.narrow_rows as f64
        ));
    }
    table.row(cells);
    table
}

/// Ablation: cost-model-driven `Adaptive` strategy vs. every fixed one.
pub fn ablation_adaptive(scale: &Scale) -> ExpTable {
    let s = *scale;
    let mut table = ExpTable::new(
        "Ablation — adaptive strategy selection (CSV): SELECT MAX(col11) WHERE col1 < X",
        std::iter::once("strategy".to_owned())
            .chain(SELECTIVITIES.iter().map(|s| format!("{:.0}%", s * 100.0)))
            .collect(),
    );
    table.note(format!(
        "dataset: {} rows x 30 int columns (CSV); Q1 builds posmap + histogram",
        s.narrow_rows
    ));
    table.note(
        "expect: Adaptive tracks min(Full, Shreds) — shreds at low selectivity, \
         full at 100%; annotation = chosen plan (F/S/M)",
    );

    let strategies: Vec<(&str, ShredStrategy)> = vec![
        ("Full (fixed)", ShredStrategy::FullColumns),
        ("Shreds (fixed)", ShredStrategy::ColumnShreds),
        ("Adaptive", ShredStrategy::Adaptive),
    ];
    for (name, strat) in strategies {
        let mut cells = vec![name.to_owned()];
        for &sel in SELECTIVITIES {
            let x = literal_for_selectivity(sel);
            let mut times = Vec::new();
            let mut chosen = String::new();
            for _ in 0..s.repeats.max(1) {
                let mut engine =
                    datasets::engine_narrow_csv(&s, system_config(AccessMode::Jit, strat, 10));
                run(&mut engine, &q1("file1", x));
                let (r, d) = time_once(|| run(&mut engine, &q2("file1", x)));
                times.push(d);
                if strat == ShredStrategy::Adaptive {
                    chosen = r
                        .stats
                        .explain
                        .iter()
                        .find(|l| l.contains("adaptive strategy"))
                        .map(|l| {
                            if l.contains("MultiColumnShreds") {
                                " (M)"
                            } else if l.contains("ColumnShreds") {
                                " (S)"
                            } else {
                                " (F)"
                            }
                        })
                        .unwrap_or("")
                        .to_owned();
                }
            }
            cells.push(format!("{}{}", fmt_duration(median(times)), chosen));
        }
        table.row(cells);
    }
    table
}

/// Ablation: positional-map tracking stride (§2.3's trade-off).
pub fn ablation_posmap(scale: &Scale) -> ExpTable {
    let s = *scale;
    let x = literal_for_selectivity(0.4);
    let mut table = ExpTable::new(
        "Ablation — positional-map granularity (CSV): Q2 warm, 40% selectivity",
        vec![
            "tracking stride".into(),
            "Q2 time".into(),
            "fields skipped to col11".into(),
            "posmap entries/row".into(),
        ],
    );
    table.note(format!("dataset: {} rows x 30 int columns (CSV)", s.narrow_rows));
    table.note(
        "expect: stride 1 fastest (every column exact) but 30 entries/row of \
         memory; cost rises with fields to parse past the nearest tracked column",
    );

    for stride in [1usize, 2, 5, 7, 10, 15, 30] {
        // col11 = source ordinal 10; nearest tracked ordinal at or below.
        let skip = 10 % stride;
        let entries_per_row = 30usize.div_ceil(stride);
        let mut times = Vec::new();
        for _ in 0..s.repeats.max(1) {
            let mut engine = datasets::engine_narrow_csv(
                &s,
                EngineConfig {
                    mode: AccessMode::Jit,
                    shreds: ShredStrategy::FullColumns,
                    posmap_policy: TrackingPolicy::EveryK { stride },
                    ..EngineConfig::default()
                },
            );
            run(&mut engine, &q1("file1", x));
            let (_, d) = time_once(|| run(&mut engine, &q2("file1", x)));
            times.push(d);
        }
        table.row(vec![
            stride.to_string(),
            fmt_duration(median(times)),
            skip.to_string(),
            entries_per_row.to_string(),
        ]);
    }
    table
}

/// Ablation: template cache amortization of compile latency (§4.2).
pub fn ablation_compile(scale: &Scale) -> ExpTable {
    let s = *scale;
    let x = literal_for_selectivity(0.4);
    let simulated = Duration::from_millis(50);
    let mut table = ExpTable::new(
        "Ablation — template cache vs. per-query compilation (CSV, 50 ms simulated \
         compile latency)",
        vec![
            "configuration".into(),
            "query 1".into(),
            "query 2".into(),
            "query 3".into(),
            "query 4".into(),
        ],
    );
    table.note(format!("dataset: {} rows x 30 int columns (CSV)", s.narrow_rows));
    table.note(
        "expect: with the cache, compiles happen only while access paths still \
         change (query 1 has no posmap, query 2 gains one → two compiles), then \
         resubmissions hit; clearing the cache re-pays the compile every query \
         — the paper's library-cache amortization",
    );

    let configs: Vec<(&str, Duration, bool)> = vec![
        ("cache on, no latency", Duration::ZERO, false),
        ("cache on, 50 ms compile", simulated, false),
        ("cache cleared each query", simulated, true),
    ];
    for (name, latency, clear) in configs {
        let mut engine = datasets::engine_narrow_csv(
            &s,
            EngineConfig {
                mode: AccessMode::Jit,
                shreds: ShredStrategy::FullColumns,
                simulated_compile_latency: latency,
                // Keep the shred pool out of the picture: with it on,
                // repeats are answered from cached columns and never reach
                // the scan whose compilation we are ablating.
                cache_shreds: false,
                ..EngineConfig::default()
            },
        );
        let mut cells = vec![name.to_owned()];
        for _ in 0..4 {
            if clear {
                engine.clear_template_cache();
            }
            let (_, d) = time_once(|| run(&mut engine, &q2("file1", x)));
            cells.push(fmt_duration(d));
        }
        table.row(cells);
    }
    table
}

/// Ablation: vector (batch) size of the columnar substrate.
pub fn ablation_batch(scale: &Scale) -> ExpTable {
    let s = *scale;
    let x = literal_for_selectivity(0.4);
    let mut table = ExpTable::new(
        "Ablation — vector size (CSV Q2 warm, JIT full columns)",
        vec!["batch rows".into(), "Q2 time".into()],
    );
    table.note(format!("dataset: {} rows x 30 int columns (CSV)", s.narrow_rows));
    table.note(
        "expect: a sweet spot around 1k-4k rows — small batches pay per-batch \
         overhead, huge batches spill the CPU caches (MonetDB/X100 lesson)",
    );

    for batch in [64usize, 256, 1024, 4096, 16384, 65536] {
        let mut times = Vec::new();
        for _ in 0..s.repeats.max(1) {
            let mut engine = datasets::engine_narrow_csv(
                &s,
                EngineConfig {
                    mode: AccessMode::Jit,
                    shreds: ShredStrategy::FullColumns,
                    batch_size: batch,
                    ..EngineConfig::default()
                },
            );
            run(&mut engine, &q1("file1", x));
            let (_, d) = time_once(|| run(&mut engine, &q2("file1", x)));
            times.push(d);
        }
        table.row(vec![batch.to_string(), fmt_duration(median(times))]);
    }
    table
}

/// All ablations, in presentation order.
pub fn all(scale: &Scale) -> Vec<ExpTable> {
    vec![
        ablation_index(scale),
        ablation_adaptive(scale),
        ablation_posmap(scale),
        ablation_compile(scale),
        ablation_batch(scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale { narrow_rows: 2_000, wide_rows: 500, join_rows: 800, higgs_events: 500, repeats: 1 }
    }

    #[test]
    fn index_ablation_runs_and_prunes() {
        let t = ablation_index(&tiny());
        let rendered = t.render();
        assert!(rendered.contains("JIT (index)"), "{rendered}");
        assert!(rendered.contains("JIT rows pruned"), "{rendered}");
    }

    #[test]
    fn adaptive_ablation_annotates_choices() {
        let t = ablation_adaptive(&tiny());
        let rendered = t.render();
        assert!(rendered.contains("Adaptive"), "{rendered}");
        assert!(
            rendered.contains("(S)") || rendered.contains("(F)") || rendered.contains("(M)"),
            "chosen-plan annotation expected: {rendered}"
        );
    }

    #[test]
    fn posmap_ablation_covers_strides() {
        let t = ablation_posmap(&tiny());
        let rendered = t.render();
        for stride in ["1", "7", "30"] {
            assert!(rendered.lines().any(|l| l.trim_start().starts_with(stride)), "{rendered}");
        }
    }

    #[test]
    fn compile_ablation_shows_amortization() {
        let t = ablation_compile(&tiny());
        let rendered = t.render();
        assert!(rendered.contains("cache cleared"), "{rendered}");
    }

    #[test]
    fn batch_ablation_runs() {
        let t = ablation_batch(&tiny());
        assert!(t.render().contains("65536"));
    }
}
