//! `check_bench` — diff the committed `BENCH_<key>.json` perf baselines
//! against a fresh run at the same scale.
//!
//! ```text
//! RAW_BENCH_SCALE=tiny cargo run --release -p raw-bench --bin check_bench
//! ```
//!
//! Verdicts:
//!
//! - a missing artifact, a missing counter key (either direction), or a
//!   counter value mismatch **fails** (exit 1) — the deterministic
//!   counters are bitwise-stable at a given scale, so any drift is a real
//!   behavior change that must be re-baselined deliberately
//!   (`reproduce baselines`);
//! - a recorded scale different from the current one fails with a
//!   re-baseline hint (counters are scale-dependent; comparing across
//!   scales is meaningless);
//! - times are **advisory** by default: ratios print but never fail (a
//!   1-CPU CI runner is legitimately many times slower than the machine
//!   that committed the baseline). `CHECK_BENCH_TIMES=strict` turns a
//!   >25x wall-time regression into a failure.

use raw_bench::baseline;
use raw_bench::Scale;
use raw_trace::{json, Json};

/// Strict-mode wall-time tolerance: generous enough to absorb any machine
/// difference, tight enough to catch order-of-magnitude regressions.
const STRICT_TIME_RATIO: f64 = 25.0;

fn main() {
    let scale = Scale::from_env();
    let strict_times = std::env::var("CHECK_BENCH_TIMES").as_deref() == Ok("strict");
    let mut failures: Vec<String> = Vec::new();

    for w in &baseline::workloads() {
        let path = baseline::baseline_path(w.key);
        let committed = match std::fs::read_to_string(&path) {
            Ok(text) => match json::parse(&text) {
                Ok(doc) => doc,
                Err(e) => {
                    failures.push(format!("{}: unparsable baseline: {e}", w.key));
                    continue;
                }
            },
            Err(e) => {
                failures.push(format!("{}: missing baseline {}: {e}", w.key, path.display()));
                continue;
            }
        };

        eprintln!("checking {}…", w.key);
        let fresh = baseline::run_one(&scale, w);

        // Scale must match: counters are a function of it.
        if committed.get("scale").map(Json::render) != fresh.get("scale").map(Json::render) {
            failures.push(format!(
                "{}: baseline recorded at a different scale; re-run `reproduce baselines` \
                 at the current scale (committed {:?}, current {:?})",
                w.key,
                committed.get("scale").map(Json::render),
                fresh.get("scale").map(Json::render),
            ));
            continue;
        }

        let committed_counters = committed.get("counters").and_then(Json::as_obj);
        let fresh_counters = fresh.get("counters").and_then(Json::as_obj);
        let (Some(old), Some(new)) = (committed_counters, fresh_counters) else {
            failures.push(format!("{}: counters object missing", w.key));
            continue;
        };

        // Every key must exist on both sides (a vanished metric is a
        // regression in observability, not just in value), and values
        // match exactly.
        failures.extend(
            baseline::diff_counters(old, new).into_iter().map(|d| format!("{}: {d}", w.key)),
        );

        // Times: advisory report, strict only on request.
        let wall =
            |doc: &Json| doc.get("times_s").and_then(|t| t.get("wall_s")).and_then(Json::as_f64);
        if let (Some(old_wall), Some(new_wall)) = (wall(&committed), wall(&fresh)) {
            if old_wall > 0.0 {
                let ratio = new_wall / old_wall;
                eprintln!("  wall {:.4}s vs baseline {:.4}s ({ratio:.2}x)", new_wall, old_wall);
                if strict_times && ratio > STRICT_TIME_RATIO {
                    failures.push(format!(
                        "{}: wall time regressed {ratio:.1}x (> {STRICT_TIME_RATIO}x, strict mode)",
                        w.key
                    ));
                }
            }
        }
    }

    if failures.is_empty() {
        eprintln!("check_bench: all baselines match");
    } else {
        eprintln!("check_bench: {} failure(s):", failures.len());
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
}
