//! `reproduce` — regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p raw-bench --bin reproduce            # everything
//! cargo run --release -p raw-bench --bin reproduce fig5 fig9  # a subset
//! RAW_BENCH_SCALE=tiny cargo run -p raw-bench --bin reproduce # quick pass
//! ```
//!
//! Results print to stdout and are written to `bench_results/` (one file per
//! experiment plus `all.txt`), which EXPERIMENTS.md references.

use std::io::Write as _;

use raw_bench::report::ExpTable;
use raw_bench::Scale;
use raw_bench::{ablations, baseline, experiments};

type Runner = fn(&Scale) -> ExpTable;

fn registry() -> Vec<(&'static str, Runner)> {
    vec![
        ("table1", |_s| experiments::table1_environment()),
        ("fig1a", experiments::fig1a),
        ("fig1b", experiments::fig1b),
        ("fig2", experiments::fig2),
        ("fig3", experiments::fig3),
        ("table2", experiments::table2),
        ("fig5", experiments::fig5),
        ("fig6", experiments::fig6),
        ("fig7", experiments::fig7),
        ("fig8", experiments::fig8),
        ("fig9", experiments::fig9),
        ("fig11", experiments::fig11),
        ("fig12", experiments::fig12),
        ("fig13", experiments::fig13),
        ("fig14", experiments::fig14),
        ("table3", experiments::table3),
        // Perf baselines: BENCH_<key>.json artifacts with deterministic
        // counters (diffed exactly by `check_bench`) and advisory times.
        ("baselines", baseline::baselines),
        // Ablations (not paper figures): isolate one design choice each.
        ("ablation_index", ablations::ablation_index),
        ("ablation_adaptive", ablations::ablation_adaptive),
        ("ablation_posmap", ablations::ablation_posmap),
        ("ablation_compile", ablations::ablation_compile),
        ("ablation_batch", ablations::ablation_batch),
    ]
}

fn main() {
    let scale = Scale::from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let registry = registry();

    let selected: Vec<&(&str, Runner)> = if args.is_empty() || args[0] == "all" {
        registry.iter().collect()
    } else {
        let mut sel = Vec::new();
        for a in &args {
            match registry.iter().find(|(name, _)| name == a) {
                Some(entry) => sel.push(entry),
                None => {
                    eprintln!(
                        "unknown experiment {a:?}; known: {}",
                        registry.iter().map(|(n, _)| *n).collect::<Vec<_>>().join(", ")
                    );
                    std::process::exit(2);
                }
            }
        }
        sel
    };

    println!(
        "# RAW paper reproduction — scale: {} narrow rows, {} wide rows, {} join rows, {} events\n",
        scale.narrow_rows, scale.wide_rows, scale.join_rows, scale.higgs_events
    );

    let out_dir = std::path::Path::new("bench_results");
    std::fs::create_dir_all(out_dir).expect("create bench_results/");
    let mut all = String::new();

    for (name, runner) in selected {
        eprintln!("running {name}…");
        let start = std::time::Instant::now();
        let table = runner(&scale);
        let rendered = table.render();
        eprintln!("  done in {:?}", start.elapsed());
        println!("{rendered}");
        all.push_str(&rendered);
        all.push('\n');
        let mut f =
            std::fs::File::create(out_dir.join(format!("{name}.txt"))).expect("create result file");
        f.write_all(rendered.as_bytes()).expect("write result file");
    }

    std::fs::write(out_dir.join("all.txt"), all).expect("write all.txt");
    eprintln!("results written to {}/", out_dir.display());
}
