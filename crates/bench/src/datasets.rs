//! Benchmark dataset management.
//!
//! Files are generated deterministically into a work directory and reused
//! across runs (the generators are seeded, so a file's name fully determines
//! its contents).

use std::path::{Path, PathBuf};

use raw_columnar::{DataType, Schema};
use raw_engine::{EngineConfig, RawEngine, TableDef, TableSource};
use raw_formats::datagen;
use raw_higgs::{generate_dataset, DatasetConfig, HiggsDataset};

use crate::Scale;

/// The directory benchmark files live in.
pub fn data_dir() -> PathBuf {
    let dir = std::env::temp_dir().join("raw-bench-data");
    std::fs::create_dir_all(&dir).expect("create bench data dir");
    dir
}

/// Ensure a file exists, generating it with `make` when missing.
fn ensure(path: &Path, make: impl FnOnce(&Path)) -> PathBuf {
    if !path.exists() {
        make(path);
    }
    path.to_path_buf()
}

/// The 30-integer-column table as CSV (paper §4.2). Returns the path.
pub fn narrow_csv(scale: &Scale) -> PathBuf {
    let path = data_dir().join(format!("narrow_{}x30.csv", scale.narrow_rows));
    ensure(&path, |p| {
        let t = datagen::int_table(42, scale.narrow_rows, 30);
        raw_formats::csv::writer::write_file(&t, p).expect("write csv");
    })
}

/// The narrow CSV re-packed as a blocked-compressed `.rzb` container. The
/// block size is pinned at 4 KiB **in the file name and the writer call** —
/// not `RAW_RZB_BLOCK_BYTES` — so the compressed byte counts (and therefore
/// the `io_bytes` baseline counter) are a pure function of the scale.
pub fn narrow_csv_rzb(scale: &Scale) -> PathBuf {
    const BLOCK: usize = 4096;
    let path = data_dir().join(format!("narrow_{}x30_b{BLOCK}.csv.rzb", scale.narrow_rows));
    ensure(&path, |p| {
        let plain = narrow_csv(scale);
        raw_formats::rzb::write_file(&plain, p, BLOCK).expect("write rzb");
    })
}

/// The same table as fixed-width binary.
pub fn narrow_fbin(scale: &Scale) -> PathBuf {
    let path = data_dir().join(format!("narrow_{}x30.fbin", scale.narrow_rows));
    ensure(&path, |p| {
        let t = datagen::int_table(42, scale.narrow_rows, 30);
        raw_formats::fbin::write_file(&t, p).expect("write fbin");
    })
}

/// The same table as indexed paged binary, sorted by col1 so the embedded
/// sorted-key index can prune (§4.1's HDF-like regime).
pub fn narrow_ibin_sorted(scale: &Scale) -> PathBuf {
    let path = data_dir().join(format!("narrow_{}x30_sorted.ibin", scale.narrow_rows));
    ensure(&path, |p| {
        let t = datagen::sorted_copy(&datagen::int_table(42, scale.narrow_rows, 30), 0);
        raw_formats::ibin::write_file(&t, p, 4096, Some(0)).expect("write ibin");
    })
}

/// The narrow table with `col2` re-keyed to a bounded cardinality (1024
/// groups): the histogram-shaped GROUP BY workload of the fig13 scaling
/// study. Grouping the vanilla narrow table's uniform-`[0, 1e9)` `col2`
/// would make nearly every row its own group, so the single-threaded
/// morsel-order state merge does O(input) work and masks scan scaling —
/// a workload artifact, not a parallel-path property.
pub fn grouped_narrow_csv(scale: &Scale) -> PathBuf {
    let path = data_dir().join(format!("grouped_{}x30.csv", scale.narrow_rows));
    ensure(&path, |p| {
        let t = datagen::int_table(42, scale.narrow_rows, 30);
        let mut cols = t.columns().to_vec();
        cols[1] = raw_columnar::Column::Int64(
            (0..scale.narrow_rows as i64).map(|i| (i * 37 + 11) % 1024).collect(),
        );
        let t = raw_columnar::MemTable::new(t.schema().clone(), cols).expect("re-keyed table");
        raw_formats::csv::writer::write_file(&t, p).expect("write csv");
    })
}

/// The 120-column mixed table (int predicate column + float payload, §5.2).
pub fn wide_csv(scale: &Scale) -> PathBuf {
    let path = data_dir().join(format!("wide_{}x120.csv", scale.wide_rows));
    ensure(&path, |p| {
        let t = datagen::mixed_table(43, scale.wide_rows, 120);
        raw_formats::csv::writer::write_file(&t, p).expect("write csv");
    })
}

/// The 120-column mixed table as binary.
pub fn wide_fbin(scale: &Scale) -> PathBuf {
    let path = data_dir().join(format!("wide_{}x120.fbin", scale.wide_rows));
    ensure(&path, |p| {
        let t = datagen::mixed_table(43, scale.wide_rows, 120);
        raw_formats::fbin::write_file(&t, p).expect("write fbin");
    })
}

/// The join pair (§5.3.2): file1 CSV + its row-shuffled twin file2.
pub fn join_pair_csv(scale: &Scale) -> (PathBuf, PathBuf) {
    let p1 = data_dir().join(format!("join1_{}x30.csv", scale.join_rows));
    let p2 = data_dir().join(format!("join2_{}x30.csv", scale.join_rows));
    let make = |p1: &Path, p2: &Path| {
        let t = datagen::int_table(44, scale.join_rows, 30);
        raw_formats::csv::writer::write_file(&t, p1).expect("write csv");
        let shuffled = datagen::shuffled_copy(&t, 45);
        raw_formats::csv::writer::write_file(&shuffled, p2).expect("write csv");
    };
    if !p1.exists() || !p2.exists() {
        make(&p1, &p2);
    }
    (p1, p2)
}

/// The Higgs dataset (rootsim + good-runs CSV).
pub fn higgs(scale: &Scale) -> HiggsDataset {
    let config = DatasetConfig { events: scale.higgs_events, ..Default::default() };
    // `generate_dataset` derives file names from events/seed, so it reuses
    // existing files when present.
    let dir = data_dir();
    let root = dir.join(format!("atlas_{}_{}.rootsim", config.events, config.seed));
    let goodruns = dir.join(format!("goodruns_{}_{}.csv", config.runs, config.seed));
    if root.exists() && goodruns.exists() {
        HiggsDataset { root_path: root, goodruns_path: goodruns, config }
    } else {
        generate_dataset(config, &dir).expect("generate higgs dataset")
    }
}

/// Register the narrow table as `file1` (CSV) in a fresh engine.
pub fn engine_narrow_csv(scale: &Scale, config: EngineConfig) -> RawEngine {
    let engine = RawEngine::new(config);
    engine.register_table(TableDef {
        name: "file1".into(),
        schema: Schema::uniform(30, DataType::Int64),
        source: TableSource::Csv { path: narrow_csv(scale) },
    });
    engine
}

/// Register the `.rzb`-compressed narrow table as `file1` (CSV) in a fresh
/// engine: byte-identical query surface to [`engine_narrow_csv`], but every
/// scan routes through the block decoder and `io_bytes` counts compressed
/// bytes.
pub fn engine_narrow_csv_rzb(scale: &Scale, config: EngineConfig) -> RawEngine {
    let engine = RawEngine::new(config);
    engine.register_table(TableDef {
        name: "file1".into(),
        schema: Schema::uniform(30, DataType::Int64),
        source: TableSource::Csv { path: narrow_csv_rzb(scale) },
    });
    engine
}

/// Register the bounded-cardinality grouped table as `file1` (CSV) in a
/// fresh engine.
pub fn engine_grouped_csv(scale: &Scale, config: EngineConfig) -> RawEngine {
    let engine = RawEngine::new(config);
    engine.register_table(TableDef {
        name: "file1".into(),
        schema: Schema::uniform(30, DataType::Int64),
        source: TableSource::Csv { path: grouped_narrow_csv(scale) },
    });
    engine
}

/// Register the narrow table as `file1` (binary) in a fresh engine.
pub fn engine_narrow_fbin(scale: &Scale, config: EngineConfig) -> RawEngine {
    let engine = RawEngine::new(config);
    engine.register_table(TableDef {
        name: "file1".into(),
        schema: Schema::uniform(30, DataType::Int64),
        source: TableSource::Fbin { path: narrow_fbin(scale) },
    });
    engine
}

/// Register the sorted indexed-binary narrow table as `file1` in a fresh
/// engine. Values are the same multiset as the CSV/fbin twins, but row
/// order differs (sorted by col1).
pub fn engine_narrow_ibin(scale: &Scale, config: EngineConfig) -> RawEngine {
    let engine = RawEngine::new(config);
    engine.register_table(TableDef {
        name: "file1".into(),
        schema: Schema::uniform(30, DataType::Int64),
        source: TableSource::Ibin { path: narrow_ibin_sorted(scale) },
    });
    engine
}

/// Register the Higgs muon collection as the satellite table `muons` in a
/// fresh engine: one row per muon, with the owning event's `eventID`
/// replicated per item. The fig13 collection scaling case drives this with
/// item-sized event-range morsels.
pub fn engine_muon_collection(scale: &Scale, config: EngineConfig) -> RawEngine {
    let ds = higgs(scale);
    let engine = RawEngine::new(config);
    engine.register_table(TableDef {
        name: "muons".into(),
        schema: Schema::new(vec![
            raw_columnar::Field::new("eventID", DataType::Int64),
            raw_columnar::Field::new("pt", DataType::Float32),
            raw_columnar::Field::new("eta", DataType::Float32),
        ]),
        source: TableSource::RootCollection {
            path: ds.root_path,
            collection: "muons".into(),
            parent_scalar: Some("eventID".into()),
        },
    });
    engine
}

/// Register the wide table (CSV or binary) as `wide` in a fresh engine.
pub fn engine_wide(scale: &Scale, config: EngineConfig, binary: bool) -> RawEngine {
    let engine = RawEngine::new(config);
    let schema = {
        // col1 int + 119 float columns, as `datagen::mixed_table` builds.
        let mut fields = vec![raw_columnar::Field::new("col1", DataType::Int64)];
        for i in 2..=120 {
            fields.push(raw_columnar::Field::new(format!("col{i}"), DataType::Float64));
        }
        Schema::new(fields)
    };
    let source = if binary {
        TableSource::Fbin { path: wide_fbin(scale) }
    } else {
        TableSource::Csv { path: wide_csv(scale) }
    };
    engine.register_table(TableDef { name: "wide".into(), schema, source });
    engine
}

/// Register the join pair as `file1`/`file2` (both CSV) in a fresh engine.
pub fn engine_join_pair(scale: &Scale, config: EngineConfig) -> RawEngine {
    let (p1, p2) = join_pair_csv(scale);
    let engine = RawEngine::new(config);
    for (name, path) in [("file1", p1), ("file2", p2)] {
        engine.register_table(TableDef {
            name: name.into(),
            schema: Schema::uniform(30, DataType::Int64),
            source: TableSource::Csv { path },
        });
    }
    engine
}
