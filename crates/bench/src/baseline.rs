//! Persisted performance baselines: `BENCH_<key>.json` artifacts.
//!
//! Each baseline runs one representative paper workload cold on a fresh
//! engine under a **pinned** configuration — explicitly NOT
//! [`raw_engine::EngineConfig::from_env`], so `RAW_PARALLELISM`-style knobs
//! cannot silently change what gets committed — and serializes the query's
//! measurements with the dependency-free `raw_trace::json` writer.
//!
//! The artifact separates two kinds of numbers:
//!
//! - `counters` — deterministic at a given [`Scale`]: scan/prune/tokenize
//!   volumes, I/O bytes, morsel count, cache traffic, output rows. The
//!   morsel grid derives from the file and `morsel_bytes` only, and
//!   parallel counters tile the serial run exactly (the
//!   `stats_equivalence` suite), so these are bitwise-stable across runs
//!   and machines and are diffed **exactly** by `check_bench`.
//! - `times_s` — wall/scan/compile/gate-wait seconds: machine- and
//!   scheduling-dependent, recorded for trend inspection and treated as
//!   **advisory** by `check_bench` (a 1-CPU CI runner legitimately runs
//!   several times slower than a laptop).

use std::path::PathBuf;

use raw_engine::{AccessMode, EngineConfig, JoinPlacement, QueryStats, RawEngine, ShredStrategy};
use raw_formats::datagen::literal_for_selectivity;
use raw_posmap::TrackingPolicy;
use raw_trace::Json;

use crate::experiments::{grouped_q, q1};
use crate::report::ExpTable;
use crate::{datasets, Scale};

/// One baseline workload: a stable key (the artifact is `BENCH_<key>.json`)
/// plus the engine and query that produce it.
pub struct Workload {
    /// Stable artifact key.
    pub key: &'static str,
    /// What the workload reproduces.
    pub description: &'static str,
    /// Fresh-engine factory (fresh = cold: the file pool starts empty).
    pub maker: fn(&Scale, EngineConfig) -> RawEngine,
    /// The measured query.
    pub sql: String,
}

/// The pinned engine configuration baselines run under. Every knob that
/// affects the deterministic counters (mode, morsel grid, chunk size,
/// posmap stride) is fixed here; the environment is deliberately ignored.
pub fn pinned_config() -> EngineConfig {
    EngineConfig {
        mode: AccessMode::Jit,
        shreds: ShredStrategy::ColumnShreds,
        join_placement: JoinPlacement::Late,
        posmap_policy: TrackingPolicy::EveryK { stride: 10 },
        parallelism: 4,
        morsel_bytes: 64 << 10,
        read_chunk_bytes: 1 << 20,
        ..EngineConfig::default()
    }
}

/// The baseline workload set: one per figure family the repo reproduces —
/// flat scans (CSV/fbin), the join, and the three fig13 scaling shapes
/// (grouped aggregation, index-pruned ibin, exploded collection).
pub fn workloads() -> Vec<Workload> {
    let x = literal_for_selectivity(0.4);
    vec![
        Workload {
            key: "fig1_csv",
            description: "fig1 cold CSV scan aggregate",
            maker: datasets::engine_narrow_csv,
            sql: q1("file1", x),
        },
        Workload {
            key: "fig2_fbin",
            description: "fig2 cold fbin scan aggregate",
            maker: datasets::engine_narrow_fbin,
            sql: q1("file1", x),
        },
        Workload {
            key: "fig9_join",
            description: "fig9 join (probe file1, build file2)",
            maker: datasets::engine_join_pair,
            sql: format!(
                "SELECT MAX(file1.col11) FROM file1 JOIN file2 \
                 ON file1.col1 = file2.col1 WHERE file2.col2 < {x}"
            ),
        },
        Workload {
            key: "fig13_grouped",
            description: "fig13 grouped aggregation (1024 groups)",
            maker: datasets::engine_grouped_csv,
            sql: grouped_q("file1", x),
        },
        Workload {
            key: "fig13_ibin",
            description: "fig13 index-pruned ibin aggregate",
            maker: datasets::engine_narrow_ibin,
            sql: q1("file1", x),
        },
        Workload {
            key: "fig13_collection",
            description: "fig13 exploded rootsim collection aggregate",
            maker: datasets::engine_muon_collection,
            sql: "SELECT MAX(pt), COUNT(pt) FROM muons WHERE pt > 20.0".to_owned(),
        },
        Workload {
            key: "fig15_rzb",
            description: "cold blocked-compressed (.rzb) CSV scan aggregate",
            maker: datasets::engine_narrow_csv_rzb,
            sql: q1("file1", x),
        },
    ]
}

/// The deterministic counters of one run, in fixed key order (the exact-
/// match surface of `check_bench`). Scheduling-dependent numbers — times,
/// gate waits, chunk waits — are deliberately absent.
pub fn counters_of(stats: &QueryStats) -> Vec<(&'static str, u64)> {
    vec![
        ("rows_scanned", stats.metrics.rows_scanned),
        ("rows_pruned", stats.metrics.rows_pruned),
        ("fields_tokenized", stats.metrics.fields_tokenized),
        ("values_converted", stats.metrics.values_converted),
        ("values_materialized", stats.metrics.values_materialized),
        ("io_bytes", stats.io_bytes),
        ("rows_out", stats.rows_out),
        ("workers", stats.workers as u64),
        ("morsels", stats.morsels as u64),
        ("template_hits", stats.template_hits),
        ("template_misses", stats.template_misses),
        ("shred_hits", stats.shred_hits),
        ("shred_misses", stats.shred_misses),
        ("posmaps_built", stats.posmaps_built as u64),
        ("shreds_recorded", stats.shreds_recorded as u64),
    ]
}

/// Per-key differences between two rendered counter objects (as returned by
/// `Json::as_obj` on the `counters` field): missing keys in either
/// direction and exact-value mismatches. Empty means bitwise-equal
/// counters. Shared by `check_bench` and the stability test so a drifting
/// run names the offending counters instead of dumping two JSON blobs.
pub fn diff_counters(old: &[(String, Json)], new: &[(String, Json)]) -> Vec<String> {
    let mut diffs = Vec::new();
    for (key, old_value) in old {
        match new.iter().find(|(k, _)| k == key) {
            None => diffs.push(format!("counter {key} present in baseline but no longer produced")),
            Some((_, new_value)) if new_value != old_value => diffs.push(format!(
                "counter {key} changed: baseline {} vs fresh {}",
                old_value.render(),
                new_value.render()
            )),
            Some(_) => {}
        }
    }
    for (key, _) in new {
        if !old.iter().any(|(k, _)| k == key) {
            diffs.push(format!("new counter {key} not in baseline; re-run `reproduce baselines`"));
        }
    }
    diffs
}

/// Run one workload cold under the pinned configuration and serialize it.
pub fn run_one(scale: &Scale, w: &Workload) -> Json {
    let engine = (w.maker)(scale, pinned_config());
    let result = engine
        .query(&w.sql)
        .unwrap_or_else(|e| panic!("baseline {} failed: {e}\n  {}", w.key, w.sql));
    let stats = &result.stats;
    let counters = Json::Obj(
        counters_of(stats).into_iter().map(|(k, v)| (k.to_owned(), Json::UInt(v))).collect(),
    );
    let times = Json::obj(vec![
        ("wall_s", Json::Float(stats.wall.as_secs_f64())),
        ("scan_s", Json::Float(stats.scan.total.as_secs_f64())),
        ("compile_s", Json::Float(stats.compile_time.as_secs_f64())),
        ("gate_wait_s", Json::Float(stats.gate_wait.as_secs_f64())),
    ]);
    Json::obj(vec![
        ("key", Json::Str(w.key.to_owned())),
        ("description", Json::Str(w.description.to_owned())),
        ("query", Json::Str(w.sql.clone())),
        (
            "scale",
            Json::obj(vec![
                ("narrow_rows", Json::UInt(scale.narrow_rows as u64)),
                ("wide_rows", Json::UInt(scale.wide_rows as u64)),
                ("join_rows", Json::UInt(scale.join_rows as u64)),
                ("higgs_events", Json::UInt(scale.higgs_events as u64)),
            ]),
        ),
        (
            "config",
            Json::obj(vec![
                ("parallelism", Json::UInt(pinned_config().parallelism as u64)),
                ("morsel_bytes", Json::UInt(pinned_config().morsel_bytes as u64)),
                ("read_chunk_bytes", Json::UInt(pinned_config().read_chunk_bytes as u64)),
            ]),
        ),
        ("counters", counters),
        ("times_s", times),
    ])
}

/// Where baseline artifacts live: `RAW_BENCH_BASELINE_DIR`, default the
/// current directory (the repo root when run from it, so artifacts are
/// committed alongside the code they describe).
pub fn baseline_dir() -> PathBuf {
    std::env::var("RAW_BENCH_BASELINE_DIR").map_or_else(|_| PathBuf::from("."), PathBuf::from)
}

/// The artifact path for a workload key.
pub fn baseline_path(key: &str) -> PathBuf {
    baseline_dir().join(format!("BENCH_{key}.json"))
}

/// Run every workload and write `BENCH_<key>.json` artifacts. Returns the
/// written paths.
pub fn write_baselines(scale: &Scale) -> Vec<PathBuf> {
    workloads()
        .iter()
        .map(|w| {
            let doc = run_one(scale, w);
            let path = baseline_path(w.key);
            std::fs::write(&path, doc.render_pretty(2))
                .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
            path
        })
        .collect()
}

/// The `reproduce` registry entry: write all baselines and summarize them.
pub fn baselines(scale: &Scale) -> ExpTable {
    let mut table = ExpTable::new(
        "Perf baselines — BENCH_<key>.json artifacts",
        vec![
            "key".into(),
            "rows_scanned".into(),
            "io_bytes".into(),
            "morsels".into(),
            "wall".into(),
            "artifact".into(),
        ],
    );
    table.note("counters are deterministic at this scale and diffed exactly by check_bench");
    table.note("times are machine-dependent and advisory");
    for w in &workloads() {
        let doc = run_one(scale, w);
        let path = baseline_path(w.key);
        std::fs::write(&path, doc.render_pretty(2))
            .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        let counter = |name: &str| {
            doc.get("counters")
                .and_then(|c| c.get(name))
                .and_then(Json::as_u64)
                .expect("counter present")
        };
        let wall = doc
            .get("times_s")
            .and_then(|t| t.get("wall_s"))
            .and_then(Json::as_f64)
            .expect("wall time present");
        table.row(vec![
            w.key.to_owned(),
            counter("rows_scanned").to_string(),
            counter("io_bytes").to_string(),
            counter("morsels").to_string(),
            format!("{wall:.3} s"),
            path.display().to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_scale() -> Scale {
        Scale {
            narrow_rows: 4_000,
            wide_rows: 1_000,
            join_rows: 2_000,
            higgs_events: 1_500,
            repeats: 1,
        }
    }

    /// The acceptance property: at a fixed scale, the deterministic
    /// counters of two independent runs render bitwise-identically.
    #[test]
    fn counters_are_bitwise_stable_across_runs() {
        let scale = test_scale();
        for w in &workloads() {
            let a = run_one(&scale, w);
            let b = run_one(&scale, w);
            let ca = a.get("counters").and_then(Json::as_obj).expect("counters");
            let cb = b.get("counters").and_then(Json::as_obj).expect("counters");
            let diffs = diff_counters(ca, cb);
            assert!(
                diffs.is_empty(),
                "counters drift across runs for {}:\n  {}",
                w.key,
                diffs.join("\n  ")
            );
            // Everything except times is stable, not just the counters.
            let strip = |doc: &Json| match doc {
                Json::Obj(pairs) => {
                    Json::Obj(pairs.iter().filter(|(k, _)| k != "times_s").cloned().collect())
                }
                other => other.clone(),
            };
            assert_eq!(strip(&a).render(), strip(&b).render(), "non-time fields drift: {}", w.key);
        }
    }

    #[test]
    fn every_workload_produces_all_counter_keys() {
        let scale = test_scale();
        let w = &workloads()[0];
        let doc = run_one(&scale, w);
        let counters = doc.get("counters").and_then(Json::as_obj).expect("counters object");
        let keys: Vec<&str> = counters.iter().map(|(k, _)| k.as_str()).collect();
        for (expected, _) in counters_of(&QueryStats::default()) {
            assert!(keys.contains(&expected), "missing counter key {expected}");
        }
        assert!(doc.get("counters").unwrap().get("rows_scanned").unwrap().as_u64().unwrap() > 0);
    }
}
