//! Criterion versions of the ablation experiments (reduced grid), for
//! regression tracking: index-aware vs index-blind ibin scans, and the
//! adaptive strategy against fixed ones.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use raw_bench::experiments::{q1, q2, system_config};
use raw_bench::{datasets, Scale};
use raw_engine::{AccessMode, ShredStrategy};
use raw_formats::datagen::literal_for_selectivity;

fn bench_scale() -> Scale {
    Scale { narrow_rows: 20_000, ..Scale::default() }
}

fn index_pruning(c: &mut Criterion) {
    let scale = bench_scale();
    let mut group = c.benchmark_group("ablation_index");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for (name, mode) in [("jit_index", AccessMode::Jit), ("insitu_blind", AccessMode::InSitu)] {
        for sel_pct in [10u32, 90] {
            let x = literal_for_selectivity(f64::from(sel_pct) / 100.0);
            group.bench_function(format!("{name}/sel{sel_pct}"), |b| {
                b.iter_batched(
                    || {
                        let e = datasets::engine_narrow_ibin(
                            &scale,
                            system_config(mode, ShredStrategy::FullColumns, 10),
                        );
                        e.query(&q1("file1", x)).unwrap();
                        e
                    },
                    |engine| engine.query(&q2("file1", x)).unwrap(),
                    BatchSize::LargeInput,
                );
            });
        }
    }
    group.finish();
}

fn adaptive_strategy(c: &mut Criterion) {
    let scale = bench_scale();
    let mut group = c.benchmark_group("ablation_adaptive");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for (name, strat) in [
        ("full", ShredStrategy::FullColumns),
        ("shreds", ShredStrategy::ColumnShreds),
        ("adaptive", ShredStrategy::Adaptive),
    ] {
        for sel_pct in [1u32, 100] {
            let x = literal_for_selectivity(f64::from(sel_pct) / 100.0);
            group.bench_function(format!("{name}/sel{sel_pct}"), |b| {
                b.iter_batched(
                    || {
                        let e = datasets::engine_narrow_csv(
                            &scale,
                            system_config(AccessMode::Jit, strat, 10),
                        );
                        e.query(&q1("file1", x)).unwrap();
                        e
                    },
                    |engine| engine.query(&q2("file1", x)).unwrap(),
                    BatchSize::LargeInput,
                );
            });
        }
    }
    group.finish();
}

criterion_group!(benches, index_pruning, adaptive_strategy);
criterion_main!(benches);
