//! Figures 11/12 (criterion): join projected-column placement — pipelined vs
//! pipeline-breaking side, Early vs Late, at mid selectivity.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use raw_bench::{datasets, Scale};
use raw_engine::{EngineConfig, JoinPlacement, ShredStrategy};
use raw_formats::datagen::literal_for_selectivity;

fn joins(c: &mut Criterion, group_name: &str, projected_table: &str) {
    let scale = Scale { join_rows: 8_000, ..Scale::default() };
    let x = literal_for_selectivity(0.4);
    let query = format!(
        "SELECT MAX({projected_table}.col11) FROM file1 JOIN file2 \
         ON file1.col1 = file2.col1 WHERE file2.col2 < {x}"
    );
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for (name, placement) in [("early", JoinPlacement::Early), ("late", JoinPlacement::Late)] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let e = datasets::engine_join_pair(
                        &scale,
                        EngineConfig {
                            shreds: ShredStrategy::ColumnShreds,
                            join_placement: placement,
                            ..EngineConfig::default()
                        },
                    );
                    e.query("SELECT MAX(col1) FROM file1").unwrap();
                    e.query("SELECT MAX(col1), MAX(col2) FROM file2").unwrap();
                    e
                },
                |engine| engine.query(&query).unwrap(),
                BatchSize::PerIteration,
            );
        });
    }
    group.finish();
}

fn fig11_pipelined(c: &mut Criterion) {
    joins(c, "fig11_join_pipelined_side", "file1");
}

fn fig12_breaking(c: &mut Criterion) {
    joins(c, "fig12_join_breaking_side", "file2");
}

criterion_group!(benches, fig11_pipelined, fig12_breaking);
criterion_main!(benches);
