//! Figure 1 (criterion): CSV access paths — cold Q1 and warm Q2 per system.
//!
//! Regression-tracking version of `reproduce fig1a fig1b` at a reduced grid.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use raw_bench::experiments::{q1, q2, system_config};
use raw_bench::{datasets, Scale};
use raw_engine::{AccessMode, ShredStrategy};
use raw_formats::datagen::literal_for_selectivity;

fn bench_scale() -> Scale {
    Scale { narrow_rows: 20_000, ..Scale::default() }
}

fn systems() -> Vec<(&'static str, AccessMode)> {
    vec![
        ("dbms", AccessMode::Dbms),
        ("external", AccessMode::ExternalTables),
        ("insitu", AccessMode::InSitu),
        ("jit", AccessMode::Jit),
    ]
}

fn cold_q1(c: &mut Criterion) {
    let scale = bench_scale();
    let x = literal_for_selectivity(0.4);
    let mut group = c.benchmark_group("fig1a_cold_q1");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for (name, mode) in systems() {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let e = datasets::engine_narrow_csv(
                        &scale,
                        system_config(mode, ShredStrategy::FullColumns, 10),
                    );
                    e.drop_file_caches();
                    e
                },
                |engine| engine.query(&q1("file1", x)).unwrap(),
                BatchSize::PerIteration,
            );
        });
    }
    group.finish();
}

fn warm_q2(c: &mut Criterion) {
    let scale = bench_scale();
    let x = literal_for_selectivity(0.4);
    let mut group = c.benchmark_group("fig1b_warm_q2");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for (name, mode) in systems() {
        if mode == AccessMode::ExternalTables {
            continue; // an order of magnitude slower; excluded as in the paper
        }
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let e = datasets::engine_narrow_csv(
                        &scale,
                        system_config(mode, ShredStrategy::FullColumns, 10),
                    );
                    e.query(&q1("file1", x)).unwrap();
                    e
                },
                |engine| engine.query(&q2("file1", x)).unwrap(),
                BatchSize::PerIteration,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, cold_q1, warm_q2);
criterion_main!(benches);
