//! Figure 13 (criterion): morsel-parallel scaling — the fig1 cold CSV
//! aggregate workload, a grouped-aggregate workload, a sorted-ibin pruned
//! scan, and a rootsim muon-collection aggregate at 1/2/4/8 worker threads.
//!
//! Regression-tracking version of `reproduce fig13` at a reduced grid. The
//! morsel grid depends only on the file, so all thread counts compute the
//! same answer; wall time should drop toward the physical core count. The
//! grouped case exercises the per-morsel hash-aggregate partial states and
//! their morsel-ordered merge; the ibin case exercises page-aligned morsels
//! with per-morsel zone-index pruning; the collection case exercises
//! item-sized event-range morsels over exploded item rows.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use raw_bench::experiments::{grouped_q, q1, system_config};
use raw_bench::{datasets, Scale};
use raw_engine::{AccessMode, EngineConfig, ShredStrategy};
use raw_formats::datagen::literal_for_selectivity;

fn bench_scale() -> Scale {
    Scale { narrow_rows: 20_000, ..Scale::default() }
}

fn bench_cold_query(
    c: &mut Criterion,
    group_name: &str,
    sql: String,
    make_engine: fn(&raw_bench::Scale, EngineConfig) -> raw_engine::RawEngine,
) {
    let scale = bench_scale();
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(format!("threads_{threads}"), |b| {
            b.iter_batched(
                || {
                    let e = make_engine(
                        &scale,
                        EngineConfig {
                            parallelism: threads,
                            ..system_config(AccessMode::Jit, ShredStrategy::FullColumns, 10)
                        },
                    );
                    e.drop_file_caches();
                    e
                },
                |engine| engine.query(&sql).unwrap(),
                BatchSize::PerIteration,
            );
        });
    }
    group.finish();
}

fn cold_q1_by_threads(c: &mut Criterion) {
    let x = literal_for_selectivity(0.4);
    bench_cold_query(
        c,
        "fig13_parallel_scaling_cold_q1",
        q1("file1", x),
        datasets::engine_narrow_csv,
    );
}

fn cold_grouped_agg_by_threads(c: &mut Criterion) {
    let x = literal_for_selectivity(0.4);
    // Bounded-cardinality group key (1024 groups): an all-distinct key
    // would make the morsel-order state merge O(input) and mask scaling.
    bench_cold_query(
        c,
        "fig13_parallel_scaling_cold_grouped",
        grouped_q("file1", x),
        datasets::engine_grouped_csv,
    );
}

fn cold_ibin_pruned_agg_by_threads(c: &mut Criterion) {
    let x = literal_for_selectivity(0.4);
    // Sorted by col1 (B-tree regime): each page-aligned morsel intersects
    // the compiled candidate ranges, so pruned tails are no-op morsels.
    bench_cold_query(
        c,
        "fig13_parallel_scaling_cold_ibin",
        q1("file1", x),
        datasets::engine_narrow_ibin,
    );
}

fn cold_collection_agg_by_threads(c: &mut Criterion) {
    bench_cold_query(
        c,
        "fig13_parallel_scaling_cold_collection",
        "SELECT MAX(pt), COUNT(pt) FROM muons WHERE pt > 20.0".to_owned(),
        datasets::engine_muon_collection,
    );
}

criterion_group!(
    benches,
    cold_q1_by_threads,
    cold_grouped_agg_by_threads,
    cold_ibin_pruned_agg_by_threads,
    cold_collection_agg_by_threads
);
criterion_main!(benches);
