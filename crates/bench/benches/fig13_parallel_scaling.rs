//! Figure 13 (criterion): morsel-parallel scaling — the fig1 cold CSV
//! aggregate workload at 1/2/4/8 worker threads.
//!
//! Regression-tracking version of `reproduce fig13` at a reduced grid. The
//! morsel grid depends only on the file, so all thread counts compute the
//! same answer; wall time should drop toward the physical core count.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use raw_bench::experiments::{q1, system_config};
use raw_bench::{datasets, Scale};
use raw_engine::{AccessMode, EngineConfig, ShredStrategy};
use raw_formats::datagen::literal_for_selectivity;

fn bench_scale() -> Scale {
    Scale { narrow_rows: 20_000, ..Scale::default() }
}

fn cold_q1_by_threads(c: &mut Criterion) {
    let scale = bench_scale();
    let x = literal_for_selectivity(0.4);
    let mut group = c.benchmark_group("fig13_parallel_scaling_cold_q1");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(format!("threads_{threads}"), |b| {
            b.iter_batched(
                || {
                    let mut e = datasets::engine_narrow_csv(
                        &scale,
                        EngineConfig {
                            parallelism: threads,
                            ..system_config(AccessMode::Jit, ShredStrategy::FullColumns, 10)
                        },
                    );
                    e.drop_file_caches();
                    e
                },
                |mut engine| engine.query(&q1("file1", x)).unwrap(),
                BatchSize::PerIteration,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, cold_q1_by_threads);
criterion_main!(benches);
