//! Table 2 (criterion): first-query cost over the 120-column tables —
//! loading (DBMS) vs in-situ JIT, CSV vs binary.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use raw_bench::experiments::{q1, system_config};
use raw_bench::{datasets, Scale};
use raw_engine::{AccessMode, ShredStrategy};
use raw_formats::datagen::literal_for_selectivity;

fn first_query(c: &mut Criterion) {
    let scale = Scale { wide_rows: 4_000, ..Scale::default() };
    let x = literal_for_selectivity(0.4);
    let mut group = c.benchmark_group("table2_first_query_wide");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for binary in [false, true] {
        let fmt = if binary { "binary" } else { "csv" };
        for (name, mode) in [("dbms", AccessMode::Dbms), ("jit", AccessMode::Jit)] {
            let id = format!("{fmt}/{name}");
            group.bench_function(&id, |b| {
                b.iter_batched(
                    || {
                        let e = datasets::engine_wide(
                            &scale,
                            system_config(mode, ShredStrategy::FullColumns, 10),
                            binary,
                        );
                        e.drop_file_caches();
                        e
                    },
                    |engine| engine.query(&q1("wide", x)).unwrap(),
                    BatchSize::PerIteration,
                );
            });
        }
    }
    group.finish();
}

criterion_group!(benches, first_query);
criterion_main!(benches);
