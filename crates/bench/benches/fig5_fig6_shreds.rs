//! Figures 5/6 (criterion): full vs shredded columns over CSV and binary, at
//! low (5%) and full (100%) selectivity — the endpoints of the sweep.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use raw_bench::experiments::{q1, q2, system_config};
use raw_bench::{datasets, Scale};
use raw_engine::{AccessMode, EngineConfig, RawEngine, ShredStrategy};
use raw_formats::datagen::literal_for_selectivity;

fn bench(c: &mut Criterion, group_name: &str, binary: bool) {
    let scale = Scale { narrow_rows: 20_000, ..Scale::default() };
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for (strategy_name, shreds) in
        [("full", ShredStrategy::FullColumns), ("shreds", ShredStrategy::ColumnShreds)]
    {
        for sel in [0.05_f64, 1.0] {
            let x = literal_for_selectivity(sel);
            let id = format!("{strategy_name}/sel{:.0}%", sel * 100.0);
            group.bench_function(&id, |b| {
                b.iter_batched(
                    || -> RawEngine {
                        let config = EngineConfig {
                            cache_shreds: false,
                            ..system_config(AccessMode::Jit, shreds, 10)
                        };
                        let e = if binary {
                            datasets::engine_narrow_fbin(&scale, config)
                        } else {
                            datasets::engine_narrow_csv(&scale, config)
                        };
                        e.query(&q1("file1", x)).unwrap();
                        e
                    },
                    |engine| engine.query(&q2("file1", x)).unwrap(),
                    BatchSize::PerIteration,
                );
            });
        }
    }
    group.finish();
}

fn fig5_csv(c: &mut Criterion) {
    bench(c, "fig5_csv_full_vs_shreds", false);
}

fn fig6_binary(c: &mut Criterion) {
    bench(c, "fig6_binary_full_vs_shreds", true);
}

criterion_group!(benches, fig5_csv, fig6_binary);
criterion_main!(benches);
