//! Tokenizer-kernel microbenchmarks: the SWAR word-at-a-time scan kernels
//! against their byte-at-a-time scalar references, on CSV-shaped buffers.
//!
//! These are the regression tripwires for the hot-path speed pass: every
//! in-situ/JIT CSV scan, the morsel partitioner's newline probe, and the
//! dialect sniffer all bottom out in these kernels, so the SWAR variants
//! must beat the scalar loops on realistic row shapes (field widths of a
//! few bytes to a few dozen — matches every 8-byte word, not every byte).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use raw_formats::csv::kernels::{self, scalar};
use raw_formats::csv::tokenizer::general_next_field;
use raw_formats::csv::{DELIMITER, NEWLINE, QUOTE};
use raw_formats::rzb;

/// A CSV-shaped buffer of roughly `bytes` bytes: mixed narrow and wide
/// fields, an occasional quoted field, one record per line.
fn csv_buffer(bytes: usize) -> Vec<u8> {
    let mut buf = Vec::with_capacity(bytes + 64);
    let mut i = 0u64;
    while buf.len() < bytes {
        buf.extend_from_slice(i.to_string().as_bytes());
        buf.push(DELIMITER);
        buf.extend_from_slice(b"3.14159");
        buf.push(DELIMITER);
        if i.is_multiple_of(7) {
            buf.push(QUOTE);
            buf.extend_from_slice(b"quoted, with delimiter");
            buf.push(QUOTE);
        } else {
            buf.extend_from_slice(b"a medium width text field");
        }
        buf.push(DELIMITER);
        buf.extend_from_slice(b"tail");
        buf.push(NEWLINE);
        i += 1;
    }
    buf
}

/// Walk the buffer with repeated first-match calls — the tokenizer's access
/// pattern — and fold the match positions so the work cannot be elided.
fn walk<F: Fn(&[u8]) -> Option<usize>>(buf: &[u8], find: F) -> usize {
    let mut pos = 0usize;
    let mut acc = 0usize;
    while let Some(hit) = find(&buf[pos..]) {
        acc ^= pos + hit;
        pos += hit + 1;
    }
    acc
}

fn count_kernels(c: &mut Criterion) {
    let buf = csv_buffer(1 << 20);
    let mut group = c.benchmark_group("kernels_count");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    group.throughput(Throughput::Bytes(buf.len() as u64));
    group.bench_function("swar/count_newlines", |b| {
        b.iter(|| kernels::count_byte(NEWLINE, black_box(&buf)))
    });
    group.bench_function("scalar/count_newlines", |b| {
        b.iter(|| scalar::count_byte(NEWLINE, black_box(&buf)))
    });
    group.bench_function("swar/count_newline_quote", |b| {
        b.iter(|| kernels::count2(NEWLINE, QUOTE, black_box(&buf)))
    });
    group.bench_function("scalar/count_newline_quote", |b| {
        b.iter(|| scalar::count2(NEWLINE, QUOTE, black_box(&buf)))
    });
    group.bench_function("swar/count_dialect3", |b| {
        b.iter(|| kernels::count3(DELIMITER, NEWLINE, QUOTE, black_box(&buf)))
    });
    group.bench_function("scalar/count_dialect3", |b| {
        b.iter(|| scalar::count3(DELIMITER, NEWLINE, QUOTE, black_box(&buf)))
    });
    group.finish();
}

fn match_kernels(c: &mut Criterion) {
    let buf = csv_buffer(1 << 20);
    let mut group = c.benchmark_group("kernels_match");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    group.throughput(Throughput::Bytes(buf.len() as u64));
    group.bench_function("swar/next_newline", |b| {
        b.iter(|| walk(black_box(&buf), |s| kernels::memchr(NEWLINE, s)))
    });
    group.bench_function("scalar/next_newline", |b| {
        b.iter(|| walk(black_box(&buf), |s| scalar::memchr(NEWLINE, s)))
    });
    group.bench_function("swar/next_field_edge", |b| {
        b.iter(|| walk(black_box(&buf), |s| kernels::memchr3(DELIMITER, NEWLINE, QUOTE, s)))
    });
    group.bench_function("scalar/next_field_edge", |b| {
        b.iter(|| walk(black_box(&buf), |s| scalar::memchr3(DELIMITER, NEWLINE, QUOTE, s)))
    });
    group.finish();
}

fn tokenizer_walk(c: &mut Criterion) {
    let buf = csv_buffer(1 << 20);
    let mut group = c.benchmark_group("kernels_tokenize");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    group.throughput(Throughput::Bytes(buf.len() as u64));
    group.bench_function("general_next_field/full_file", |b| {
        b.iter(|| {
            let buf = black_box(&buf[..]);
            let mut pos = 0usize;
            let mut fields = 0usize;
            while pos < buf.len() {
                let (span, next, _record_end) = general_next_field(buf, pos);
                fields += usize::from(span.end >= span.start);
                pos = next;
            }
            fields
        })
    });
    group.finish();
}

fn rzb_codec(c: &mut Criterion) {
    let buf = csv_buffer(1 << 20);
    let mut group = c.benchmark_group("rzb_decode");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    // Throughput in *uncompressed* bytes — the number a scan consumes per
    // second — so decode speed is directly comparable to the tokenizer
    // kernels above it in the pipeline.
    group.throughput(Throughput::Bytes(buf.len() as u64));
    for block in [64 << 10, 256 << 10] {
        let packed = rzb::compress(&buf, block);
        let index = rzb::parse_index(&packed).expect("valid container");
        group.bench_function(format!("decompress_all/block_{}k", block >> 10), |b| {
            b.iter(|| rzb::decompress_all(black_box(&packed), &index, None).expect("clean decode"))
        });
        group.bench_function(format!("compress/block_{}k", block >> 10), |b| {
            b.iter(|| rzb::compress(black_box(&buf), block))
        });
    }
    group.finish();
}

criterion_group!(benches, count_kernels, match_kernels, tokenizer_walk, rzb_codec);
criterion_main!(benches);
