//! Table 3 (criterion): the Higgs analysis — hand-written object-at-a-time
//! vs RAW, cold and warm.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use raw_bench::{datasets, Scale};
use raw_engine::EngineConfig;
use raw_formats::file_buffer::FileBufferPool;
use raw_higgs::{HandwrittenAnalysis, HiggsCuts, RawHiggsAnalysis};

fn higgs(c: &mut Criterion) {
    let scale = Scale { higgs_events: 10_000, ..Scale::default() };
    let dataset = datasets::higgs(&scale);
    let cuts = HiggsCuts::default();
    let mut group = c.benchmark_group("table3_higgs");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));

    group.bench_function("handwritten/cold", |b| {
        b.iter_batched(
            || {
                let files = FileBufferPool::new();
                HandwrittenAnalysis::open(&files, &dataset.root_path, &dataset.goodruns_path, cuts)
                    .unwrap()
            },
            |mut analysis| analysis.run(),
            BatchSize::PerIteration,
        );
    });
    group.bench_function("handwritten/warm", |b| {
        b.iter_batched(
            || {
                let files = FileBufferPool::new();
                let mut a = HandwrittenAnalysis::open(
                    &files,
                    &dataset.root_path,
                    &dataset.goodruns_path,
                    cuts,
                )
                .unwrap();
                a.run(); // populate the object pool
                a
            },
            |mut analysis| analysis.run(),
            BatchSize::PerIteration,
        );
    });
    group.bench_function("raw/cold", |b| {
        b.iter_batched(
            || RawHiggsAnalysis::open(&dataset, EngineConfig::default(), cuts),
            |mut analysis| analysis.run().unwrap(),
            BatchSize::PerIteration,
        );
    });
    group.bench_function("raw/warm", |b| {
        b.iter_batched(
            || {
                let mut a = RawHiggsAnalysis::open(&dataset, EngineConfig::default(), cuts);
                a.run().unwrap(); // populate the shred pool
                a
            },
            |mut analysis| analysis.run().unwrap(),
            BatchSize::PerIteration,
        );
    });
    group.finish();
}

criterion_group!(benches, higgs);
criterion_main!(benches);
