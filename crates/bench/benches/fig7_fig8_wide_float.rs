//! Figures 7/8 (criterion): 120-column floating-point tables — DBMS vs full
//! vs shreds at 10% selectivity, CSV and binary.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use raw_bench::experiments::{q1, q2, system_config};
use raw_bench::{datasets, Scale};
use raw_engine::{AccessMode, EngineConfig, ShredStrategy};
use raw_formats::datagen::literal_for_selectivity;

fn bench(c: &mut Criterion, group_name: &str, binary: bool) {
    let scale = Scale { wide_rows: 4_000, ..Scale::default() };
    let x = literal_for_selectivity(0.1);
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for (name, mode, shreds) in [
        ("dbms", AccessMode::Dbms, ShredStrategy::FullColumns),
        ("full", AccessMode::Jit, ShredStrategy::FullColumns),
        ("shreds", AccessMode::Jit, ShredStrategy::ColumnShreds),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let e = datasets::engine_wide(
                        &scale,
                        EngineConfig { cache_shreds: false, ..system_config(mode, shreds, 10) },
                        binary,
                    );
                    e.query(&q1("wide", x)).unwrap();
                    e
                },
                |engine| engine.query(&q2("wide", x)).unwrap(),
                BatchSize::PerIteration,
            );
        });
    }
    group.finish();
}

fn fig7_wide_csv(c: &mut Criterion) {
    bench(c, "fig7_wide_csv_float", false);
}

fn fig8_wide_binary(c: &mut Criterion) {
    bench(c, "fig8_wide_binary_float", true);
}

criterion_group!(benches, fig7_wide_csv, fig8_wide_binary);
criterion_main!(benches);
