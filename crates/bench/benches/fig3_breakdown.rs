//! Figure 3 (criterion): the scan-phase breakdown inputs — in-situ vs JIT
//! CSV scans, isolated (no cache effects), which is what the phase profile
//! decomposes.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use raw_bench::experiments::{q1, q2, system_config};
use raw_bench::{datasets, Scale};
use raw_engine::{AccessMode, EngineConfig, ShredStrategy};
use raw_formats::datagen::literal_for_selectivity;

fn scan_cost(c: &mut Criterion) {
    let scale = Scale { narrow_rows: 20_000, ..Scale::default() };
    let x = literal_for_selectivity(0.4);
    let mut group = c.benchmark_group("fig3_scan_cost_q2");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for (name, mode) in [("insitu", AccessMode::InSitu), ("jit", AccessMode::Jit)] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let e = datasets::engine_narrow_csv(
                        &scale,
                        EngineConfig {
                            cache_shreds: false,
                            ..system_config(mode, ShredStrategy::FullColumns, 10)
                        },
                    );
                    e.query(&q1("file1", x)).unwrap();
                    e
                },
                |engine| engine.query(&q2("file1", x)).unwrap(),
                BatchSize::PerIteration,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, scan_cost);
criterion_main!(benches);
