//! Figure 9 (criterion): speculative multi-column shreds with two
//! predicates, at the crossover-relevant selectivities.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use raw_bench::experiments::{q1, system_config};
use raw_bench::{datasets, Scale};
use raw_engine::{AccessMode, EngineConfig, ShredStrategy};
use raw_formats::datagen::literal_for_selectivity;

fn multicolumn(c: &mut Criterion) {
    let scale = Scale { narrow_rows: 20_000, ..Scale::default() };
    let mut group = c.benchmark_group("fig9_two_predicates");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for (name, shreds) in [
        ("full", ShredStrategy::FullColumns),
        ("shreds", ShredStrategy::ColumnShreds),
        ("multicolumn", ShredStrategy::MultiColumnShreds),
    ] {
        for sel in [0.1_f64, 0.8] {
            let x = literal_for_selectivity(sel);
            let query = format!("SELECT MAX(col6) FROM file1 WHERE col1 < {x} AND col5 < {x}");
            let id = format!("{name}/sel{:.0}%", sel * 100.0);
            group.bench_function(&id, |b| {
                b.iter_batched(
                    || {
                        let e = datasets::engine_narrow_csv(
                            &scale,
                            EngineConfig {
                                cache_shreds: false,
                                ..system_config(AccessMode::Jit, shreds, 10)
                            },
                        );
                        e.query(&q1("file1", x)).unwrap();
                        e
                    },
                    |engine| engine.query(&query).unwrap(),
                    BatchSize::PerIteration,
                );
            });
        }
    }
    group.finish();
}

criterion_group!(benches, multicolumn);
criterion_main!(benches);
