//! Figure 14 (criterion): cold-scan overlap — chunk-streamed cold reads
//! (reader thread + availability-gated morsel dispatch) against the
//! blocking cold read, on the fig1 CSV and fbin aggregate workloads.
//!
//! Regression-tracking version of `reproduce fig14`. Each iteration builds
//! a fresh engine and drops file caches, so every measured query pays the
//! cold read; the chunk-size axis sweeps blocking (0) against streamed
//! chunk sizes. Results are asserted identical across read paths by the
//! `cold_equivalence` suite — this bench tracks only the wall-time effect
//! of overlapping the read with the scan.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use raw_bench::experiments::{q1, system_config};
use raw_bench::{datasets, Scale};
use raw_engine::{AccessMode, EngineConfig, RawEngine, ShredStrategy};
use raw_formats::datagen::literal_for_selectivity;

fn bench_scale() -> Scale {
    Scale { narrow_rows: 20_000, ..Scale::default() }
}

fn bench_cold_read_paths(
    c: &mut Criterion,
    group_name: &str,
    make_engine: fn(&Scale, EngineConfig) -> RawEngine,
) {
    let scale = bench_scale();
    let sql = q1("file1", literal_for_selectivity(0.4));
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for (label, chunk) in [("blocking", 0usize), ("stream_4m", 4 << 20), ("stream_64k", 64 << 10)] {
        group.bench_function(label, |b| {
            b.iter_batched(
                || {
                    let e = make_engine(
                        &scale,
                        EngineConfig {
                            parallelism: 4,
                            read_chunk_bytes: chunk,
                            ..system_config(AccessMode::Jit, ShredStrategy::FullColumns, 10)
                        },
                    );
                    e.drop_file_caches();
                    e
                },
                |engine| engine.query(&sql).unwrap(),
                BatchSize::PerIteration,
            );
        });
    }
    group.finish();
}

fn cold_overlap_csv(c: &mut Criterion) {
    bench_cold_read_paths(c, "fig14_cold_overlap_csv", datasets::engine_narrow_csv);
}

fn cold_overlap_fbin(c: &mut Criterion) {
    bench_cold_read_paths(c, "fig14_cold_overlap_fbin", datasets::engine_narrow_fbin);
}

criterion_group!(benches, cold_overlap_csv, cold_overlap_fbin);
criterion_main!(benches);
