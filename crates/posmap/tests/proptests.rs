//! Property tests: positional-map navigation must agree with full
//! tokenization on arbitrary CSV-shaped position data.

use proptest::prelude::*;

use raw_posmap::{Lookup, PosMapBuilder, TrackingPolicy};

proptest! {
    #[test]
    fn lookup_partitions_columns(
        tracked in proptest::collection::btree_set(0usize..40, 1..10),
        probe in 0usize..40,
    ) {
        let mut b = PosMapBuilder::new(tracked.iter().copied().collect());
        // One synthetic row so the map is non-empty.
        for slot in 0..tracked.len() {
            b.record(slot, slot as u64 * 10, 3);
        }
        let map = b.finish().unwrap();

        match map.lookup(probe) {
            Lookup::Exact { positions, lengths } => {
                prop_assert!(tracked.contains(&probe));
                prop_assert_eq!(positions.len(), 1);
                prop_assert_eq!(lengths.len(), 1);
            }
            Lookup::Nearest { tracked_col, skip_fields, .. } => {
                prop_assert!(!tracked.contains(&probe));
                prop_assert!(tracked.contains(&tracked_col));
                prop_assert!(tracked_col < probe);
                prop_assert_eq!(skip_fields, probe - tracked_col);
                // It must be the *greatest* tracked column before the probe.
                prop_assert!(tracked.iter().all(|&t| t <= tracked_col || t > probe));
            }
            Lookup::Miss => {
                prop_assert!(tracked.iter().all(|&t| t > probe));
            }
        }
    }

    #[test]
    fn merge_is_union_with_newer_winning(
        cols_a in proptest::collection::btree_set(0usize..20, 1..6),
        cols_b in proptest::collection::btree_set(0usize..20, 1..6),
        rows in 1usize..30,
    ) {
        let build = |cols: &std::collections::BTreeSet<usize>, base: u64| {
            let mut b = PosMapBuilder::new(cols.iter().copied().collect());
            for r in 0..rows as u64 {
                for slot in 0..cols.len() {
                    b.record(slot, base + r * 100 + slot as u64, 2);
                }
            }
            b.finish().unwrap()
        };
        let mut a = build(&cols_a, 0);
        let b = build(&cols_b, 1_000_000);
        a.merge(&b).unwrap();

        let expected: std::collections::BTreeSet<usize> =
            cols_a.union(&cols_b).copied().collect();
        prop_assert_eq!(
            a.tracked_columns().iter().copied().collect::<std::collections::BTreeSet<_>>(),
            expected
        );
        // Overlapping columns carry b's (newer) positions.
        for &c in cols_b.iter() {
            let pos = a.position(c, 0).unwrap();
            prop_assert!(pos >= 1_000_000, "column {c} kept stale positions");
        }
        for &c in cols_a.difference(&cols_b) {
            let pos = a.position(c, 0).unwrap();
            prop_assert!(pos < 1_000_000);
        }
    }

    #[test]
    fn policies_resolve_within_bounds(
        ncols in 1usize..50,
        stride in 1usize..12,
        query_cols in proptest::collection::vec(0usize..60, 0..8),
    ) {
        for policy in [
            TrackingPolicy::EveryK { stride },
            TrackingPolicy::Explicit(query_cols.clone()),
            TrackingPolicy::QueryColumns,
            TrackingPolicy::None,
        ] {
            let resolved = policy.resolve(ncols, &query_cols);
            prop_assert!(resolved.iter().all(|&c| c < ncols), "{policy:?}");
            prop_assert!(resolved.windows(2).all(|w| w[0] < w[1]), "sorted+dedup");
        }
        // EveryK always tracks column 0 (row starts).
        let every = TrackingPolicy::EveryK { stride }.resolve(ncols, &[]);
        prop_assert_eq!(every.first().copied(), Some(0));
    }
}
