//! Tracking policies: which columns a positional map records.

/// Decides the set of tracked columns (source ordinals) for a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrackingPolicy {
    /// Track every `stride`-th column starting at 0 (the paper's "every 10
    /// columns" tracks columns 1, 11, 21, … in its 1-based numbering).
    EveryK {
        /// Distance between tracked columns (≥ 1).
        stride: usize,
    },
    /// Track exactly these columns (sorted, deduplicated on resolve).
    Explicit(Vec<usize>),
    /// Track every column the query touches (adaptive default).
    QueryColumns,
    /// Track nothing (pure re-parsing, external-tables style).
    None,
}

impl TrackingPolicy {
    /// Resolve the tracked set for a file with `ncols` columns, given the
    /// columns the current query touches (used by `QueryColumns`).
    pub fn resolve(&self, ncols: usize, query_columns: &[usize]) -> Vec<usize> {
        let mut cols = match self {
            TrackingPolicy::EveryK { stride } => {
                let s = (*stride).max(1);
                (0..ncols).step_by(s).collect()
            }
            TrackingPolicy::Explicit(cols) => cols.iter().copied().filter(|&c| c < ncols).collect(),
            TrackingPolicy::QueryColumns => {
                query_columns.iter().copied().filter(|&c| c < ncols).collect()
            }
            TrackingPolicy::None => Vec::new(),
        };
        cols.sort_unstable();
        cols.dedup();
        cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_k() {
        assert_eq!(TrackingPolicy::EveryK { stride: 10 }.resolve(30, &[]), vec![0, 10, 20]);
        assert_eq!(TrackingPolicy::EveryK { stride: 7 }.resolve(30, &[]), vec![0, 7, 14, 21, 28]);
        assert_eq!(TrackingPolicy::EveryK { stride: 1 }.resolve(3, &[]), vec![0, 1, 2]);
        // stride 0 is clamped to 1 rather than looping forever
        assert_eq!(TrackingPolicy::EveryK { stride: 0 }.resolve(2, &[]), vec![0, 1]);
    }

    #[test]
    fn explicit_filters_and_sorts() {
        let p = TrackingPolicy::Explicit(vec![9, 2, 2, 99]);
        assert_eq!(p.resolve(10, &[]), vec![2, 9]);
    }

    #[test]
    fn query_columns() {
        let p = TrackingPolicy::QueryColumns;
        assert_eq!(p.resolve(10, &[4, 1, 4]), vec![1, 4]);
        assert_eq!(p.resolve(3, &[7]), Vec::<usize>::new());
    }

    #[test]
    fn none_tracks_nothing() {
        assert_eq!(TrackingPolicy::None.resolve(10, &[1, 2]), Vec::<usize>::new());
    }
}
