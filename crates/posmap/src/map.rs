//! The positional map data structure and its builder.

use std::fmt;

/// A populated positional map: per tracked column, the byte position of the
/// field's first byte in every row, plus (always) each field's length —
/// storing lengths is what lets the access path run the custom length-aware
//  `atoi` the paper describes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PositionalMap {
    /// Tracked source ordinals, ascending.
    tracked: Vec<usize>,
    /// `positions[slot][row]` = byte offset of field start.
    positions: Vec<Vec<u64>>,
    /// `lengths[slot][row]` = field length in bytes.
    lengths: Vec<Vec<u32>>,
    rows: u64,
}

/// Result of asking the map how to reach a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup<'a> {
    /// The column is tracked: jump straight to each row's field.
    Exact {
        /// Positions of the requested column, one per row.
        positions: &'a [u64],
        /// Field lengths, one per row.
        lengths: &'a [u32],
    },
    /// A preceding column is tracked: jump there, then incrementally parse
    /// `skip_fields` fields forward.
    Nearest {
        /// The tracked column the caller should jump to.
        tracked_col: usize,
        /// Positions of the tracked column, one per row.
        positions: &'a [u64],
        /// Fields to skip from there to reach the requested column.
        skip_fields: usize,
    },
    /// No tracked column at or before the requested one: full parse needed.
    Miss,
}

impl PositionalMap {
    /// Tracked source ordinals.
    pub fn tracked_columns(&self) -> &[usize] {
        &self.tracked
    }

    /// Whether `col` is tracked exactly.
    pub fn tracks(&self, col: usize) -> bool {
        self.tracked.binary_search(&col).is_ok()
    }

    /// Number of rows mapped.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Whether the map tracks no columns (or no rows).
    pub fn is_empty(&self) -> bool {
        self.tracked.is_empty() || self.rows == 0
    }

    /// Approximate heap footprint (the map-size side of the paper's
    /// "number of positions to track vs future benefits" trade-off).
    pub fn heap_bytes(&self) -> usize {
        self.positions.iter().map(|v| v.len() * 8).sum::<usize>()
            + self.lengths.iter().map(|v| v.len() * 4).sum::<usize>()
            + self.tracked.len() * std::mem::size_of::<usize>()
    }

    /// How to reach `col`: exact jump, nearest-then-parse, or miss.
    pub fn lookup(&self, col: usize) -> Lookup<'_> {
        match self.tracked.binary_search(&col) {
            Ok(slot) => {
                Lookup::Exact { positions: &self.positions[slot], lengths: &self.lengths[slot] }
            }
            Err(0) => Lookup::Miss,
            Err(ins) => {
                let slot = ins - 1;
                let tracked_col = self.tracked[slot];
                Lookup::Nearest {
                    tracked_col,
                    positions: &self.positions[slot],
                    skip_fields: col - tracked_col,
                }
            }
        }
    }

    /// Position of `col` (must be tracked) at `row`.
    pub fn position(&self, col: usize, row: u64) -> Option<u64> {
        let slot = self.tracked.binary_search(&col).ok()?;
        self.positions[slot].get(row as usize).copied()
    }

    /// Field length of `col` (must be tracked) at `row`.
    pub fn length(&self, col: usize, row: u64) -> Option<u32> {
        let slot = self.tracked.binary_search(&col).ok()?;
        self.lengths[slot].get(row as usize).copied()
    }

    /// Merge another map over the same file: union of tracked columns. On
    /// overlap the other map's vectors win (they are newer). Both maps must
    /// cover the same number of rows.
    pub fn merge(&mut self, other: &PositionalMap) -> Result<(), MergeError> {
        if self.rows != other.rows && !self.is_empty() && !other.is_empty() {
            return Err(MergeError { ours: self.rows, theirs: other.rows });
        }
        for (i, &col) in other.tracked.iter().enumerate() {
            match self.tracked.binary_search(&col) {
                Ok(slot) => {
                    self.positions[slot] = other.positions[i].clone();
                    self.lengths[slot] = other.lengths[i].clone();
                }
                Err(ins) => {
                    self.tracked.insert(ins, col);
                    self.positions.insert(ins, other.positions[i].clone());
                    self.lengths.insert(ins, other.lengths[i].clone());
                }
            }
        }
        self.rows = self.rows.max(other.rows);
        Ok(())
    }

    /// Append another map's rows *below* this one's: row-wise concatenation
    /// over the **same tracked columns**. This is how per-morsel positional-
    /// map fragments built by parallel scans combine into the file-wide map —
    /// fragment `k+1` covers the rows immediately following fragment `k`, so
    /// appending in morsel order reproduces the serially-built map exactly
    /// (positions are absolute byte offsets and need no rebasing).
    pub fn append(&mut self, other: &PositionalMap) -> Result<(), AppendError> {
        if other.rows == 0 {
            return Ok(());
        }
        if self.rows == 0 && self.tracked.is_empty() {
            *self = other.clone();
            return Ok(());
        }
        if self.tracked != other.tracked {
            return Err(AppendError { ours: self.tracked.clone(), theirs: other.tracked.clone() });
        }
        for (slot, _) in self.tracked.iter().enumerate() {
            self.positions[slot].extend_from_slice(&other.positions[slot]);
            self.lengths[slot].extend_from_slice(&other.lengths[slot]);
        }
        self.rows += other.rows;
        Ok(())
    }
}

/// Tracked-column mismatch while appending positional-map fragments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppendError {
    /// Tracked columns of the receiving map.
    pub ours: Vec<usize>,
    /// Tracked columns of the incoming fragment.
    pub theirs: Vec<usize>,
}

impl fmt::Display for AppendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot append positional-map fragments over different tracked \
             columns ({:?} vs {:?})",
            self.ours, self.theirs
        )
    }
}

impl std::error::Error for AppendError {}

/// Row-count mismatch while merging two positional maps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeError {
    /// Rows in the receiving map.
    pub ours: u64,
    /// Rows in the incoming map.
    pub theirs: u64,
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot merge positional maps over different row counts ({} vs {})",
            self.ours, self.theirs
        )
    }
}

impl std::error::Error for MergeError {}

/// Builds a positional map while a scan walks the file.
///
/// The scan calls [`PosMapBuilder::record`] as it passes the start of each
/// tracked field; the builder checks nothing per call (hot path) and
/// validates rectangularity at [`PosMapBuilder::finish`].
#[derive(Debug, Clone)]
pub struct PosMapBuilder {
    tracked: Vec<usize>,
    positions: Vec<Vec<u64>>,
    lengths: Vec<Vec<u32>>,
}

impl PosMapBuilder {
    /// Start building a map over the given tracked columns (will be sorted
    /// and deduplicated).
    pub fn new(mut tracked: Vec<usize>) -> PosMapBuilder {
        tracked.sort_unstable();
        tracked.dedup();
        let n = tracked.len();
        PosMapBuilder { tracked, positions: vec![Vec::new(); n], lengths: vec![Vec::new(); n] }
    }

    /// Pre-size per-column vectors when the row count is known.
    pub fn reserve(&mut self, rows: usize) {
        for v in &mut self.positions {
            v.reserve(rows);
        }
        for v in &mut self.lengths {
            v.reserve(rows);
        }
    }

    /// The tracked columns, ascending (the scan uses this to know *when* to
    /// call [`PosMapBuilder::record`]).
    pub fn tracked_columns(&self) -> &[usize] {
        &self.tracked
    }

    /// Slot index of `col` within [`PosMapBuilder::tracked_columns`], if
    /// tracked. Resolved once per scan construction, not per row.
    pub fn slot_of(&self, col: usize) -> Option<usize> {
        self.tracked.binary_search(&col).ok()
    }

    /// Record that tracked slot `slot` starts at byte `pos` with `len` bytes
    /// in the current row.
    #[inline]
    pub fn record(&mut self, slot: usize, pos: u64, len: u32) {
        self.positions[slot].push(pos);
        self.lengths[slot].push(len);
    }

    /// Validate rectangularity and produce the map.
    pub fn finish(self) -> Result<PositionalMap, BuildError> {
        let rows = self.positions.first().map_or(0, Vec::len);
        for (slot, v) in self.positions.iter().enumerate() {
            if v.len() != rows {
                return Err(BuildError {
                    col: self.tracked[slot],
                    got: v.len() as u64,
                    expected: rows as u64,
                });
            }
        }
        Ok(PositionalMap {
            tracked: self.tracked,
            positions: self.positions,
            lengths: self.lengths,
            rows: rows as u64,
        })
    }
}

/// A tracked column recorded a different number of rows than its peers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildError {
    /// The offending column.
    pub col: usize,
    /// Rows recorded for it.
    pub got: u64,
    /// Rows recorded for the first tracked column.
    pub expected: u64,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "positional map column {} recorded {} rows, expected {}",
            self.col, self.got, self.expected
        )
    }
}

impl std::error::Error for BuildError {}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a small map: cols {1, 4}, 3 rows, positions row*100 + col*10.
    fn sample() -> PositionalMap {
        let mut b = PosMapBuilder::new(vec![4, 1, 1]);
        assert_eq!(b.tracked_columns(), &[1, 4]);
        b.reserve(3);
        for row in 0..3u64 {
            b.record(0, row * 100 + 10, 5);
            b.record(1, row * 100 + 40, 7);
        }
        b.finish().unwrap()
    }

    #[test]
    fn exact_lookup() {
        let m = sample();
        assert_eq!(m.rows(), 3);
        assert!(m.tracks(1));
        assert!(!m.tracks(2));
        match m.lookup(4) {
            Lookup::Exact { positions, lengths } => {
                assert_eq!(positions, &[40, 140, 240]);
                assert_eq!(lengths, &[7, 7, 7]);
            }
            other => panic!("expected exact, got {other:?}"),
        }
        assert_eq!(m.position(4, 1), Some(140));
        assert_eq!(m.length(1, 2), Some(5));
        assert_eq!(m.position(2, 0), None, "untracked column");
        assert_eq!(m.position(4, 9), None, "row out of range");
    }

    #[test]
    fn nearest_lookup() {
        let m = sample();
        match m.lookup(3) {
            Lookup::Nearest { tracked_col, positions, skip_fields } => {
                assert_eq!(tracked_col, 1);
                assert_eq!(skip_fields, 2);
                assert_eq!(positions[0], 10);
            }
            other => panic!("expected nearest, got {other:?}"),
        }
        match m.lookup(6) {
            Lookup::Nearest { tracked_col, skip_fields, .. } => {
                assert_eq!(tracked_col, 4);
                assert_eq!(skip_fields, 2);
            }
            other => panic!("expected nearest, got {other:?}"),
        }
    }

    #[test]
    fn miss_before_first_tracked() {
        let m = sample();
        assert_eq!(m.lookup(0), Lookup::Miss);
    }

    #[test]
    fn builder_rejects_ragged() {
        let mut b = PosMapBuilder::new(vec![0, 1]);
        b.record(0, 0, 1);
        b.record(1, 5, 1);
        b.record(0, 10, 1); // col 1 missing for row 2
        let err = b.finish().unwrap_err();
        assert_eq!(err.col, 1);
        assert!(err.to_string().contains("recorded 1 rows, expected 2"));
    }

    #[test]
    fn empty_map() {
        let m = PosMapBuilder::new(vec![]).finish().unwrap();
        assert!(m.is_empty());
        assert_eq!(m.lookup(3), Lookup::Miss);
        let m2 = PosMapBuilder::new(vec![2]).finish().unwrap();
        assert!(m2.is_empty(), "tracked but zero rows");
    }

    #[test]
    fn merge_union_and_overlap() {
        let mut a = sample(); // tracks {1,4}
        let mut b = PosMapBuilder::new(vec![4, 8]);
        for row in 0..3u64 {
            b.record(0, row * 100 + 41, 9); // new positions for col 4
            b.record(1, row * 100 + 80, 2);
        }
        let b = b.finish().unwrap();
        a.merge(&b).unwrap();
        assert_eq!(a.tracked_columns(), &[1, 4, 8]);
        assert_eq!(a.position(4, 0), Some(41), "newer map wins overlap");
        assert_eq!(a.position(8, 2), Some(280));
        assert_eq!(a.position(1, 0), Some(10), "old column kept");
    }

    #[test]
    fn merge_rejects_row_mismatch() {
        let mut a = sample();
        let mut b = PosMapBuilder::new(vec![2]);
        b.record(0, 0, 1);
        let b = b.finish().unwrap();
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn append_concatenates_fragments_in_order() {
        let fragment = |base: u64, rows: u64| {
            let mut b = PosMapBuilder::new(vec![1, 4]);
            for r in 0..rows {
                b.record(0, base + r * 100 + 10, 5);
                b.record(1, base + r * 100 + 40, 7);
            }
            b.finish().unwrap()
        };
        let mut whole = PositionalMap::default();
        whole.append(&fragment(0, 3)).unwrap();
        whole.append(&fragment(300, 2)).unwrap();
        assert_eq!(whole.rows(), 5);
        assert_eq!(whole.tracked_columns(), &[1, 4]);
        assert_eq!(whole.position(1, 0), Some(10));
        assert_eq!(whole.position(1, 3), Some(310), "fragment 2 rows follow fragment 1");
        assert_eq!(whole.position(4, 4), Some(440));

        // Appending mismatched tracked columns is an error.
        let mut odd = PosMapBuilder::new(vec![2]);
        odd.record(0, 0, 1);
        let odd = odd.finish().unwrap();
        let err = whole.append(&odd).unwrap_err();
        assert!(err.to_string().contains("different tracked columns"));

        // Empty fragments are no-ops.
        let before = whole.rows();
        whole.append(&PositionalMap::default()).unwrap();
        assert_eq!(whole.rows(), before);
    }

    #[test]
    fn heap_bytes_counts_growth() {
        let m = sample();
        // 2 cols × 3 rows × (8 + 4) bytes + tracked overhead
        assert!(m.heap_bytes() >= 72);
        let empty = PosMapBuilder::new(vec![]).finish().unwrap();
        assert_eq!(empty.heap_bytes(), 0);
    }

    #[test]
    fn slot_of() {
        let b = PosMapBuilder::new(vec![3, 1]);
        assert_eq!(b.slot_of(1), Some(0));
        assert_eq!(b.slot_of(3), Some(1));
        assert_eq!(b.slot_of(2), None);
    }
}
