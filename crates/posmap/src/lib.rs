//! # raw-posmap
//!
//! Positional maps: the NoDB-style structural index RAW builds over raw text
//! files (§2.3). A positional map records, for a subset of *tracked* columns,
//! the byte position of that column's field in every row. Unlike a database
//! index it indexes **structure, not values**: it cuts tokenizing/parsing
//! cost when a later query revisits the file.
//!
//! Key behaviours reproduced from the paper:
//!
//! - Tracking policies are tunable ("populates the positional map every 10
//!   columns", "every 7 columns") because the choice trades map size against
//!   future parsing savings — the Fig. 1b/5 "Col. 7" variants.
//! - Lookups are **exact** when the requested column is tracked, or
//!   **nearest** otherwise: "the parser jumps to column 2, and incrementally
//!   parses the file until it reaches column 4".
//! - Maps are populated *as a side effect* of scans, never by a dedicated
//!   pass.

pub mod map;
pub mod policy;

pub use map::{AppendError, Lookup, PosMapBuilder, PositionalMap};
pub use policy::TrackingPolicy;
