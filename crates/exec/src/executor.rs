//! The parallel executor and its deterministic merge layer.
//!
//! Takes one ready-to-run operator pipeline per morsel, drains them on the
//! worker pool, and merges the outputs **in morsel order**:
//!
//! - [`MergePlan::Concat`] — selection-shaped queries; per-morsel batches
//!   concatenate in morsel order, reproducing serial row order exactly.
//! - [`MergePlan::Aggregate`] — aggregate-shaped queries; each worker folds
//!   its morsel's batches into an [`AggAccumulator`] *as it drains* (no
//!   post-filter materialization), and partial states merge in morsel order.
//!   Integer aggregates are bit-for-bit serial-identical; float aggregates
//!   are identical across any worker count because the morsel grid — and
//!   therefore the summation tree — never depends on the thread count.
//! - [`MergePlan::Grouped`] — grouped-aggregation queries; each worker folds
//!   its morsel's batches into a [`GroupedAccumulator`] (per-morsel partial
//!   hash-table state), states merge in morsel order, and the finished
//!   `[key, agg₀, agg₁, …]` batch is projected into select-list order.
//!   Count/sum/min/max over integers merge order-insensitively; AVG (and
//!   float sums) are deterministic because the merge order is the morsel
//!   order, which never depends on the thread count.
//!
//! The trace-merge contract (one trace per drained morsel, merged stream
//! sorted by morsel index, identical for any claim order) is documented
//! normatively in the repo-root `CONCURRENCY.md` and validated by
//! [`validate_merged_traces`] under `--features checked`.

use std::time::Instant;

use raw_columnar::ops::{AggAccumulator, AggExpr, GroupedAccumulator, Operator};
use raw_columnar::profile::{PhaseProfile, ScanMetrics};
use raw_columnar::{Batch, ColumnarError};
use raw_trace::{merge_worker_sinks, MorselTrace};

use crate::global::GlobalPool;
use crate::pool::{run_jobs_traced_ordered, JobCtx};

/// An availability gate for one morsel: blocks until the morsel's inputs
/// are resident (its byte range has streamed in from disk), or reports the
/// stream's terminal failure. `None` means "always ready" (warm buffers,
/// formats that blocked at plan time).
pub type MorselGate = Box<dyn FnOnce() -> Result<(), ColumnarError> + Send>;

/// How per-morsel outputs combine into the query result.
#[derive(Debug, Clone)]
pub enum MergePlan {
    /// Concatenate morsel output batches in morsel order.
    Concat,
    /// Per-morsel partial aggregation, merged in morsel order.
    Aggregate(Vec<AggExpr>),
    /// Per-morsel partial hash-aggregation, merged in morsel order.
    Grouped(GroupedMerge),
}

/// The grouped-aggregation merge recipe.
#[derive(Debug, Clone)]
pub struct GroupedMerge {
    /// Grouping-key position in the morsel pipelines' output batches.
    pub key_col: usize,
    /// Aggregate expressions over pipeline output positions.
    pub exprs: Vec<AggExpr>,
    /// Final projection over the merged `[key, agg₀, agg₁, …]` batch,
    /// restoring the query's select-list order.
    pub output: Vec<usize>,
}

/// The merged result of a parallel run.
#[derive(Debug)]
pub struct ParallelOutcome {
    /// Result batches in deterministic order (one batch for aggregates).
    pub batches: Vec<Batch>,
    /// Summed scan phase profile across all morsels (CPU time, which under
    /// parallelism exceeds wall time).
    pub profile: PhaseProfile,
    /// Summed scan volume metrics across all morsels.
    pub metrics: ScanMetrics,
    /// Morsels executed.
    pub morsels: usize,
    /// Per-morsel execution records, in morsel order. One record per
    /// *successfully drained* morsel (a failed gate leaves a gap), appended
    /// by the draining worker into its private sink — so trace volume is
    /// O(morsels), never O(rows) — and merged after the pool barrier.
    pub traces: Vec<MorselTrace>,
}

/// What one worker produces for one morsel.
enum MorselOutput {
    Batches(Vec<Batch>),
    Partial(Box<AggAccumulator>),
    GroupedPartial(Box<GroupedAccumulator>),
}

type MorselResult = Result<(MorselOutput, PhaseProfile, ScanMetrics), ColumnarError>;

/// Drain every pipeline on up to `threads` workers and merge per `merge`.
/// Errors surface in morsel order (the first failing morsel wins), matching
/// what a serial scan of the same file would have reported first.
pub fn execute_morsels(
    pipelines: Vec<Box<dyn Operator>>,
    merge: &MergePlan,
    threads: usize,
) -> Result<ParallelOutcome, ColumnarError> {
    execute_morsels_when(pipelines, Vec::new(), merge, threads)
}

/// [`execute_morsels`] with availability-driven dispatch: morsel `i` is
/// gated on `gates[i]` (missing or `None` entries mean "always ready"), so
/// on cold streamed runs a worker drains a morsel as soon as its byte range
/// is resident instead of after the whole file. A gate failure (the reader
/// thread hit an I/O error) becomes that morsel's error without running its
/// pipeline; the merge loop then surfaces it in morsel order like any scan
/// error.
pub fn execute_morsels_when(
    pipelines: Vec<Box<dyn Operator>>,
    gates: Vec<Option<MorselGate>>,
    merge: &MergePlan,
    threads: usize,
) -> Result<ParallelOutcome, ColumnarError> {
    execute_morsels_scheduled(pipelines, gates, merge, threads, None)
}

/// [`execute_morsels_when`] with a **cost hint** per morsel: when every
/// morsel is ungated (warm buffers — no availability ordering to respect),
/// workers claim morsels in descending-weight order
/// (longest-processing-time-first, ties broken by morsel index) instead of
/// index order, so a predicted-heavy morsel starts early rather than
/// becoming the long tail after the job list drains.
///
/// Results, merges, traces, and every counter are **identical for any claim
/// order**: results slot by morsel index, partial states merge in morsel
/// order, and traces sort by morsel index after the barrier. Only the
/// wall-clock completion schedule moves — which is why the hint is safe to
/// derive from plan-time metadata alone and never from runtime timing.
///
/// On gated (cold streamed) runs the hint is ignored: gates admit prefix
/// byte ranges of a sequential read, so index order *is* availability order
/// and heavy-first claiming would park workers on nearly the whole file.
pub fn execute_morsels_scheduled(
    pipelines: Vec<Box<dyn Operator>>,
    gates: Vec<Option<MorselGate>>,
    merge: &MergePlan,
    threads: usize,
    weights: Option<&[u64]>,
) -> Result<ParallelOutcome, ColumnarError> {
    let morsels = pipelines.len();
    let (jobs, claim) = morsel_jobs(pipelines, gates, merge, weights);
    let (results, sinks) = run_jobs_traced_ordered(jobs, threads, claim);
    merge_outcome(merge, results, sinks, morsels)
}

/// [`execute_morsels_scheduled`] on an engine-global [`GlobalPool`] instead
/// of a per-query scoped pool: the batch passes the pool's admission door,
/// its morsels interleave fairly with other active queries' morsels, and
/// the long-lived workers drain them. The morsel grid, claim order, merge
/// order, and therefore every result and counter are identical to the
/// scoped path — only *which thread* runs a morsel *when* changes.
pub fn execute_morsels_pooled(
    pool: &GlobalPool,
    pipelines: Vec<Box<dyn Operator>>,
    gates: Vec<Option<MorselGate>>,
    merge: &MergePlan,
    weights: Option<&[u64]>,
) -> Result<ParallelOutcome, ColumnarError> {
    let morsels = pipelines.len();
    let (jobs, claim) = morsel_jobs(pipelines, gates, merge, weights);
    let (results, sinks) = pool.run_on(jobs, claim);
    merge_outcome(merge, results, sinks, morsels)
}

/// Build one `(admit, drain)` job per morsel plus the optional heavy-first
/// claim order — shared by the scoped and global execution paths.
#[allow(clippy::type_complexity)]
fn morsel_jobs(
    pipelines: Vec<Box<dyn Operator>>,
    mut gates: Vec<Option<MorselGate>>,
    merge: &MergePlan,
    weights: Option<&[u64]>,
) -> (
    Vec<(
        impl FnOnce() -> Result<(), MorselResult> + Send + 'static,
        impl for<'s> FnOnce(JobCtx<'s, MorselTrace>) -> MorselResult + Send + 'static,
    )>,
    Option<Vec<usize>>,
) {
    let morsels = pipelines.len();
    gates.resize_with(morsels, || None);
    let ungated = gates.iter().all(Option::is_none);
    let claim: Option<Vec<usize>> = match weights {
        Some(w) if ungated && w.len() == morsels && morsels > 1 => {
            let mut order: Vec<usize> = (0..morsels).collect();
            order.sort_by_key(|&i| (std::cmp::Reverse(w[i]), i));
            Some(order)
        }
        _ => None,
    };
    let jobs: Vec<_> = pipelines
        .into_iter()
        .zip(gates)
        .enumerate()
        .map(|(morsel, (mut op, gate))| {
            let merge = merge.clone();
            // The gate's Err *is* the morsel's terminal result (an error
            // MorselResult), so the pool can record it without running the
            // pipeline — the size is the point, not an accident.
            #[allow(clippy::result_large_err)]
            let admit = move || -> Result<(), MorselResult> {
                match gate {
                    None => Ok(()),
                    Some(g) => g().map_err(Err),
                }
            };
            let drain = move |ctx: JobCtx<'_, MorselTrace>| -> MorselResult {
                let started = Instant::now();
                let mut rows_out = 0u64;
                let out = match merge {
                    MergePlan::Concat => {
                        let mut batches = Vec::new();
                        while let Some(b) = op.next_batch()? {
                            rows_out += b.rows() as u64;
                            batches.push(b);
                        }
                        MorselOutput::Batches(batches)
                    }
                    MergePlan::Aggregate(exprs) => {
                        let mut acc = AggAccumulator::new(exprs);
                        while let Some(b) = op.next_batch()? {
                            rows_out += b.rows() as u64;
                            acc.update(&b)?;
                        }
                        MorselOutput::Partial(Box::new(acc))
                    }
                    MergePlan::Grouped(g) => {
                        let mut acc = GroupedAccumulator::new(g.key_col, g.exprs);
                        while let Some(b) = op.next_batch()? {
                            rows_out += b.rows() as u64;
                            acc.update(&b)?;
                        }
                        MorselOutput::GroupedPartial(Box::new(acc))
                    }
                };
                let (profile, metrics) = (op.scan_profile(), op.scan_metrics());
                // One trace event per morsel — recorded after the drain so
                // the scan loop itself carries zero tracing work.
                ctx.sink.push(MorselTrace {
                    morsel,
                    worker: ctx.worker,
                    gate_wait: ctx.gate_wait,
                    exec: started.elapsed(),
                    rows_out,
                    profile,
                    metrics,
                });
                Ok((out, profile, metrics))
            };
            (admit, drain)
        })
        .collect();
    (jobs, claim)
}

/// Merge per-morsel results and per-worker trace sinks into the final
/// [`ParallelOutcome`] — in morsel order, first error wins. Shared by the
/// scoped and global execution paths.
fn merge_outcome(
    merge: &MergePlan,
    results: Vec<MorselResult>,
    sinks: Vec<Vec<MorselTrace>>,
    morsels: usize,
) -> Result<ParallelOutcome, ColumnarError> {
    let traces = merge_worker_sinks(sinks);
    #[cfg(feature = "checked")]
    validate_merged_traces(&traces, morsels, results.iter().all(Result::is_ok));

    let mut profile = PhaseProfile::default();
    let mut metrics = ScanMetrics::default();
    let mut batches = Vec::new();
    let mut merged_acc: Option<AggAccumulator> = None;
    let mut merged_groups: Option<GroupedAccumulator> = None;
    for result in results {
        let (out, p, m) = result?;
        profile.merge(&p);
        metrics.merge(&m);
        match out {
            MorselOutput::Batches(bs) => batches.extend(bs),
            MorselOutput::Partial(partial) => match merged_acc.as_mut() {
                Some(acc) => acc.merge(*partial)?,
                None => merged_acc = Some(*partial),
            },
            MorselOutput::GroupedPartial(partial) => match merged_groups.as_mut() {
                Some(acc) => acc.merge(*partial)?,
                None => merged_groups = Some(*partial),
            },
        }
    }

    match merge {
        MergePlan::Concat => {}
        MergePlan::Aggregate(exprs) => {
            // Zero morsels (empty file) still yields the canonical
            // empty-input aggregate row (COUNT 0 / NULL), exactly like a
            // serial AggregateOp.
            let acc = merged_acc.unwrap_or_else(|| AggAccumulator::new(exprs.clone()));
            batches = vec![acc.finish()?];
        }
        MergePlan::Grouped(g) => {
            // Zero morsels yields the zero-row grouped batch, exactly like
            // a serial HashAggregateOp over an empty input.
            let acc = merged_groups
                .unwrap_or_else(|| GroupedAccumulator::new(g.key_col, g.exprs.clone()));
            batches = vec![acc.finish()?.project(&g.output)?];
        }
    }

    Ok(ParallelOutcome { batches, profile, metrics, morsels, traces })
}

/// The `checked` build's merge-contract validator: the trace stream coming
/// out of [`merge_worker_sinks`] must be strictly increasing in morsel
/// index (per-worker sinks merged and re-sorted, no duplicates), and —
/// when every morsel drained successfully (`all_ok`) — cover each of the
/// `morsels` indices exactly once. Failed or gate-rejected morsels record
/// no trace, so completeness is only asserted on all-success runs.
///
/// Always compiled (so the seeded-violation tests run in every
/// configuration); [`execute_morsels_scheduled`] only *calls* it under
/// `feature = "checked"`.
pub fn validate_merged_traces(traces: &[MorselTrace], morsels: usize, all_ok: bool) {
    for pair in traces.windows(2) {
        assert!(
            pair[0].morsel < pair[1].morsel,
            "checked: merged traces out of order or duplicated — morsel {} then {} (the per-worker sink merge must yield at most one trace per morsel, sorted)",
            pair[0].morsel,
            pair[1].morsel
        );
    }
    if let Some(last) = traces.last() {
        assert!(
            last.morsel < morsels,
            "checked: trace for morsel {} but the run only had {morsels} morsels",
            last.morsel
        );
    }
    if all_ok {
        assert_eq!(
            traces.len(),
            morsels,
            "checked: {} traces for {morsels} successful morsels — every drained morsel must record exactly one trace",
            traces.len()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raw_columnar::ops::{AggKind, BatchSource};
    use raw_columnar::Value;

    fn source(values: &[i64]) -> Box<dyn Operator> {
        let batches =
            values.chunks(3).map(|c| Batch::new(vec![c.to_vec().into()]).unwrap()).collect();
        Box::new(BatchSource::new(batches))
    }

    #[test]
    fn concat_preserves_morsel_order() {
        let pipelines: Vec<Box<dyn Operator>> =
            vec![source(&[1, 2, 3, 4]), source(&[5]), source(&[6, 7])];
        let out = execute_morsels(pipelines, &MergePlan::Concat, 4).unwrap();
        let all = Batch::concat(&out.batches).unwrap();
        let got: Vec<i64> = all.column(0).unwrap().as_i64().unwrap().to_vec();
        assert_eq!(got, vec![1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(out.morsels, 3);
    }

    #[test]
    fn aggregate_merges_partials_like_serial() {
        for threads in [1, 2, 4, 8] {
            let pipelines: Vec<Box<dyn Operator>> =
                vec![source(&[5, -2, 9]), source(&[7, 7]), source(&[0])];
            let exprs = vec![
                AggExpr { kind: AggKind::Max, col: 0 },
                AggExpr { kind: AggKind::Min, col: 0 },
                AggExpr { kind: AggKind::Sum, col: 0 },
                AggExpr { kind: AggKind::Count, col: 0 },
                AggExpr { kind: AggKind::Avg, col: 0 },
            ];
            let out = execute_morsels(pipelines, &MergePlan::Aggregate(exprs), threads).unwrap();
            assert_eq!(out.batches.len(), 1);
            let b = &out.batches[0];
            assert_eq!(b.value(0, 0).unwrap(), Value::Int64(9));
            assert_eq!(b.value(0, 1).unwrap(), Value::Int64(-2));
            assert_eq!(b.value(0, 2).unwrap(), Value::Int64(26));
            assert_eq!(b.value(0, 3).unwrap(), Value::Int64(6));
            assert_eq!(b.value(0, 4).unwrap(), Value::Float64(26.0 / 6.0));
        }
    }

    fn pair_source(rows: &[(i64, i64)]) -> Box<dyn Operator> {
        let batches = rows
            .chunks(3)
            .map(|c| {
                let keys: Vec<i64> = c.iter().map(|&(k, _)| k).collect();
                let vals: Vec<i64> = c.iter().map(|&(_, v)| v).collect();
                Batch::new(vec![keys.into(), vals.into()]).unwrap()
            })
            .collect();
        Box::new(BatchSource::new(batches))
    }

    #[test]
    fn grouped_merges_partials_like_serial() {
        let merge = MergePlan::Grouped(GroupedMerge {
            key_col: 0,
            exprs: vec![
                AggExpr { kind: AggKind::Count, col: 1 },
                AggExpr { kind: AggKind::Sum, col: 1 },
            ],
            // [key, count, sum] -> select order (sum, key, count).
            output: vec![2, 0, 1],
        });
        for threads in [1, 2, 4, 8] {
            let pipelines: Vec<Box<dyn Operator>> = vec![
                pair_source(&[(2, 10), (1, 20), (2, 30)]),
                pair_source(&[(1, 40), (3, 50)]),
                pair_source(&[(2, 60)]),
            ];
            let out = execute_morsels(pipelines, &merge, threads).unwrap();
            assert_eq!(out.batches.len(), 1);
            let b = &out.batches[0];
            // Keys sorted: 1, 2, 3.
            assert_eq!(b.column(1).unwrap().as_i64().unwrap(), &[1, 2, 3]);
            assert_eq!(b.column(2).unwrap().as_i64().unwrap(), &[2, 3, 1]);
            assert_eq!(b.column(0).unwrap().as_i64().unwrap(), &[60, 100, 50]);
        }
    }

    #[test]
    fn grouped_of_no_morsels_is_empty_batch() {
        let merge = MergePlan::Grouped(GroupedMerge {
            key_col: 0,
            exprs: vec![AggExpr { kind: AggKind::Count, col: 1 }],
            output: vec![0, 1],
        });
        let out = execute_morsels(Vec::new(), &merge, 4).unwrap();
        assert_eq!(out.batches.len(), 1);
        assert_eq!(out.batches[0].rows(), 0);
        assert_eq!(out.batches[0].num_columns(), 2);
    }

    #[test]
    fn aggregate_of_no_morsels_is_canonical_empty() {
        let exprs =
            vec![AggExpr { kind: AggKind::Count, col: 0 }, AggExpr { kind: AggKind::Max, col: 0 }];
        let out = execute_morsels(Vec::new(), &MergePlan::Aggregate(exprs), 4).unwrap();
        let b = &out.batches[0];
        assert_eq!(b.value(0, 0).unwrap(), Value::Int64(0));
        assert_eq!(b.value(0, 1).unwrap(), Value::Utf8("NULL".into()));
    }

    #[test]
    fn weighted_scheduling_is_result_invariant() {
        // Heavy-first claim order must not move results, trace order, or
        // rows_out — only the dispatch schedule.
        for threads in [1, 2, 8] {
            let make = || -> Vec<Box<dyn Operator>> {
                vec![source(&[1, 2]), source(&[3, 4, 5, 6, 7]), source(&[8])]
            };
            let weights = [2u64, 5, 1];
            let plain = execute_morsels(make(), &MergePlan::Concat, threads).unwrap();
            let scheduled = execute_morsels_scheduled(
                make(),
                Vec::new(),
                &MergePlan::Concat,
                threads,
                Some(&weights),
            )
            .unwrap();
            let a = Batch::concat(&plain.batches).unwrap();
            let b = Batch::concat(&scheduled.batches).unwrap();
            assert_eq!(
                a.column(0).unwrap().as_i64().unwrap(),
                b.column(0).unwrap().as_i64().unwrap()
            );
            assert_eq!(
                scheduled.traces.iter().map(|t| t.morsel).collect::<Vec<_>>(),
                vec![0, 1, 2]
            );
            assert_eq!(
                scheduled.traces.iter().map(|t| t.rows_out).collect::<Vec<_>>(),
                vec![2, 5, 1]
            );
        }
    }

    #[test]
    fn trace_volume_is_bounded_by_morsels_not_rows() {
        // 3 morsels, 7 rows total: the trace layer must emit exactly one
        // event per morsel regardless of row count — the overhead contract.
        for threads in [1, 4] {
            let pipelines: Vec<Box<dyn Operator>> =
                vec![source(&[1, 2, 3, 4]), source(&[5]), source(&[6, 7])];
            let out = execute_morsels(pipelines, &MergePlan::Concat, threads).unwrap();
            assert_eq!(out.traces.len(), out.morsels);
            assert_eq!(out.traces.len(), 3);
            let order: Vec<usize> = out.traces.iter().map(|t| t.morsel).collect();
            assert_eq!(order, vec![0, 1, 2], "traces merge in morsel order");
            let rows: Vec<u64> = out.traces.iter().map(|t| t.rows_out).collect();
            assert_eq!(rows, vec![4, 1, 2]);
            for t in &out.traces {
                assert!(t.worker < threads.max(1));
            }
        }
    }

    #[test]
    fn aggregate_traces_count_folded_rows() {
        let pipelines: Vec<Box<dyn Operator>> = vec![source(&[5, -2, 9]), source(&[7, 7])];
        let exprs = vec![AggExpr { kind: AggKind::Sum, col: 0 }];
        let out = execute_morsels(pipelines, &MergePlan::Aggregate(exprs), 2).unwrap();
        let rows: Vec<u64> = out.traces.iter().map(|t| t.rows_out).collect();
        assert_eq!(rows, vec![3, 2]);
    }

    #[test]
    fn pooled_execution_matches_scoped() {
        let pool = GlobalPool::new(2, 0);
        let make = || -> Vec<Box<dyn Operator>> {
            vec![source(&[1, 2, 3, 4]), source(&[5]), source(&[6, 7])]
        };
        let weights = [4u64, 1, 2];
        let scoped =
            execute_morsels_scheduled(make(), Vec::new(), &MergePlan::Concat, 2, Some(&weights))
                .unwrap();
        let pooled =
            execute_morsels_pooled(&pool, make(), Vec::new(), &MergePlan::Concat, Some(&weights))
                .unwrap();
        let a = Batch::concat(&scoped.batches).unwrap();
        let b = Batch::concat(&pooled.batches).unwrap();
        assert_eq!(a.column(0).unwrap().as_i64().unwrap(), b.column(0).unwrap().as_i64().unwrap());
        assert_eq!(pooled.morsels, 3);
        assert_eq!(pooled.traces.iter().map(|t| t.morsel).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(pooled.traces.iter().map(|t| t.rows_out).collect::<Vec<_>>(), vec![4, 1, 2]);

        let exprs = vec![AggExpr { kind: AggKind::Sum, col: 0 }];
        let agg =
            execute_morsels_pooled(&pool, make(), Vec::new(), &MergePlan::Aggregate(exprs), None)
                .unwrap();
        assert_eq!(agg.batches[0].value(0, 0).unwrap(), Value::Int64(28));
    }

    #[test]
    fn pooled_first_morsel_error_wins() {
        struct Boom;
        impl Operator for Boom {
            fn next_batch(&mut self) -> Result<Option<Batch>, ColumnarError> {
                Err(ColumnarError::External { message: "pooled boom".into() })
            }
            fn name(&self) -> &'static str {
                "Boom"
            }
        }
        let pool = GlobalPool::new(2, 0);
        let pipelines: Vec<Box<dyn Operator>> = vec![source(&[1]), Box::new(Boom)];
        let err = execute_morsels_pooled(&pool, pipelines, Vec::new(), &MergePlan::Concat, None)
            .unwrap_err();
        assert!(err.to_string().contains("pooled boom"));
    }

    #[test]
    fn first_morsel_error_wins() {
        struct Boom;
        impl Operator for Boom {
            fn next_batch(&mut self) -> Result<Option<Batch>, ColumnarError> {
                Err(ColumnarError::External { message: "boom".into() })
            }
            fn name(&self) -> &'static str {
                "Boom"
            }
        }
        let pipelines: Vec<Box<dyn Operator>> = vec![source(&[1]), Box::new(Boom)];
        let err = execute_morsels(pipelines, &MergePlan::Concat, 2).unwrap_err();
        assert!(err.to_string().contains("boom"));
    }
}
