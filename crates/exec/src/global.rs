//! The engine-global worker pool: long-lived workers, per-query admission,
//! fair round-robin morsel scheduling.
//!
//! The scoped pool in [`crate::pool`] spawns workers per batch and joins
//! them at the end — exactly right for a single-driver engine, but with many
//! sessions sharing one engine it would oversubscribe the machine (every
//! concurrent query spawning `parallelism` threads) and, worse, let a big
//! cold scan monopolize the CPUs while a small warm query sits behind it.
//! [`GlobalPool`] fixes both:
//!
//! - **One set of workers**, spawned once and shared by every query.
//! - **Admission**: at most `max_active` batches execute at once (0 =
//!   unlimited); excess submitters queue FIFO at the door. Admission is per
//!   *query* (batch), never per morsel — an admitted batch always finishes.
//! - **Fair scheduling**: active batches sit in a round-robin ring. A worker
//!   claims *one* morsel from the front batch, then the batch rotates to the
//!   back — so `k` concurrent batches each receive ~`1/k` of the workers'
//!   attention regardless of batch size, and a 1000-morsel cold scan cannot
//!   starve a 4-morsel warm query (fairness invariant, CONCURRENCY.md
//!   § "Sessions and the shared cache layer").
//!
//! Within a batch, morsels are claimed in the submitter's `claim` order
//! (e.g. longest-processing-time-first), preserving the scoped pool's
//! skew-resistant dispatch. Results land in per-morsel slots and sinks in
//! per-worker slots, so output order — and therefore every downstream
//! merge — is identical to the scoped pool's, independent of scheduling.
//!
//! ## Synchronization
//!
//! One mutex guards the scheduler state (ring + admission counts); workers
//! sleep on a condvar when the ring is empty and submitters sleep on a
//! second condvar when admission is full. Each batch carries a completion
//! latch (mutex + condvar): workers decrement after writing a result slot,
//! the submitter wakes at zero. Result slots are mutexes, so the completed
//! write happens-before the submitter's read (lock-edge publication; no
//! `SeqCst` anywhere, per the L1 rule). The scheduler lock is never held
//! while a morsel runs.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Condvar, Mutex};

use crate::pool::JobCtx;

/// A unit of claimed work: runs one morsel on the given worker index.
type Thunk = Box<dyn FnOnce(usize) + Send>;

/// One submitted batch: its thunks plus the claim order to hand them out in.
struct BatchCore {
    /// One slot per morsel; a worker takes the thunk when it claims the slot.
    thunks: Vec<Mutex<Option<Thunk>>>,
    /// Permutation of `0..thunks.len()`: the order slots are claimed in.
    claim: Vec<usize>,
}

/// A batch in the round-robin ring, with its claim progress. `next` is only
/// touched under the scheduler lock.
struct ActiveBatch {
    core: Arc<BatchCore>,
    next: usize,
}

/// Scheduler state: the fair ring plus admission accounting.
struct State {
    /// Batches with unclaimed morsels, in round-robin order.
    ring: VecDeque<ActiveBatch>,
    /// Batches admitted and not yet complete (includes fully-claimed ones).
    active: usize,
    /// Pool is shutting down; workers exit, waiters return.
    shutdown: bool,
}

struct Inner {
    state: Mutex<State>,
    /// Workers wait here for ring work.
    work_cv: Condvar,
    /// Submitters wait here for an admission slot.
    admit_cv: Condvar,
}

/// The global worker pool. Construct once per engine, share via `Arc`, and
/// submit batches with [`GlobalPool::run_on`]. Dropping the pool shuts the
/// workers down and joins them (callers must not be mid-batch; engine `Arc`
/// ownership guarantees this).
pub struct GlobalPool {
    inner: Arc<Inner>,
    threads: usize,
    max_active: usize,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for GlobalPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GlobalPool")
            .field("threads", &self.threads)
            .field("max_active", &self.max_active)
            .finish()
    }
}

impl GlobalPool {
    /// Spawn `threads` long-lived workers (min 1). `max_active` caps the
    /// number of concurrently executing batches; 0 means unlimited.
    pub fn new(threads: usize, max_active: usize) -> GlobalPool {
        let threads = threads.max(1);
        let inner = Arc::new(Inner {
            state: Mutex::new(State { ring: VecDeque::new(), active: 0, shutdown: false }),
            work_cv: Condvar::new(),
            admit_cv: Condvar::new(),
        });
        let mut handles = Vec::with_capacity(threads);
        for worker in 0..threads {
            let inner = Arc::clone(&inner);
            handles.push(std::thread::spawn(move || worker_loop(&inner, worker)));
        }
        GlobalPool { inner, threads, max_active, handles: Mutex::new(handles) }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Admission cap this pool was built with (0 = unlimited).
    pub fn max_active(&self) -> usize {
        self.max_active
    }

    /// Run a batch of `(gate, job)` pairs to completion and return
    /// `(results-by-job-index, sinks-by-worker)` — the same contract as
    /// [`crate::pool::run_jobs_traced_ordered`], but on the shared workers:
    /// the caller blocks at the admission door if `max_active` batches are
    /// already running, then blocks on the batch's completion latch while
    /// the pool interleaves its morsels fairly with other active batches.
    ///
    /// `claim`, when given, must be a permutation of `0..jobs.len()` and
    /// fixes the order slots are claimed in *within this batch*.
    pub fn run_on<T, E, G, F>(
        &self,
        jobs: Vec<(G, F)>,
        claim: Option<Vec<usize>>,
    ) -> (Vec<T>, Vec<Vec<E>>)
    where
        T: Send + 'static,
        E: Send + 'static,
        G: FnOnce() -> Result<(), T> + Send + 'static,
        F: for<'s> FnOnce(JobCtx<'s, E>) -> T + Send + 'static,
    {
        let n = jobs.len();
        if n == 0 {
            return (Vec::new(), (0..self.threads).map(|_| Vec::new()).collect());
        }
        let claim = claim.unwrap_or_else(|| (0..n).collect());
        assert!(claim.len() == n, "claim order must cover every job");
        {
            let mut seen = vec![false; n];
            for &c in &claim {
                assert!(c < n && !seen[c], "claim order must be a permutation");
                seen[c] = true;
            }
        }

        let results: Arc<Vec<Mutex<Option<T>>>> =
            Arc::new((0..n).map(|_| Mutex::new(None)).collect());
        let sinks: Arc<Vec<Mutex<Vec<E>>>> =
            Arc::new((0..self.threads).map(|_| Mutex::new(Vec::new())).collect());
        // Completion latch: (remaining, batch done) — submitter sleeps on
        // the condvar until remaining hits zero.
        let latch: Arc<(Mutex<usize>, Condvar)> = Arc::new((Mutex::new(n), Condvar::new()));

        let mut thunks = Vec::with_capacity(n);
        for (i, (gate, job)) in jobs.into_iter().enumerate() {
            let results = Arc::clone(&results);
            let sinks = Arc::clone(&sinks);
            let latch = Arc::clone(&latch);
            let thunk: Thunk = Box::new(move |worker| {
                let wait_start = Instant::now();
                let out = match gate() {
                    Ok(()) => {
                        let gate_wait = wait_start.elapsed();
                        let mut sink = sinks[worker].lock();
                        job(JobCtx { worker, gate_wait, sink: &mut sink })
                    }
                    Err(err) => err,
                };
                *results[i].lock() = Some(out);
                let mut remaining = latch.0.lock();
                *remaining -= 1;
                if *remaining == 0 {
                    latch.1.notify_all();
                }
            });
            thunks.push(Mutex::new(Some(thunk)));
        }
        let core = Arc::new(BatchCore { thunks, claim });

        // Admission: FIFO at the door (parking_lot condvars wake waiters in
        // FIFO order), at most `max_active` batches in flight.
        {
            let mut st = self.inner.state.lock();
            while self.max_active > 0 && st.active >= self.max_active && !st.shutdown {
                self.inner.admit_cv.wait(&mut st);
            }
            st.active += 1;
            st.ring.push_back(ActiveBatch { core, next: 0 });
            drop(st);
            self.inner.work_cv.notify_all();
        }

        // Block on the completion latch.
        {
            let mut remaining = latch.0.lock();
            while *remaining > 0 {
                latch.1.wait(&mut remaining);
            }
        }

        // Retire the batch: free its admission slot, wake one queued
        // submitter.
        {
            let mut st = self.inner.state.lock();
            st.active -= 1;
            drop(st);
            self.inner.admit_cv.notify_one();
        }

        let results = results
            .iter()
            .map(|slot| {
                let Some(out) = slot.lock().take() else {
                    unreachable!("completed batch has a result per job")
                };
                out
            })
            .collect();
        let sinks = sinks.iter().map(|s| std::mem::take(&mut *s.lock())).collect();
        (results, sinks)
    }
}

impl Drop for GlobalPool {
    fn drop(&mut self) {
        {
            let mut st = self.inner.state.lock();
            st.shutdown = true;
        }
        self.inner.work_cv.notify_all();
        self.inner.admit_cv.notify_all();
        for handle in self.handles.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

/// Claim the next morsel fairly: take one from the front batch, rotate the
/// batch to the back if it has more. Called under the scheduler lock.
fn next_claim(st: &mut State) -> Option<(Arc<BatchCore>, usize)> {
    while let Some(mut ab) = st.ring.pop_front() {
        if ab.next < ab.core.claim.len() {
            let slot = ab.core.claim[ab.next];
            ab.next += 1;
            let core = Arc::clone(&ab.core);
            if ab.next < ab.core.claim.len() {
                st.ring.push_back(ab);
            }
            return Some((core, slot));
        }
        // Fully claimed: drop it from the ring (completion is tracked by
        // the batch latch, not the ring).
    }
    None
}

fn worker_loop(inner: &Inner, worker: usize) {
    loop {
        let claimed = {
            let mut st = inner.state.lock();
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(claimed) = next_claim(&mut st) {
                    break claimed;
                }
                inner.work_cv.wait(&mut st);
            }
        };
        let (core, slot) = claimed;
        let thunk = core.thunks[slot].lock().take();
        if let Some(thunk) = thunk {
            thunk(worker);
        }
    }
}

#[cfg(test)]
#[allow(clippy::type_complexity)]
mod tests {
    use super::*;

    /// A trivial batch: `count` jobs, each recording `(tag, index)` into a
    /// shared log when it runs, returning its index.
    fn logged_jobs(
        tag: char,
        count: usize,
        log: &Arc<Mutex<Vec<(char, usize)>>>,
    ) -> Vec<(
        impl FnOnce() -> Result<(), usize> + Send + 'static,
        impl for<'s> FnOnce(JobCtx<'s, ()>) -> usize + Send + 'static,
    )> {
        (0..count)
            .map(|i| {
                let log = Arc::clone(log);
                (
                    move || Ok(()),
                    move |_ctx: JobCtx<'_, ()>| {
                        log.lock().push((tag, i));
                        i
                    },
                )
            })
            .collect()
    }

    #[test]
    fn results_land_by_job_index() {
        let pool = GlobalPool::new(3, 0);
        let log = Arc::new(Mutex::new(Vec::new()));
        let (results, sinks) = pool.run_on(logged_jobs('a', 8, &log), None);
        assert_eq!(results, (0..8).collect::<Vec<_>>());
        assert_eq!(sinks.len(), 3);
        assert_eq!(log.lock().len(), 8);
    }

    #[test]
    fn claim_order_is_respected() {
        // One worker makes the within-batch claim order fully deterministic.
        let pool = GlobalPool::new(1, 0);
        let log = Arc::new(Mutex::new(Vec::new()));
        let claim = vec![2, 0, 3, 1];
        let (results, _) = pool.run_on(logged_jobs('a', 4, &log), Some(claim.clone()));
        assert_eq!(results, vec![0, 1, 2, 3], "results stay in job order");
        let ran: Vec<usize> = log.lock().iter().map(|&(_, i)| i).collect();
        assert_eq!(ran, claim, "execution follows the claim order");
    }

    #[test]
    fn gate_error_becomes_the_result() {
        let pool = GlobalPool::new(2, 0);
        let jobs: Vec<(
            Box<dyn FnOnce() -> Result<(), i32> + Send>,
            Box<dyn for<'s> FnOnce(JobCtx<'s, ()>) -> i32 + Send>,
        )> =
            vec![(Box::new(|| Ok(())), Box::new(|_| 10)), (Box::new(|| Err(-1)), Box::new(|_| 20))];
        let (results, _) = pool.run_on(jobs, None);
        assert_eq!(results, vec![10, -1]);
    }

    #[test]
    fn round_robin_interleaves_batches() {
        // One worker: submit batch A (4 morsels), and from inside A's first
        // morsel submit batch B (2 morsels) on another thread, then let the
        // worker drain. With the ring rotating after every claim the
        // interleaving is A0, (B admitted), A1, B0, A2, B1, A3.
        let pool = Arc::new(GlobalPool::new(1, 0));
        let log: Arc<Mutex<Vec<(char, usize)>>> = Arc::new(Mutex::new(Vec::new()));

        // Submit A from a helper thread; its first job blocks until B is in
        // the ring so the interleaving is deterministic.
        let b_in_ring: Arc<(Mutex<bool>, Condvar)> = Arc::new((Mutex::new(false), Condvar::new()));
        let a_thread = {
            let pool = Arc::clone(&pool);
            let log = Arc::clone(&log);
            let b_in_ring = Arc::clone(&b_in_ring);
            std::thread::spawn(move || {
                let jobs: Vec<(
                    Box<dyn FnOnce() -> Result<(), usize> + Send>,
                    Box<dyn for<'s> FnOnce(JobCtx<'s, ()>) -> usize + Send>,
                )> = (0..4)
                    .map(|i| {
                        let log = Arc::clone(&log);
                        let b_in_ring = Arc::clone(&b_in_ring);
                        let gate: Box<dyn FnOnce() -> Result<(), usize> + Send> =
                            Box::new(move || {
                                if i == 0 {
                                    let mut ready = b_in_ring.0.lock();
                                    while !*ready {
                                        b_in_ring.1.wait(&mut ready);
                                    }
                                }
                                Ok(())
                            });
                        let job: Box<dyn for<'s> FnOnce(JobCtx<'s, ()>) -> usize + Send> =
                            Box::new(move |_| {
                                log.lock().push(('a', i));
                                i
                            });
                        (gate, job)
                    })
                    .collect();
                pool.run_on(jobs, None)
            })
        };

        // Wait until the worker has claimed A0 (it will block in A0's gate),
        // then submit B and release the gate.
        while pool.inner.state.lock().ring.front().is_none_or(|ab| ab.next == 0) {
            std::thread::yield_now();
        }
        let b_thread = {
            let pool = Arc::clone(&pool);
            let log = Arc::clone(&log);
            std::thread::spawn(move || pool.run_on(logged_jobs('b', 2, &log), None))
        };
        // B lands in the ring behind A, then A0's gate opens.
        while pool.inner.state.lock().ring.len() < 2 {
            std::thread::yield_now();
        }
        {
            let mut ready = b_in_ring.0.lock();
            *ready = true;
            b_in_ring.1.notify_all();
        }

        let (a_results, _) = a_thread.join().unwrap();
        let (b_results, _) = b_thread.join().unwrap();
        assert_eq!(a_results, vec![0, 1, 2, 3]);
        assert_eq!(b_results, vec![0, 1]);
        let order = log.lock().clone();
        assert_eq!(
            order,
            vec![('a', 0), ('a', 1), ('b', 0), ('a', 2), ('b', 1), ('a', 3)],
            "ring rotation interleaves the two batches one morsel at a time"
        );
    }

    #[test]
    fn admission_cap_serializes_batches() {
        // max_active = 1: batch B cannot start until batch A completes. One
        // worker keeps the within-batch log order deterministic.
        let pool = Arc::new(GlobalPool::new(1, 1));
        let log: Arc<Mutex<Vec<(char, usize)>>> = Arc::new(Mutex::new(Vec::new()));
        let release_a: Arc<(Mutex<bool>, Condvar)> = Arc::new((Mutex::new(false), Condvar::new()));

        let a_thread = {
            let pool = Arc::clone(&pool);
            let log = Arc::clone(&log);
            let release_a = Arc::clone(&release_a);
            std::thread::spawn(move || {
                let jobs: Vec<(
                    Box<dyn FnOnce() -> Result<(), usize> + Send>,
                    Box<dyn for<'s> FnOnce(JobCtx<'s, ()>) -> usize + Send>,
                )> = (0..2)
                    .map(|i| {
                        let log = Arc::clone(&log);
                        let release_a = Arc::clone(&release_a);
                        let gate: Box<dyn FnOnce() -> Result<(), usize> + Send> =
                            Box::new(move || {
                                let mut go = release_a.0.lock();
                                while !*go {
                                    release_a.1.wait(&mut go);
                                }
                                Ok(())
                            });
                        let job: Box<dyn for<'s> FnOnce(JobCtx<'s, ()>) -> usize + Send> =
                            Box::new(move |_| {
                                log.lock().push(('a', i));
                                i
                            });
                        (gate, job)
                    })
                    .collect();
                pool.run_on(jobs, None)
            })
        };
        // Wait until A is admitted.
        while pool.inner.state.lock().active == 0 {
            std::thread::yield_now();
        }
        let b_thread = {
            let pool = Arc::clone(&pool);
            let log = Arc::clone(&log);
            std::thread::spawn(move || pool.run_on(logged_jobs('b', 2, &log), None))
        };
        // B must be stuck at the admission door: active stays 1 and B's
        // morsels never enter the ring while A blocks.
        for _ in 0..50 {
            assert_eq!(pool.inner.state.lock().active, 1);
            std::thread::yield_now();
        }
        assert!(log.lock().is_empty(), "nothing ran while A holds its gates");
        {
            let mut go = release_a.0.lock();
            *go = true;
            release_a.1.notify_all();
        }
        a_thread.join().unwrap();
        b_thread.join().unwrap();
        let order = log.lock().clone();
        assert_eq!(
            order,
            vec![('a', 0), ('a', 1), ('b', 0), ('b', 1)],
            "admission cap of 1 serializes the batches"
        );
    }

    #[test]
    fn empty_batch_returns_immediately() {
        let pool = GlobalPool::new(2, 1);
        let jobs: Vec<(
            Box<dyn FnOnce() -> Result<(), usize> + Send>,
            Box<dyn for<'s> FnOnce(JobCtx<'s, ()>) -> usize + Send>,
        )> = Vec::new();
        let (results, sinks) = pool.run_on(jobs, None);
        assert!(results.is_empty());
        assert_eq!(sinks.len(), 2);
    }

    #[test]
    fn pool_drop_joins_workers() {
        let pool = GlobalPool::new(4, 0);
        let log = Arc::new(Mutex::new(Vec::new()));
        let (results, _) = pool.run_on(logged_jobs('a', 4, &log), None);
        assert_eq!(results.len(), 4);
        drop(pool); // must not hang
    }
}
