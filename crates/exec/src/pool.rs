//! The scoped worker pool: run a batch of independent jobs on N threads with
//! morsel-stealing dispatch.
//!
//! Workers share an atomic cursor over the job list and claim the next
//! unclaimed job whenever they finish one, so uneven job costs (a morsel
//! whose rows all pass the filter, a cold stretch of the file) never idle a
//! thread while work remains. Results land in job order regardless of which
//! worker ran what — the executor's merge layer depends on that.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Run every job, using up to `threads` OS threads, and return the results
/// in job order. `threads <= 1` (or a single job) runs inline on the caller
/// thread — the zero-overhead serial path. A panicking job propagates after
/// the scope joins, like the serial equivalent.
pub fn run_jobs<T, F>(jobs: Vec<F>, threads: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    let threads = threads.max(1).min(n);
    if threads <= 1 {
        return jobs.into_iter().map(|job| job()).collect();
    }

    let slots: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = slots[i].lock().take().expect("each job claimed exactly once");
                let out = job();
                *results[i].lock() = Some(out);
            });
        }
    });

    results
        .into_iter()
        .map(|slot| slot.into_inner().expect("scope joined, every job ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_in_job_order() {
        let jobs: Vec<_> = (0..40).map(|i| move || i * 2).collect();
        assert_eq!(run_jobs(jobs, 8), (0..40).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_path_for_one_thread() {
        let jobs: Vec<_> = (0..5).map(|i| move || i).collect();
        assert_eq!(run_jobs(jobs, 1), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn actually_uses_multiple_threads() {
        let ids = Mutex::new(HashSet::new());
        let gate = AtomicU64::new(0);
        let jobs: Vec<_> = (0..4)
            .map(|_| {
                let ids = &ids;
                let gate = &gate;
                move || {
                    // Rendezvous: wait until at least two jobs run
                    // concurrently, proving >1 worker participates.
                    gate.fetch_add(1, Ordering::SeqCst);
                    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
                    while gate.load(Ordering::SeqCst) < 2 && std::time::Instant::now() < deadline {
                        std::hint::spin_loop();
                    }
                    ids.lock().insert(std::thread::current().id());
                }
            })
            .collect();
        run_jobs(jobs, 4);
        assert!(ids.lock().len() > 1, "work ran on more than one thread");
    }

    #[test]
    fn more_jobs_than_threads_all_complete() {
        let counter = AtomicU64::new(0);
        let jobs: Vec<_> = (0..100)
            .map(|_| {
                let counter = &counter;
                move || counter.fetch_add(1, Ordering::Relaxed)
            })
            .collect();
        let results = run_jobs(jobs, 3);
        assert_eq!(results.len(), 100);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn empty_job_list() {
        let jobs: Vec<fn() -> u32> = Vec::new();
        assert!(run_jobs(jobs, 4).is_empty());
    }
}
