//! The scoped worker pool: run a batch of independent jobs on N threads with
//! morsel-stealing dispatch.
//!
//! Workers share an atomic cursor over the job list and claim the next
//! unclaimed job whenever they finish one, so uneven job costs (a morsel
//! whose rows all pass the filter, a cold stretch of the file) never idle a
//! thread while work remains. Results land in job order regardless of which
//! worker ran what — the executor's merge layer depends on that.
//!
//! [`run_jobs_when`] adds **availability-driven dispatch** for cold runs:
//! each job carries a gate that blocks until the job's inputs are resident
//! (a morsel's byte range still streaming in from disk). A claimed job's
//! closure runs only after its gate admits it, so early morsels scan while
//! the reader thread is still filling later chunks; a gate that fails
//! (reader I/O error) short-circuits the job into the gate's terminal
//! result without running it.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Run every job, using up to `threads` OS threads, and return the results
/// in job order. `threads <= 1` (or a single job) runs inline on the caller
/// thread — the zero-overhead serial path. A panicking job propagates after
/// the scope joins, like the serial equivalent.
pub fn run_jobs<T, F>(jobs: Vec<F>, threads: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    type ReadyGate<T> = fn() -> Result<(), T>;
    fn ready<T>() -> Result<(), T> {
        Ok(())
    }
    let gated: Vec<(ReadyGate<T>, F)> =
        jobs.into_iter().map(|j| (ready::<T> as ReadyGate<T>, j)).collect();
    run_jobs_when(gated, threads)
}

/// Like [`run_jobs`], but each job is dispatched through a gate: the gate
/// blocks until the job may start (its inputs are resident) and the job
/// closure runs only once the gate returns `Ok`. A gate returning `Err(t)`
/// makes `t` the job's result directly — the job closure never runs (the
/// path a failed streaming read takes to surface its error to every
/// dependent morsel).
///
/// Workers still claim jobs through the shared cursor, so dispatch order
/// respects availability whenever availability is monotone in job order
/// (the sequential-reader case); a worker blocked in one gate never
/// prevents other workers from claiming and finishing later jobs.
pub fn run_jobs_when<T, G, F>(jobs: Vec<(G, F)>, threads: usize) -> Vec<T>
where
    T: Send,
    G: FnOnce() -> Result<(), T> + Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    let threads = threads.max(1).min(n);
    if threads <= 1 {
        return jobs
            .into_iter()
            .map(|(gate, job)| match gate() {
                Ok(()) => job(),
                Err(t) => t,
            })
            .collect();
    }

    let slots: Vec<Mutex<Option<(G, F)>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let (gate, job) = slots[i].lock().take().expect("each job claimed exactly once");
                let out = match gate() {
                    Ok(()) => job(),
                    Err(t) => t,
                };
                *results[i].lock() = Some(out);
            });
        }
    });

    results
        .into_iter()
        .map(|slot| slot.into_inner().expect("scope joined, every job ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_in_job_order() {
        let jobs: Vec<_> = (0..40).map(|i| move || i * 2).collect();
        assert_eq!(run_jobs(jobs, 8), (0..40).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_path_for_one_thread() {
        let jobs: Vec<_> = (0..5).map(|i| move || i).collect();
        assert_eq!(run_jobs(jobs, 1), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn actually_uses_multiple_threads() {
        let ids = Mutex::new(HashSet::new());
        let gate = AtomicU64::new(0);
        let jobs: Vec<_> = (0..4)
            .map(|_| {
                let ids = &ids;
                let gate = &gate;
                move || {
                    // Rendezvous: wait until at least two jobs run
                    // concurrently, proving >1 worker participates.
                    gate.fetch_add(1, Ordering::SeqCst);
                    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
                    while gate.load(Ordering::SeqCst) < 2 && std::time::Instant::now() < deadline {
                        std::hint::spin_loop();
                    }
                    ids.lock().insert(std::thread::current().id());
                }
            })
            .collect();
        run_jobs(jobs, 4);
        assert!(ids.lock().len() > 1, "work ran on more than one thread");
    }

    #[test]
    fn more_jobs_than_threads_all_complete() {
        let counter = AtomicU64::new(0);
        let jobs: Vec<_> = (0..100)
            .map(|_| {
                let counter = &counter;
                move || counter.fetch_add(1, Ordering::Relaxed)
            })
            .collect();
        let results = run_jobs(jobs, 3);
        assert_eq!(results.len(), 100);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn empty_job_list() {
        let jobs: Vec<fn() -> u32> = Vec::new();
        assert!(run_jobs(jobs, 4).is_empty());
    }

    #[test]
    fn gated_jobs_wait_for_admission_and_keep_job_order() {
        // A monotone availability watermark (the sequential-reader shape):
        // gates spin until the watermark covers their job. A background
        // "reader" advances it, so workers genuinely block and results must
        // still land in job order.
        let watermark = AtomicU64::new(0);
        for threads in [1usize, 4] {
            watermark.store(0, Ordering::SeqCst);
            std::thread::scope(|s| {
                let watermark = &watermark;
                s.spawn(|| {
                    for w in 1..=16u64 {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                        watermark.store(w, Ordering::SeqCst);
                    }
                });
                let jobs: Vec<_> = (0..16u64)
                    .map(|i| {
                        (
                            move || -> Result<(), u64> {
                                while watermark.load(Ordering::SeqCst) <= i {
                                    std::hint::spin_loop();
                                }
                                Ok(())
                            },
                            move || {
                                // The gate admitted us: availability covers i.
                                assert!(watermark.load(Ordering::SeqCst) > i);
                                i * 3
                            },
                        )
                    })
                    .collect();
                assert_eq!(
                    run_jobs_when(jobs, threads),
                    (0..16u64).map(|i| i * 3).collect::<Vec<_>>()
                );
            });
        }
    }

    #[test]
    fn failed_gate_short_circuits_without_running_the_job() {
        type BoxedGate = Box<dyn FnOnce() -> Result<(), i64> + Send>;
        let ran = AtomicU64::new(0);
        let jobs: Vec<(BoxedGate, _)> = (0..6i64)
            .map(|i| {
                let ran = &ran;
                let gate: BoxedGate =
                    if i % 2 == 0 { Box::new(move || Err(-i)) } else { Box::new(|| Ok(())) };
                (gate, move || {
                    ran.fetch_add(1, Ordering::SeqCst);
                    i
                })
            })
            .collect();
        let results = run_jobs_when(jobs, 3);
        assert_eq!(results, vec![0, 1, -2, 3, -4, 5]);
        assert_eq!(ran.load(Ordering::SeqCst), 3, "only odd jobs ran");
    }
}
