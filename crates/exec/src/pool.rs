//! The scoped worker pool: run a batch of independent jobs on N threads with
//! morsel-stealing dispatch.
//!
//! Workers share an atomic cursor over the job list and claim the next
//! unclaimed job whenever they finish one, so uneven job costs (a morsel
//! whose rows all pass the filter, a cold stretch of the file) never idle a
//! thread while work remains. Results land in job order regardless of which
//! worker ran what — the executor's merge layer depends on that.
//! [`run_jobs_traced_ordered`] additionally lets the caller pick the *claim*
//! order (heavy jobs first, say) without moving results out of job order —
//! the skew-resistance lever for ungated runs.
//!
//! [`run_jobs_when`] adds **availability-driven dispatch** for cold runs:
//! each job carries a gate that blocks until the job's inputs are resident
//! (a morsel's byte range still streaming in from disk). A claimed job's
//! closure runs only after its gate admits it, so early morsels scan while
//! the reader thread is still filling later chunks; a gate that fails
//! (reader I/O error) short-circuits the job into the gate's terminal
//! result without running it.
//!
//! The per-worker sink discipline (private `Vec` per worker, published
//! once at run end) and the merge contract the executor builds on it are
//! documented normatively in the repo-root `CONCURRENCY.md`.
//!
//! ## Cold-path chunk-wait semantics
//!
//! The time a worker spends blocked inside a gate is *overlap slack*, not
//! engine work: it measures how far scan speed outruns the reader thread.
//! [`run_jobs_traced`] stamps that duration per job (`JobCtx::gate_wait`),
//! and `ChunkedFileBuffer::wait_available` separately charges each blocking
//! wait to `EngineMetrics::{chunk_waits, chunk_wait_nanos}`. Both are
//! scheduling-dependent — two identical cold runs legitimately differ — so
//! equivalence tests must treat them as advisory, never exact. The
//! deterministic invariant is elsewhere: *which* chunks complete and how
//! many bytes they charge is identical across runs; only *who waited and
//! for how long* varies. A worker blocked in a gate holds no lock and
//! parks on the chunk condvar, so it never prevents other workers from
//! claiming later (already-resident) morsels.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// Per-job execution context handed to a [`run_jobs_traced`] job closure:
/// which pool worker claimed the job, how long that worker was blocked in
/// the job's availability gate, and the worker's private trace sink.
///
/// The sink is the no-lock hot path of the tracing layer: each spawned
/// worker owns one `Vec<E>` for its whole lifetime (single writer, no
/// sharing), jobs append into it through this context, and the pool hands
/// all sinks back only after the scope barrier. Jobs append at most O(1)
/// events each, so sink volume is bounded by the job count (one morsel =
/// one job), never by row count.
pub struct JobCtx<'s, E> {
    /// Index of the pool worker running this job (`0..threads`; the serial
    /// inline path is worker `0`).
    pub worker: usize,
    /// How long this worker was blocked in the job's gate before the job
    /// ran. Zero for ungated jobs and for gates that admit immediately.
    pub gate_wait: Duration,
    /// The claiming worker's private event sink.
    pub sink: &'s mut Vec<E>,
}

/// Run every job, using up to `threads` OS threads, and return the results
/// in job order. `threads <= 1` (or a single job) runs inline on the caller
/// thread — the zero-overhead serial path. A panicking job propagates after
/// the scope joins, like the serial equivalent.
pub fn run_jobs<T, F>(jobs: Vec<F>, threads: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    type ReadyGate<T> = fn() -> Result<(), T>;
    fn ready<T>() -> Result<(), T> {
        Ok(())
    }
    let gated: Vec<(ReadyGate<T>, F)> =
        jobs.into_iter().map(|j| (ready::<T> as ReadyGate<T>, j)).collect();
    run_jobs_when(gated, threads)
}

/// Like [`run_jobs`], but each job is dispatched through a gate: the gate
/// blocks until the job may start (its inputs are resident) and the job
/// closure runs only once the gate returns `Ok`. A gate returning `Err(t)`
/// makes `t` the job's result directly — the job closure never runs (the
/// path a failed streaming read takes to surface its error to every
/// dependent morsel).
///
/// Workers still claim jobs through the shared cursor, so dispatch order
/// respects availability whenever availability is monotone in job order
/// (the sequential-reader case); a worker blocked in one gate never
/// prevents other workers from claiming and finishing later jobs.
pub fn run_jobs_when<T, G, F>(jobs: Vec<(G, F)>, threads: usize) -> Vec<T>
where
    T: Send,
    G: FnOnce() -> Result<(), T> + Send,
    F: FnOnce() -> T + Send,
{
    let traced: Vec<(G, _)> =
        jobs.into_iter().map(|(gate, job)| (gate, move |_ctx: JobCtx<'_, ()>| job())).collect();
    run_jobs_traced(traced, threads).0
}

/// The fully-instrumented dispatch path: like [`run_jobs_when`], but each
/// job closure receives a [`JobCtx`] carrying the claiming worker's id, the
/// measured gate-wait, and that worker's private event sink.
///
/// Returns `(results, sinks)`: results in job order (as always), and one
/// event sink per spawned worker in worker order. Sinks are per-worker, so
/// event order *within* a sink is that worker's claim order and the
/// cross-worker interleaving is scheduling-dependent; callers that need a
/// deterministic view must merge on an order key the events carry (the
/// executor sorts morsel traces by morsel index). A failed gate
/// short-circuits as in [`run_jobs_when`] — the job closure never runs, so
/// it records no events.
pub fn run_jobs_traced<T, E, G, F>(jobs: Vec<(G, F)>, threads: usize) -> (Vec<T>, Vec<Vec<E>>)
where
    T: Send,
    E: Send,
    G: FnOnce() -> Result<(), T> + Send,
    F: for<'s> FnOnce(JobCtx<'s, E>) -> T + Send,
{
    run_jobs_traced_ordered(jobs, threads, None)
}

/// [`run_jobs_traced`] with an explicit **claim order**: workers pull jobs
/// through the shared cursor in `claim` order (a permutation of
/// `0..jobs.len()`) instead of index order. Results still land in *job*
/// order and sinks are unchanged, so for independent jobs any claim order
/// produces identical output — only the completion schedule moves.
///
/// This is the skew-resistance lever: claiming predicted-heavy jobs first
/// (longest-processing-time-first) stops one long-tail morsel from landing
/// on a worker after the rest of the list has drained, which is exactly
/// when no rebalancing is possible. Callers must pass `None` when jobs
/// carry blocking gates whose availability is monotone in job order (the
/// sequential-reader cold path): claiming late jobs first would park every
/// worker on nearly the whole file.
///
/// Panics if `claim` is not a permutation of `0..jobs.len()`.
pub fn run_jobs_traced_ordered<T, E, G, F>(
    jobs: Vec<(G, F)>,
    threads: usize,
    claim: Option<Vec<usize>>,
) -> (Vec<T>, Vec<Vec<E>>)
where
    T: Send,
    E: Send,
    G: FnOnce() -> Result<(), T> + Send,
    F: for<'s> FnOnce(JobCtx<'s, E>) -> T + Send,
{
    let n = jobs.len();
    if let Some(order) = &claim {
        let mut seen = vec![false; n];
        assert_eq!(order.len(), n, "claim order must cover every job");
        for &i in order {
            assert!(i < n && !seen[i], "claim order must be a permutation");
            seen[i] = true;
        }
    }
    let claim_of = |k: usize| claim.as_ref().map_or(k, |order| order[k]);

    let threads = threads.max(1).min(n);
    if threads <= 1 {
        let mut sink: Vec<E> = Vec::new();
        let mut slots: Vec<Option<(G, F)>> = jobs.into_iter().map(Some).collect();
        let mut results: Vec<Option<T>> = std::iter::repeat_with(|| None).take(n).collect();
        for k in 0..n {
            let i = claim_of(k);
            let Some((gate, job)) = slots[i].take() else {
                unreachable!("each job claimed exactly once")
            };
            let start = Instant::now();
            let out = match gate() {
                Ok(()) => job(JobCtx { worker: 0, gate_wait: start.elapsed(), sink: &mut sink }),
                Err(t) => t,
            };
            results[i] = Some(out);
        }
        let results = results
            .into_iter()
            .map(|r| {
                let Some(out) = r else { unreachable!("every job ran") };
                out
            })
            .collect();
        return (results, vec![sink]);
    }

    let slots: Vec<Mutex<Option<(G, F)>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let sinks: Vec<Mutex<Vec<E>>> = (0..threads).map(|_| Mutex::new(Vec::new())).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for worker in 0..threads {
            let sinks = &sinks;
            let slots = &slots;
            let results = &results;
            let cursor = &cursor;
            let claim_of = &claim_of;
            scope.spawn(move || {
                // The worker's private sink: appended to lock-free for the
                // worker's whole run, published into the shared slot once at
                // the end (the only synchronized touch).
                let mut sink: Vec<E> = Vec::new();
                loop {
                    let k = cursor.fetch_add(1, Ordering::Relaxed);
                    if k >= n {
                        break;
                    }
                    let i = claim_of(k);
                    let Some((gate, job)) = slots[i].lock().take() else {
                        unreachable!("each job claimed exactly once")
                    };
                    let start = Instant::now();
                    let out = match gate() {
                        Ok(()) => {
                            job(JobCtx { worker, gate_wait: start.elapsed(), sink: &mut sink })
                        }
                        Err(t) => t,
                    };
                    *results[i].lock() = Some(out);
                }
                *sinks[worker].lock() = sink;
            });
        }
    });

    let results = results
        .into_iter()
        .map(|slot| {
            let Some(out) = slot.into_inner() else { unreachable!("scope joined, every job ran") };
            out
        })
        .collect();
    let sinks = sinks.into_iter().map(|s| s.into_inner()).collect();
    (results, sinks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_in_job_order() {
        let jobs: Vec<_> = (0..40).map(|i| move || i * 2).collect();
        assert_eq!(run_jobs(jobs, 8), (0..40).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_path_for_one_thread() {
        let jobs: Vec<_> = (0..5).map(|i| move || i).collect();
        assert_eq!(run_jobs(jobs, 1), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn actually_uses_multiple_threads() {
        let ids = Mutex::new(HashSet::new());
        let gate = AtomicU64::new(0);
        let jobs: Vec<_> = (0..4)
            .map(|_| {
                let ids = &ids;
                let gate = &gate;
                move || {
                    // Rendezvous: wait until at least two jobs run
                    // concurrently, proving >1 worker participates.
                    gate.fetch_add(1, Ordering::SeqCst);
                    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
                    while gate.load(Ordering::SeqCst) < 2 && std::time::Instant::now() < deadline {
                        std::hint::spin_loop();
                    }
                    ids.lock().insert(std::thread::current().id());
                }
            })
            .collect();
        run_jobs(jobs, 4);
        assert!(ids.lock().len() > 1, "work ran on more than one thread");
    }

    #[test]
    fn more_jobs_than_threads_all_complete() {
        let counter = AtomicU64::new(0);
        let jobs: Vec<_> = (0..100)
            .map(|_| {
                let counter = &counter;
                move || counter.fetch_add(1, Ordering::Relaxed)
            })
            .collect();
        let results = run_jobs(jobs, 3);
        assert_eq!(results.len(), 100);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn empty_job_list() {
        let jobs: Vec<fn() -> u32> = Vec::new();
        assert!(run_jobs(jobs, 4).is_empty());
    }

    #[test]
    fn claim_order_reorders_dispatch_but_not_results() {
        for threads in [1usize, 4] {
            // Heavy-first permutation over 9 jobs; results must stay in job
            // order and every job must run exactly once.
            let ran = Mutex::new(Vec::new());
            let jobs: Vec<_> = (0..9usize)
                .map(|i| {
                    let ran = &ran;
                    (
                        || -> Result<(), usize> { Ok(()) },
                        move |_ctx: JobCtx<'_, ()>| {
                            ran.lock().push(i);
                            i * 10
                        },
                    )
                })
                .collect();
            let claim = vec![8, 6, 4, 2, 0, 1, 3, 5, 7];
            let (results, _) = run_jobs_traced_ordered(jobs, threads, Some(claim.clone()));
            assert_eq!(results, (0..9).map(|i| i * 10).collect::<Vec<_>>());
            let mut seen = ran.into_inner();
            if threads == 1 {
                assert_eq!(seen, claim, "serial path honors the claim order exactly");
            }
            seen.sort_unstable();
            assert_eq!(seen, (0..9).collect::<Vec<_>>());
        }
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn claim_order_must_be_a_permutation() {
        let jobs: Vec<_> = (0..3)
            .map(|i| (|| -> Result<(), i32> { Ok(()) }, move |_: JobCtx<'_, ()>| i))
            .collect();
        run_jobs_traced_ordered(jobs, 2, Some(vec![0, 0, 1]));
    }

    #[test]
    fn gated_jobs_wait_for_admission_and_keep_job_order() {
        // A monotone availability watermark (the sequential-reader shape):
        // gates spin until the watermark covers their job. A background
        // "reader" advances it, so workers genuinely block and results must
        // still land in job order.
        let watermark = AtomicU64::new(0);
        for threads in [1usize, 4] {
            watermark.store(0, Ordering::SeqCst);
            std::thread::scope(|s| {
                let watermark = &watermark;
                s.spawn(|| {
                    for w in 1..=16u64 {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                        watermark.store(w, Ordering::SeqCst);
                    }
                });
                let jobs: Vec<_> = (0..16u64)
                    .map(|i| {
                        (
                            move || -> Result<(), u64> {
                                while watermark.load(Ordering::SeqCst) <= i {
                                    std::hint::spin_loop();
                                }
                                Ok(())
                            },
                            move || {
                                // The gate admitted us: availability covers i.
                                assert!(watermark.load(Ordering::SeqCst) > i);
                                i * 3
                            },
                        )
                    })
                    .collect();
                assert_eq!(
                    run_jobs_when(jobs, threads),
                    (0..16u64).map(|i| i * 3).collect::<Vec<_>>()
                );
            });
        }
    }

    #[test]
    fn traced_jobs_stamp_worker_and_collect_sink_events() {
        for threads in [1usize, 4] {
            let jobs: Vec<_> = (0..16u64)
                .map(|i| {
                    (
                        || -> Result<(), u64> { Ok(()) },
                        move |ctx: JobCtx<'_, (usize, u64)>| {
                            ctx.sink.push((ctx.worker, i));
                            i
                        },
                    )
                })
                .collect();
            let (results, sinks) = run_jobs_traced(jobs, threads);
            assert_eq!(results, (0..16u64).collect::<Vec<_>>());
            assert_eq!(sinks.len(), threads.clamp(1, 16));
            // Every job recorded exactly one event, each stamped with the
            // sink-owning worker's id.
            let mut seen: Vec<u64> = Vec::new();
            for (w, sink) in sinks.iter().enumerate() {
                for &(worker, i) in sink {
                    assert_eq!(worker, w, "event landed in its own worker's sink");
                    seen.push(i);
                }
            }
            seen.sort_unstable();
            assert_eq!(seen, (0..16u64).collect::<Vec<_>>());
        }
    }

    #[test]
    fn traced_failed_gate_records_no_events() {
        type BoxedGate = Box<dyn FnOnce() -> Result<(), i64> + Send>;
        let jobs: Vec<(BoxedGate, _)> = (0..8i64)
            .map(|i| {
                let gate: BoxedGate =
                    if i % 2 == 0 { Box::new(move || Err(-100 - i)) } else { Box::new(|| Ok(())) };
                (gate, move |ctx: JobCtx<'_, i64>| {
                    ctx.sink.push(i);
                    i
                })
            })
            .collect();
        let (results, sinks) = run_jobs_traced(jobs, 3);
        assert_eq!(results, vec![-100, 1, -102, 3, -104, 5, -106, 7]);
        let mut events: Vec<i64> = sinks.into_iter().flatten().collect();
        events.sort_unstable();
        assert_eq!(events, vec![1, 3, 5, 7], "short-circuited jobs left no trace");
    }

    #[test]
    fn traced_gate_wait_measures_blocking_time() {
        let release = AtomicU64::new(0);
        std::thread::scope(|s| {
            let release = &release;
            s.spawn(|| {
                std::thread::sleep(std::time::Duration::from_millis(20));
                release.store(1, Ordering::SeqCst);
            });
            let jobs = vec![(
                move || -> Result<(), std::time::Duration> {
                    while release.load(Ordering::SeqCst) == 0 {
                        std::hint::spin_loop();
                    }
                    Ok(())
                },
                |ctx: JobCtx<'_, ()>| ctx.gate_wait,
            )];
            let (results, _) = run_jobs_traced(jobs, 1);
            assert!(
                results[0] >= std::time::Duration::from_millis(10),
                "gate_wait {:?} should reflect the blocked interval",
                results[0]
            );
        });
    }

    #[test]
    fn failed_gate_short_circuits_without_running_the_job() {
        type BoxedGate = Box<dyn FnOnce() -> Result<(), i64> + Send>;
        let ran = AtomicU64::new(0);
        let jobs: Vec<(BoxedGate, _)> = (0..6i64)
            .map(|i| {
                let ran = &ran;
                let gate: BoxedGate =
                    if i % 2 == 0 { Box::new(move || Err(-i)) } else { Box::new(|| Ok(())) };
                (gate, move || {
                    ran.fetch_add(1, Ordering::SeqCst);
                    i
                })
            })
            .collect();
        let results = run_jobs_when(jobs, 3);
        assert_eq!(results, vec![0, 1, -2, 3, -4, 5]);
        assert_eq!(ran.load(Ordering::SeqCst), 3, "only odd jobs ran");
    }
}
