//! The partitioner: split a raw file into record-aligned morsels.
//!
//! A morsel is a contiguous run of whole records described both as a byte
//! range (what text scans walk) and a global row range (what row-addressed
//! scans walk, and what makes every morsel's outputs — provenance ids,
//! positional-map fragments, shred fragments — compose globally).
//!
//! ## The per-format segmentation contract
//!
//! Morsel boundaries must respect the format's native granularity, so each
//! format family gets its own partitioner:
//!
//! - **Record-aligned** (CSV): boundaries snap to record starts discovered
//!   by a dialect-matched probe. [`partition_csv`] splits on raw newlines
//!   (the JIT dialect, which never embeds newlines in fields) and
//!   [`partition_csv_quoted`] interprets quotes and escapes (the
//!   general-purpose in-situ dialect, where a quoted field may contain a
//!   newline). Planners pick the probe matching the scan they will build;
//!   [`partition_csv_with_map`] replays the probe's grid from a positional
//!   map without re-reading the file. On cold streamed reads the
//!   `_streaming` probe variants run **chunk-incrementally** over the
//!   in-flight [`raw_formats::file_buffer::ChunkedFileBuffer`], following
//!   the reader thread instead of starting after it — the same probe code
//!   over the same bytes, so the grid is identical by construction.
//! - **Row-arithmetic** (fbin, rootsim events): positions are deterministic,
//!   so [`partition_rows`] splits by pure arithmetic — no I/O.
//! - **Page-aligned** (ibin): boundaries snap to multiples of the file's
//!   `rows_per_page` via [`partition_pages`], so every morsel owns whole
//!   pages and per-morsel zone-index pruning over a partition of the pages
//!   reproduces the whole-file candidate set (and pruning counters) exactly.
//! - **Item-range** (rootsim collections): morsel row ranges are **event**
//!   ranges — items must stay with their owning event — but sizing walks
//!   the collection's cumulative offsets table via [`partition_items`] so
//!   each morsel covers a balanced share of the exploded *item* rows, not
//!   of the (possibly empty) events. Scans resolve each event range to its
//!   global item slice from the same offsets, so item rows concatenate
//!   deterministically in morsel order.
//!
//! The morsel grid is a function of the **file only**, never of the worker
//! count, so merged results are identical for any number of threads.

use raw_formats::csv::kernels;
use raw_formats::csv::tokenizer::{general_dialect_step, DialectByte, GeneralDialectState};
use raw_formats::csv::{ESCAPE, NEWLINE, QUOTE};
use raw_formats::error::FormatError;
use raw_formats::file_buffer::ChunkedFileBuffer;
use raw_posmap::{Lookup, PositionalMap};

/// Bytes the quote-aware probe bulk-scans per fast-path decision. Within a
/// chunk free of quote/escape bytes the probe degenerates to the same
/// accumulate-over-compare newline count as the raw probe, so quote-free
/// stretches (the common case) still run at memory speed.
const PROBE_CHUNK: usize = 4096;

/// One record-aligned slice of a raw file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Morsel {
    /// Position in the morsel grid (also the deterministic merge order).
    pub index: usize,
    /// Global row id of the first record.
    pub first_row: u64,
    /// Exclusive global row bound.
    pub end_row: u64,
    /// Byte offset of the first record (text formats; 0 for row-addressed
    /// formats, which partition purely by row arithmetic).
    pub byte_start: usize,
    /// Exclusive byte bound on a record boundary (text formats; 0 for
    /// row-addressed formats).
    pub byte_end: usize,
}

impl Morsel {
    /// Rows covered.
    pub fn rows(&self) -> u64 {
        self.end_row - self.first_row
    }
}

/// A partitioned CSV file: the morsel grid plus facts the probe established
/// on the way.
#[derive(Debug, Clone)]
pub struct CsvPartition {
    /// Record-aligned morsels covering the whole buffer, in file order.
    pub morsels: Vec<Morsel>,
    /// Total records in the buffer.
    pub total_rows: u64,
    /// Whether the buffer contains any quote (`"`) byte. [`partition_csv`]
    /// splits on raw newlines (the workspace's JIT CSV dialect) and only
    /// reports quotes; callers planning for the quote-aware general-purpose
    /// scan use [`partition_csv_quoted`], whose grid interprets them.
    pub saw_quote: bool,
}

/// Plan-time morsel-grid validator — the `checked` build's tiling
/// sanitizer, called by every partitioner before its grid escapes. Asserts
/// the grid tiles its row space `[0, total_rows)` exactly once: indices
/// dense from 0, row ranges contiguous (each morsel starts where the
/// previous ended), first at 0, last ending at `total_rows` — so no row is
/// scanned twice and none is dropped. When `total_bytes` is given
/// (byte-mapped CSV grids) the byte ranges must tile `[0, total_bytes)`
/// the same way. An empty grid is never validated here: partitioners
/// legitimately return no morsels for empty inputs or `target == 0`.
///
/// Always compiled (so the seeded-violation tests run in every
/// configuration); the partitioners only *call* it under
/// `feature = "checked"`.
pub fn validate_grid(morsels: &[Morsel], total_rows: u64, total_bytes: Option<usize>) {
    if morsels.is_empty() {
        return;
    }
    let mut row = 0u64;
    let mut byte = 0usize;
    for (i, m) in morsels.iter().enumerate() {
        assert_eq!(m.index, i, "checked: morsel index {} at grid position {i}", m.index);
        assert_eq!(
            m.first_row, row,
            "checked: morsel {i} starts at row {} but the grid has covered rows up to {row} — the grid must tile the row space exactly once",
            m.first_row
        );
        assert!(
            m.end_row >= m.first_row,
            "checked: morsel {i} has inverted row range {}..{}",
            m.first_row,
            m.end_row
        );
        row = m.end_row;
        if total_bytes.is_some() {
            assert_eq!(
                m.byte_start, byte,
                "checked: morsel {i} starts at byte {} but the grid has covered bytes up to {byte}",
                m.byte_start
            );
            assert!(
                m.byte_end >= m.byte_start,
                "checked: morsel {i} has inverted byte range {}..{}",
                m.byte_start,
                m.byte_end
            );
            byte = m.byte_end;
        }
    }
    assert_eq!(
        row, total_rows,
        "checked: grid covers rows [0, {row}) but the input has {total_rows} rows"
    );
    if let Some(total) = total_bytes {
        assert_eq!(
            byte, total,
            "checked: grid covers bytes [0, {byte}) but the input has {total} bytes"
        );
    }
}

/// Split `total_rows` row-addressed records (fbin, rootsim events) into at
/// most `target` balanced morsels — pure arithmetic, no I/O.
pub fn partition_rows(total_rows: u64, target: usize) -> Vec<Morsel> {
    if total_rows == 0 || target == 0 {
        return Vec::new();
    }
    let target = (target as u64).min(total_rows);
    let base = total_rows / target;
    let extra = total_rows % target;
    let mut morsels = Vec::with_capacity(target as usize);
    let mut row = 0u64;
    for index in 0..target {
        let len = base + u64::from(index < extra);
        morsels.push(Morsel {
            index: index as usize,
            first_row: row,
            end_row: row + len,
            byte_start: 0,
            byte_end: 0,
        });
        row += len;
    }
    #[cfg(feature = "checked")]
    validate_grid(&morsels, total_rows, None);
    morsels
}

/// Split `total_rows` rows stored in fixed-size pages of `rows_per_page`
/// rows into at most `target` **page-aligned** morsels: every boundary
/// except the final row count lands on a page boundary, so each morsel owns
/// whole pages (the last page may be short). Page counts per morsel are
/// balanced (they differ by at most one), which keeps morsel sizes balanced
/// too.
pub fn partition_pages(total_rows: u64, rows_per_page: u32, target: usize) -> Vec<Morsel> {
    if total_rows == 0 || rows_per_page == 0 || target == 0 {
        return Vec::new();
    }
    let rpp = u64::from(rows_per_page);
    let pages = total_rows.div_ceil(rpp);
    let morsels: Vec<Morsel> = partition_rows(pages, target)
        .into_iter()
        .map(|m| Morsel {
            index: m.index,
            first_row: m.first_row * rpp,
            end_row: (m.end_row * rpp).min(total_rows),
            byte_start: 0,
            byte_end: 0,
        })
        .collect();
    #[cfg(feature = "checked")]
    validate_grid(&morsels, total_rows, None);
    morsels
}

/// Split the events of a variable-length collection into at most `target`
/// morsels of roughly equal **item** counts. `offsets` is the collection's
/// cumulative offsets table (`offsets[e]` = items before event `e`, length
/// `events + 1`, `offsets[0] == 0`) — the same structure the scan resolves
/// item slices from, so sizing charges what the scan will actually read.
///
/// Morsel row ranges are **event** ranges: an event's items never split
/// across morsels, so parent-scalar replication and item provenance stay
/// whole per morsel, and consecutive morsels cover consecutive global item
/// slices `offsets[first_row]..offsets[end_row]`.
pub fn partition_items(offsets: &[u64], target: usize) -> Vec<Morsel> {
    let Some((&total_items, _)) = offsets.split_last() else { return Vec::new() };
    let events = (offsets.len() - 1) as u64;
    if events == 0 || target == 0 {
        return Vec::new();
    }
    if total_items == 0 {
        // Nothing to balance by; fall back to balanced event counts.
        return partition_rows(events, target);
    }
    let stride = total_items.div_ceil(target as u64).max(1);

    let mut morsels = Vec::new();
    let mut first_event = 0u64;
    loop {
        // Cut at the first event boundary at or past this morsel's item
        // quota. `offsets[first_event] < quota` always (stride >= 1), so the
        // cut advances by at least one event.
        let quota = offsets[first_event as usize] + stride;
        let next = offsets.partition_point(|&o| o < quota) as u64;
        if next >= events || morsels.len() + 1 >= target {
            break;
        }
        morsels.push(Morsel {
            index: morsels.len(),
            first_row: first_event,
            end_row: next,
            byte_start: 0,
            byte_end: 0,
        });
        first_event = next;
    }
    // Everything after the last cut — including any trailing empty events —
    // is the final morsel.
    morsels.push(Morsel {
        index: morsels.len(),
        first_row: first_event,
        end_row: events,
        byte_start: 0,
        byte_end: 0,
    });
    #[cfg(feature = "checked")]
    validate_grid(&morsels, events, None);
    morsels
}

/// Sequentially-consumed probe input. `ensure(upto)` blocks until bytes
/// `..upto` are readable — a no-op for fully-resident slices, a
/// [`ChunkedFileBuffer::wait_available`] for cold streamed buffers. The
/// probes guarantee by construction that they never read a byte position
/// they have not ensured, which is what makes the streaming and resident
/// variants produce identical grids: they are the *same* code.
trait ProbeBytes {
    /// Block until bytes `..upto` (clamped to the file) are readable.
    fn ensure(&mut self, upto: usize) -> Result<(), FormatError>;
    /// The underlying bytes. Positions `>= ensured` must not be read.
    fn bytes(&self) -> &[u8];
}

/// Fully-resident input: every byte readable, `ensure` free.
struct Resident<'a>(&'a [u8]);

impl ProbeBytes for Resident<'_> {
    #[inline]
    fn ensure(&mut self, _upto: usize) -> Result<(), FormatError> {
        Ok(())
    }
    #[inline]
    fn bytes(&self) -> &[u8] {
        self.0
    }
}

/// Cold streamed input: `ensure` waits on the chunk grid, with a watermark
/// so re-ensuring an already-available prefix costs one comparison.
struct Streamed<'a> {
    chunked: &'a ChunkedFileBuffer,
    ensured: usize,
}

impl ProbeBytes for Streamed<'_> {
    #[inline]
    fn ensure(&mut self, upto: usize) -> Result<(), FormatError> {
        let upto = upto.min(self.chunked.len());
        if upto > self.ensured {
            self.chunked.wait_available(self.ensured..upto)?;
            self.ensured = upto;
        }
        Ok(())
    }
    #[inline]
    fn bytes(&self) -> &[u8] {
        self.chunked.bytes()
    }
}

/// Split a CSV buffer into at most `target` morsels by probing newlines.
///
/// The probe is one sequential pass (far cheaper than parsing: no
/// tokenizing, no conversion) that counts records and snaps morsel
/// boundaries to record starts once a morsel has reached its byte quota.
/// Newlines inside a morsel's body are bulk-counted over whole slices (a
/// shape LLVM vectorizes), and only the few bytes around each boundary are
/// walked individually, so the probe runs at memory speed rather than
/// tokenizer speed — it must not become the serial Amdahl term of the
/// parallel scan it enables. A final record without a trailing newline is
/// still a record, matching the scan operators.
pub fn partition_csv(buf: &[u8], target: usize) -> CsvPartition {
    partition_csv_impl(&mut Resident(buf), buf.len(), target).expect("resident probe cannot fail")
}

/// [`partition_csv`] over a cold, still-streaming buffer: the probe follows
/// the reader thread chunk by chunk (waiting only when it catches up), so
/// probing overlaps the disk read instead of starting after it. The grid is
/// byte-identical to [`partition_csv`] on the finished file — both run the
/// same probe over the same bytes. Errors surface the reader's I/O failure.
pub fn partition_csv_streaming(
    chunked: &ChunkedFileBuffer,
    target: usize,
) -> Result<CsvPartition, FormatError> {
    partition_csv_impl(&mut Streamed { chunked, ensured: 0 }, chunked.len(), target)
}

fn partition_csv_impl<B: ProbeBytes>(
    input: &mut B,
    len: usize,
    target: usize,
) -> Result<CsvPartition, FormatError> {
    if len == 0 || target == 0 {
        return Ok(CsvPartition { morsels: Vec::new(), total_rows: 0, saw_quote: false });
    }
    let stride = len.div_ceil(target).max(1);

    let mut morsels = Vec::with_capacity(target);
    let mut cur_byte = 0usize;
    let mut newlines = 0u64; // records completed (newline seen) before `pos`
    let mut saw_quote = false;
    let mut pos = 0usize;
    while pos < len {
        // Bulk-scan up to this morsel's byte quota...
        let quota = (cur_byte + stride).min(len);
        if pos < quota {
            input.ensure(quota)?;
            let (n, q) = scan_chunk(&input.bytes()[pos..quota]);
            newlines += n;
            saw_quote |= q;
            pos = quota;
        }
        if pos >= len {
            break;
        }
        // ...then walk to the next record boundary to snap the cut there,
        // in bounded windows so a streamed probe never waits past the
        // boundary it needs.
        let mut cut = None;
        while pos < len {
            let wend = (pos + PROBE_CHUNK).min(len);
            input.ensure(wend)?;
            let window = &input.bytes()[pos..wend];
            match kernels::memchr(NEWLINE, window) {
                Some(nl) => {
                    saw_quote |= kernels::memchr(QUOTE, &window[..nl]).is_some();
                    newlines += 1;
                    cut = Some(pos + nl + 1);
                    pos += nl + 1;
                    break;
                }
                None => {
                    saw_quote |= kernels::memchr(QUOTE, window).is_some();
                    pos = wend;
                }
            }
        }
        if let Some(next) = cut {
            if next < len {
                morsels.push(Morsel {
                    index: morsels.len(),
                    first_row: morsels.last().map_or(0, |m: &Morsel| m.end_row),
                    end_row: newlines,
                    byte_start: cur_byte,
                    byte_end: next,
                });
                cur_byte = next;
            }
        }
    }
    // Everything after the last cut is the final morsel; an unterminated
    // final line is still a record.
    input.ensure(len)?;
    let total_rows = newlines + u64::from(input.bytes()[len - 1] != NEWLINE);
    let first_row = morsels.last().map_or(0, |m| m.end_row);
    morsels.push(Morsel {
        index: morsels.len(),
        first_row,
        end_row: total_rows,
        byte_start: cur_byte,
        byte_end: len,
    });
    #[cfg(feature = "checked")]
    validate_grid(&morsels, total_rows, Some(len));
    Ok(CsvPartition { morsels, total_rows, saw_quote })
}

/// Count newline bytes and detect quote bytes in `chunk` in one pass — a
/// thin wrapper over the shared SWAR classifier
/// ([`raw_formats::csv::kernels::count2`]), the same kernel the scans
/// tokenize with, so probe and scan can never disagree on what counts as a
/// newline or quote byte.
#[inline]
fn scan_chunk(chunk: &[u8]) -> (u64, bool) {
    let (newlines, quotes) = kernels::count2(NEWLINE, QUOTE, chunk);
    (newlines, quotes > 0)
}

/// Advance the shared general-dialect state machine
/// ([`raw_formats::csv::tokenizer::general_dialect_step`] — the same byte
/// classifier the in-situ scan tokenizes with, so probe and scan agree on
/// record boundaries by construction); returns whether the byte ended a
/// record.
#[inline]
fn dialect_step(state: &mut GeneralDialectState, b: u8) -> bool {
    general_dialect_step(state, b) == DialectByte::RecordEnd
}

/// Bulk-count newline/quote/escape bytes via the shared SWAR classifier
/// ([`raw_formats::csv::kernels::count3`]) — the one newline/quote/escape
/// counting kernel in the tree.
#[inline]
fn count_dialect_bytes(chunk: &[u8]) -> (u64, u64, u64) {
    kernels::count3(NEWLINE, QUOTE, ESCAPE, chunk)
}

/// Split a CSV buffer into at most `target` morsels under the
/// **general-purpose (in-situ) dialect**: a newline inside a quoted field —
/// or escaped by `\` — is field content, not a record boundary.
///
/// Same boundary-snapping rule as [`partition_csv`] (cut at the end of the
/// record containing each byte quota), so a warm, positional-map-hinted
/// partition of the same file replays this probe's grid exactly. Chunks
/// free of quote/escape bytes take the bulk counting path, so the probe
/// stays at memory speed on quote-free stretches and only drops to the
/// byte-at-a-time state machine where the dialect demands it.
pub fn partition_csv_quoted(buf: &[u8], target: usize) -> CsvPartition {
    partition_csv_quoted_impl(&mut Resident(buf), buf.len(), target)
        .expect("resident probe cannot fail")
}

/// [`partition_csv_quoted`] over a cold, still-streaming buffer — the
/// general-dialect twin of [`partition_csv_streaming`], same guarantees.
pub fn partition_csv_quoted_streaming(
    chunked: &ChunkedFileBuffer,
    target: usize,
) -> Result<CsvPartition, FormatError> {
    partition_csv_quoted_impl(&mut Streamed { chunked, ensured: 0 }, chunked.len(), target)
}

fn partition_csv_quoted_impl<B: ProbeBytes>(
    input: &mut B,
    len: usize,
    target: usize,
) -> Result<CsvPartition, FormatError> {
    if len == 0 || target == 0 {
        return Ok(CsvPartition { morsels: Vec::new(), total_rows: 0, saw_quote: false });
    }
    let stride = len.div_ceil(target).max(1);

    let mut morsels = Vec::with_capacity(target);
    let mut cur_byte = 0usize;
    let mut records = 0u64; // records completed (boundary seen) before `pos`
    let mut saw_quote = false;
    let mut state = GeneralDialectState::default();
    // Whether the most recently processed byte ended a record (decides if
    // the file's tail is an unterminated final record).
    let mut ended_on_boundary = false;
    let mut pos = 0usize;
    while pos < len {
        // Bulk-scan up to this morsel's byte quota...
        let quota = (cur_byte + stride).min(len);
        while pos < quota {
            let chunk_end = quota.min(pos + PROBE_CHUNK);
            input.ensure(chunk_end)?;
            let chunk = &input.bytes()[pos..chunk_end];
            let (newlines, quotes, escapes) = count_dialect_bytes(chunk);
            saw_quote |= quotes > 0;
            if quotes == 0 && escapes == 0 && !state.escaped {
                // Dialect-inert chunk: every newline is a boundary iff we
                // are at top level; none is if we are inside quotes.
                if !state.in_quotes {
                    records += newlines;
                    ended_on_boundary = chunk[chunk.len() - 1] == NEWLINE;
                } else {
                    // Everything in the chunk is quoted field content.
                    ended_on_boundary = false;
                }
            } else {
                for &b in chunk {
                    ended_on_boundary = dialect_step(&mut state, b);
                    records += u64::from(ended_on_boundary);
                }
            }
            pos = chunk_end;
        }
        if pos >= len {
            break;
        }
        // ...then walk to the next record boundary to snap the cut there
        // (ensuring ahead one probe window at a time; the watermark makes
        // repeated ensures free).
        let mut cut = None;
        while pos < len {
            input.ensure((pos + PROBE_CHUNK).min(len))?;
            let b = input.bytes()[pos];
            saw_quote |= b == QUOTE;
            ended_on_boundary = dialect_step(&mut state, b);
            pos += 1;
            if ended_on_boundary {
                records += 1;
                cut = Some(pos);
                break;
            }
        }
        match cut {
            Some(next) if next < len => {
                morsels.push(Morsel {
                    index: morsels.len(),
                    first_row: morsels.last().map_or(0, |m: &Morsel| m.end_row),
                    end_row: records,
                    byte_start: cur_byte,
                    byte_end: next,
                });
                cur_byte = next;
            }
            _ => break, // boundary at EOF (or none before it): tail below
        }
    }
    // Everything after the last cut is the final morsel; an unterminated
    // final record (EOF without a closing boundary) is still a record.
    let total_rows = records + u64::from(!ended_on_boundary);
    let first_row = morsels.last().map_or(0, |m| m.end_row);
    morsels.push(Morsel {
        index: morsels.len(),
        first_row,
        end_row: total_rows,
        byte_start: cur_byte,
        byte_end: len,
    });
    #[cfg(feature = "checked")]
    validate_grid(&morsels, total_rows, Some(len));
    Ok(CsvPartition { morsels, total_rows, saw_quote })
}

/// Split a CSV buffer using an existing positional map as split hints: when
/// the map tracks column 0, its positions *are* the record starts, so the
/// partitioner needs no probe pass at all. Returns `None` when the map
/// cannot serve (column 0 untracked, or no rows).
///
/// Boundaries replay [`partition_csv`]'s byte-quota rule against the
/// recorded record starts (binary search instead of byte probing), so a
/// warm run partitions **exactly** like the cold probe did — the morsel
/// grid, and therefore the float-summation tree of merged partial
/// aggregates, is identical cold and warm.
pub fn partition_csv_with_map(
    map: &PositionalMap,
    buf_len: usize,
    target: usize,
) -> Option<Vec<Morsel>> {
    let Lookup::Exact { positions, .. } = map.lookup(0) else {
        return None;
    };
    let total_rows = map.rows();
    if total_rows == 0 || target == 0 || buf_len == 0 {
        return None;
    }
    let stride = buf_len.div_ceil(target).max(1);

    let mut morsels = Vec::with_capacity(target);
    let mut cur_byte = 0usize;
    let mut cur_row = 0usize;
    loop {
        let quota = cur_byte + stride;
        if quota >= buf_len {
            break;
        }
        // The probe cuts at the first record start strictly past the quota.
        let i = positions.partition_point(|&p| (p as usize) <= quota);
        if i >= positions.len() {
            break;
        }
        let next = positions[i] as usize;
        morsels.push(Morsel {
            index: morsels.len(),
            first_row: cur_row as u64,
            end_row: i as u64,
            byte_start: cur_byte,
            byte_end: next,
        });
        cur_byte = next;
        cur_row = i;
    }
    morsels.push(Morsel {
        index: morsels.len(),
        first_row: cur_row as u64,
        end_row: total_rows,
        byte_start: cur_byte,
        byte_end: buf_len,
    });
    #[cfg(feature = "checked")]
    validate_grid(&morsels, total_rows, Some(buf_len));
    Some(morsels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use raw_posmap::PosMapBuilder;

    fn csv(rows: usize, field: &str) -> Vec<u8> {
        (0..rows).map(|i| format!("{i},{field}\n")).collect::<String>().into_bytes()
    }

    fn assert_covers(p: &CsvPartition, buf: &[u8]) {
        let mut byte = 0usize;
        let mut row = 0u64;
        for (i, m) in p.morsels.iter().enumerate() {
            assert_eq!(m.index, i);
            assert_eq!(m.byte_start, byte, "byte-contiguous");
            assert_eq!(m.first_row, row, "row-contiguous");
            assert!(m.end_row > m.first_row, "no empty morsels");
            assert!(
                m.byte_start == 0 || buf[m.byte_start - 1] == b'\n',
                "morsel starts on a record boundary"
            );
            byte = m.byte_end;
            row = m.end_row;
        }
        assert_eq!(byte, buf.len(), "morsels cover the buffer");
        assert_eq!(row, p.total_rows, "morsels cover every row");
    }

    #[test]
    fn csv_partition_covers_and_aligns() {
        let buf = csv(100, "abc,def");
        let p = partition_csv(&buf, 7);
        assert_eq!(p.total_rows, 100);
        assert!(p.morsels.len() >= 2 && p.morsels.len() <= 7);
        assert_covers(&p, &buf);
    }

    #[test]
    fn csv_partition_counts_unterminated_final_row() {
        let mut buf = csv(10, "x");
        buf.pop(); // drop the trailing newline
        let p = partition_csv(&buf, 3);
        assert_eq!(p.total_rows, 10, "final unterminated line is a record");
        assert_covers(&p, &buf);
    }

    #[test]
    fn csv_partition_short_file_yields_one_morsel() {
        let buf = csv(2, "y");
        let p = partition_csv(&buf, 8);
        assert!(p.morsels.len() <= 2);
        assert_covers(&p, &buf);
        let empty = partition_csv(b"", 4);
        assert!(empty.morsels.is_empty());
        assert_eq!(empty.total_rows, 0);
    }

    #[test]
    fn quoted_probe_equals_raw_probe_on_quote_free_input() {
        let buf = csv(100, "abc,def");
        for target in 1..9 {
            let raw = partition_csv(&buf, target);
            let quoted = partition_csv_quoted(&buf, target);
            assert_eq!(quoted.morsels, raw.morsels, "target {target}");
            assert_eq!(quoted.total_rows, raw.total_rows);
            assert!(!quoted.saw_quote);
        }
    }

    #[test]
    fn quoted_probe_keeps_quoted_newlines_inside_records() {
        // Two records under the general dialect; three raw newlines.
        let buf = b"1,\"a\nb\"\n2,c\n";
        let q = partition_csv_quoted(buf, 4);
        assert_eq!(q.total_rows, 2, "quoted newline is field content");
        assert!(q.saw_quote);
        assert_covers(&q, buf);
        for m in &q.morsels {
            // Neither cut may land inside the quoted field (bytes 2..7).
            assert!(m.byte_end <= 2 || m.byte_end >= 8, "cut at {}", m.byte_end);
        }
        // The raw probe still counts raw newlines (the JIT dialect).
        assert_eq!(partition_csv(buf, 4).total_rows, 3);
    }

    #[test]
    fn quoted_probe_handles_escapes_and_unterminated_tails() {
        // `\`-escaped newline outside quotes is content; unterminated
        // final record still counts.
        let buf = b"a,b\\\nc\nd,e";
        let q = partition_csv_quoted(buf, 4);
        assert_eq!(q.total_rows, 2);
        assert_covers(&q, buf);

        // Unbalanced quote swallowing the rest of the file: one record.
        let buf = b"a,\"b\nc\nd";
        let q = partition_csv_quoted(buf, 4);
        assert_eq!(q.total_rows, 1);
        assert_eq!(q.morsels.len(), 1);

        let empty = partition_csv_quoted(b"", 4);
        assert!(empty.morsels.is_empty());
        assert_eq!(empty.total_rows, 0);
    }

    #[test]
    fn quoted_probe_bulk_path_agrees_with_state_machine_across_chunks() {
        // A quoted section spanning multiple probe chunks: the bulk path
        // must stay suppressed until the closing quote.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"head,x\n");
        buf.extend_from_slice(b"k,\"");
        buf.resize(buf.len() + 3 * PROBE_CHUNK, b'\n'); // quoted newlines: all content
        buf.extend_from_slice(b"\"\n");
        for i in 0..50 {
            buf.extend_from_slice(format!("{i},tail\n").as_bytes());
        }
        let q = partition_csv_quoted(&buf, 6);
        assert_eq!(q.total_rows, 52);
        assert_covers(&q, &buf);
    }

    #[test]
    fn row_partition_balances() {
        let ms = partition_rows(10, 4);
        assert_eq!(ms.len(), 4);
        let sizes: Vec<u64> = ms.iter().map(Morsel::rows).collect();
        assert_eq!(sizes.iter().sum::<u64>(), 10);
        assert!(sizes.iter().all(|&s| s == 2 || s == 3));
        assert_eq!(ms.last().unwrap().end_row, 10);

        assert_eq!(partition_rows(3, 8).len(), 3, "never more morsels than rows");
        assert!(partition_rows(0, 4).is_empty());
    }

    #[test]
    fn page_partition_snaps_to_page_boundaries() {
        // 100 rows in pages of 16: 7 pages (last one short).
        let ms = partition_pages(100, 16, 3);
        assert_eq!(ms.len(), 3);
        let mut row = 0u64;
        for (i, m) in ms.iter().enumerate() {
            assert_eq!(m.index, i);
            assert_eq!(m.first_row, row, "row-contiguous");
            assert_eq!(m.first_row % 16, 0, "starts on a page boundary");
            row = m.end_row;
        }
        assert_eq!(row, 100, "covers every row");
        for m in &ms[..ms.len() - 1] {
            assert_eq!(m.end_row % 16, 0, "interior cut on a page boundary");
        }
        // Never more morsels than pages.
        assert_eq!(partition_pages(100, 16, 50).len(), 7);
        assert!(partition_pages(0, 16, 4).is_empty());
        assert!(partition_pages(100, 0, 4).is_empty());
        assert!(partition_pages(100, 16, 0).is_empty());
    }

    #[test]
    fn item_partition_balances_items_not_events() {
        // 6 events with item counts [0, 10, 0, 0, 10, 0]: cuts must land
        // where the items are, keeping empty events attached.
        let counts = [0u64, 10, 0, 0, 10, 0];
        let mut offsets = vec![0u64];
        for c in counts {
            offsets.push(offsets.last().unwrap() + c);
        }
        let ms = partition_items(&offsets, 2);
        assert_eq!(ms.len(), 2);
        let items = |m: &Morsel| offsets[m.end_row as usize] - offsets[m.first_row as usize];
        assert_eq!(items(&ms[0]), 10);
        assert_eq!(items(&ms[1]), 10);
        let mut event = 0u64;
        for (i, m) in ms.iter().enumerate() {
            assert_eq!(m.index, i);
            assert_eq!(m.first_row, event, "event-contiguous");
            assert!(m.end_row > m.first_row, "at least one event per morsel");
            event = m.end_row;
        }
        assert_eq!(event, 6, "covers every event, trailing empties included");

        // All-empty collections fall back to balanced event counts.
        let empty_items = partition_items(&[0, 0, 0, 0, 0], 2);
        assert_eq!(empty_items.len(), 2);
        assert_eq!(empty_items.last().unwrap().end_row, 4);

        assert!(partition_items(&[0], 4).is_empty(), "zero events");
        assert!(partition_items(&[], 4).is_empty());
        assert!(partition_items(&[0, 5], 0).is_empty());
    }

    /// In-memory [`raw_formats::file_buffer::ChunkSource`] serving `data`,
    /// so a live reader thread can race the streamed probes.
    struct VecSource(Vec<u8>);

    impl raw_formats::file_buffer::ChunkSource for VecSource {
        fn read_chunk(&mut self, offset: u64, dst: &mut [u8]) -> std::io::Result<()> {
            let start = offset as usize;
            dst.copy_from_slice(&self.0[start..start + dst.len()]);
            Ok(())
        }
    }

    #[test]
    fn streaming_probes_match_resident_probes() {
        // Content variants: plain, quoted newlines, unterminated tail. The
        // streamed probe races a live reader thread filling tiny chunks and
        // must land on the identical grid.
        let mut quoted = csv(300, "aa,bb");
        quoted.extend_from_slice(b"1,\"x\ny\"\n2,z");
        for content in [csv(500, "abc,def"), quoted] {
            for chunk in [7usize, 64, 4096] {
                for target in [1usize, 3, 8] {
                    let chunked = ChunkedFileBuffer::spawn(
                        "/virtual/probe",
                        VecSource(content.clone()),
                        content.len(),
                        chunk,
                    );
                    let raw = partition_csv(&content, target);
                    let raw_streamed = partition_csv_streaming(&chunked, target).unwrap();
                    assert_eq!(raw_streamed.morsels, raw.morsels, "raw chunk={chunk}");
                    assert_eq!(raw_streamed.total_rows, raw.total_rows);
                    assert_eq!(raw_streamed.saw_quote, raw.saw_quote);

                    let q = partition_csv_quoted(&content, target);
                    let q_streamed = partition_csv_quoted_streaming(&chunked, target).unwrap();
                    assert_eq!(q_streamed.morsels, q.morsels, "quoted chunk={chunk}");
                    assert_eq!(q_streamed.total_rows, q.total_rows);
                    assert_eq!(q_streamed.saw_quote, q.saw_quote);
                }
            }
        }
    }

    #[test]
    fn streaming_probe_surfaces_reader_failure() {
        let buf = ChunkedFileBuffer::new_manual("/virtual/probefail", 1 << 20, 4096);
        buf.complete_chunk(0);
        buf.fail(std::io::Error::other("disk gone"));
        let err = partition_csv_streaming(&buf, 8).unwrap_err();
        assert!(err.to_string().contains("disk gone"), "{err}");
        let err = partition_csv_quoted_streaming(&buf, 8).unwrap_err();
        assert!(err.to_string().contains("disk gone"), "{err}");
    }

    #[test]
    fn map_hints_reproduce_probe_grid_exactly() {
        let buf = csv(50, "hello,world");
        // Build the map a full scan would: col 0 tracked, one entry per row.
        let mut b = PosMapBuilder::new(vec![0]);
        let mut pos = 0u64;
        for i in 0..50 {
            let line_len = format!("{i},hello,world\n").len() as u64;
            b.record(0, pos, i.to_string().len() as u32);
            pos += line_len;
        }
        let map = b.finish().unwrap();
        for target in 1..9 {
            let probe = partition_csv(&buf, target);
            let hinted = partition_csv_with_map(&map, buf.len(), target).unwrap();
            // Cold (probe) and warm (map-hinted) runs must use the *same*
            // grid, so merged float aggregates are bitwise cold/warm stable.
            assert_eq!(hinted, probe.morsels, "target {target}");
        }

        // A map without column 0 cannot hint.
        let mut odd = PosMapBuilder::new(vec![2]);
        odd.record(0, 3, 1);
        let odd = odd.finish().unwrap();
        assert!(partition_csv_with_map(&odd, buf.len(), 4).is_none());
    }
}
