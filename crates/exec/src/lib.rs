//! # raw-exec
//!
//! Morsel-driven parallel in-situ execution over raw files — the multi-core
//! dimension the RAW paper (§8) leaves as future work, following the
//! morsel-driven architecture popularized by HyPer and applied to raw files
//! by OLA-RAW.
//!
//! Three pieces compose into a parallel access path:
//!
//! - [`morsel`] — a **partitioner** that splits a raw file into
//!   record-aligned morsels: newline probing for CSV (reusing positional-map
//!   entries as split hints when one exists), pure row arithmetic for
//!   fixed-width binary and rootsim event files, page-aligned splitting for
//!   ibin's zone-indexed pages, and item-balanced event ranges for rootsim
//!   collections (see the [`morsel`] docs for the per-format contract).
//! - [`pool`] — a **scoped worker pool** (std threads, morsel-stealing via an
//!   atomic cursor) that runs one scan→filter→partial-aggregate pipeline per
//!   morsel. Workers claim morsels dynamically, so skew in morsel cost does
//!   not idle threads. On cold streamed runs, [`run_jobs_when`] gates each
//!   morsel on the availability of its byte range
//!   ([`raw_formats::file_buffer::ChunkedFileBuffer::wait_available`]), so
//!   early morsels scan while the reader thread is still pulling later
//!   chunks off disk — the overlap that lets cold throughput scale past the
//!   memory-resident case. [`global`] is its multi-query sibling: one
//!   engine-lifetime [`GlobalPool`] whose long-lived workers serve every
//!   session, with per-query admission and round-robin morsel scheduling so
//!   concurrent queries share the cores fairly.
//! - [`executor`] — the **deterministic merge layer**: selection batches
//!   concatenate in morsel order; partial aggregate states
//!   ([`raw_columnar::ops::AggAccumulator`]) merge in morsel order. Because
//!   the morsel grid depends only on the file (never on the thread count),
//!   results are identical for any worker count.
//!
//! Side effects keep the paper's "queries build indexes as a side effect"
//! semantics under parallelism: every morsel pipeline owns thread-safe sinks
//! (`Arc<Mutex<…>>`) for the positional-map fragment and column shreds it
//! builds; after the pool barrier the engine appends posmap fragments in
//! morsel order and merges shred fragments (disjoint global row ranges) into
//! its shared pools.
//!
//! The crate is engine-agnostic: it sees only [`raw_columnar::ops::Operator`]
//! pipelines. `raw-engine` plans per-morsel pipelines (via
//! `ScanSegment`-bounded scans) and owns the side-effect absorption.

pub mod executor;
pub mod global;
pub mod morsel;
pub mod pool;

pub use executor::{
    execute_morsels, execute_morsels_pooled, execute_morsels_scheduled, execute_morsels_when,
    GroupedMerge, MergePlan, MorselGate, ParallelOutcome,
};
pub use global::GlobalPool;
pub use morsel::{
    partition_csv, partition_csv_quoted, partition_csv_quoted_streaming, partition_csv_streaming,
    partition_csv_with_map, partition_items, partition_pages, partition_rows, CsvPartition, Morsel,
};
pub use pool::{run_jobs, run_jobs_traced_ordered, run_jobs_when};

/// The number of worker threads "all cores" resolves to on this host.
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}
