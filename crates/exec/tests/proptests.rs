//! Property tests: record-boundary-aligned partitioning loses and duplicates
//! no rows on adversarial CSV inputs — quoted fields, trailing-newline
//! variations, short files smaller than a morsel — and per-morsel segment
//! scans concatenate to exactly the whole-file scan.

use proptest::prelude::*;

use raw_access::csv::{CsvScanInput, InSituCsvScan, PosMapSource};
use raw_access::spec::{AccessPathKind, AccessPathSpec, FileFormat, ScanSegment, WantedField};
use raw_columnar::batch::TableTag;
use raw_columnar::ops::{collect, AggExpr, AggKind, GroupedAccumulator};
use raw_columnar::{Batch, DataType, Schema};
use raw_exec::{
    partition_csv, partition_csv_quoted, partition_csv_with_map, partition_items, partition_pages,
    partition_rows, Morsel,
};
use raw_formats::file_buffer::file_bytes;

/// Render rows of (content, quoted?) fields into CSV bytes. The first field
/// of every row is non-empty so every record occupies at least one byte.
fn render(rows: &[Vec<(String, bool)>], trailing_newline: bool) -> Vec<u8> {
    let mut out = String::new();
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        for (j, (content, quoted)) in row.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            if *quoted {
                out.push('"');
                out.push_str(content);
                out.push('"');
            } else {
                out.push_str(content);
            }
        }
    }
    if trailing_newline && !rows.is_empty() {
        out.push('\n');
    }
    out.into_bytes()
}

fn scan_whole(buf: &[u8], cols: usize, record: &[usize]) -> InSituCsvScan {
    InSituCsvScan::new(CsvScanInput {
        buf: file_bytes(buf.to_vec()),
        spec: AccessPathSpec {
            format: FileFormat::Csv,
            schema: Schema::uniform(cols, DataType::Utf8),
            wanted: (0..cols)
                .map(|c| WantedField { source_ordinal: c, data_type: DataType::Utf8 })
                .collect(),
            kind: AccessPathKind::FullScan,
            record_positions: record.to_vec(),
        },
        tag: TableTag(0),
        posmap: None,
        batch_size: 7,
    })
}

fn scan_morsel(buf: &[u8], cols: usize, m: &Morsel) -> InSituCsvScan {
    scan_whole(buf, cols, &[]).with_segment(ScanSegment {
        first_row: m.first_row,
        end_row: Some(m.end_row),
        byte_start: m.byte_start,
        byte_end: Some(m.byte_end),
    })
}

fn assert_aligned_cover(morsels: &[Morsel], buf: &[u8], total_rows: u64) {
    let mut byte = 0usize;
    let mut row = 0u64;
    for m in morsels {
        assert_eq!(m.byte_start, byte, "byte-contiguous");
        assert_eq!(m.first_row, row, "row-contiguous");
        assert!(m.end_row > m.first_row, "no empty morsels");
        assert!(
            m.byte_start == 0 || buf[m.byte_start - 1] == b'\n',
            "morsel must start at a record boundary"
        );
        byte = m.byte_end;
        row = m.end_row;
    }
    assert_eq!(byte, buf.len(), "morsels cover every byte");
    assert_eq!(row, total_rows, "morsels cover every row");
}

/// `(cols, rows)` where every row has exactly `cols` fields and a non-empty
/// first field.
fn arb_csv() -> impl Strategy<Value = (usize, Vec<Vec<(String, bool)>>)> {
    (1usize..5, 0usize..40).prop_flat_map(|(cols, nrows)| {
        // One (content, quoted) strategy per field; the first field is
        // non-empty so every record occupies at least one byte.
        let mut fields: Vec<(BoxedStrategy<String>, proptest::bool::BoolAny)> =
            vec![("[0-9a-z]{1,5}".boxed(), proptest::bool::ANY)];
        for _ in 1..cols {
            fields.push(("[0-9a-z ]{0,5}".boxed(), proptest::bool::ANY));
        }
        (Just(cols), proptest::collection::vec(fields, nrows))
    })
}

/// Like [`arb_csv`], but quoted fields may embed a newline — the general
/// dialect construct the raw-newline probe cannot split on.
fn arb_quoted_csv() -> impl Strategy<Value = (usize, Vec<Vec<(String, bool)>>)> {
    (1usize..5, 0usize..40).prop_flat_map(|(cols, nrows)| {
        let mut fields: Vec<BoxedStrategy<(String, bool)>> =
            vec!["[0-9a-z]{1,5}".prop_map(|s| (s, false)).boxed()];
        for _ in 1..cols {
            fields.push(
                ("[0-9a-z ]{0,5}", proptest::bool::ANY, proptest::bool::ANY)
                    .prop_map(|(mut s, quoted, embed)| {
                        if quoted && embed {
                            let mid = s.len() / 2;
                            s.insert(mid, '\n');
                        }
                        (s, quoted)
                    })
                    .boxed(),
            );
        }
        (Just(cols), proptest::collection::vec(fields, nrows))
    })
}

/// One `(key, value)` batch from row tuples.
fn pair_batch(rows: &[(i64, i64)]) -> Batch {
    let keys: Vec<i64> = rows.iter().map(|&(k, _)| k).collect();
    let vals: Vec<i64> = rows.iter().map(|&(_, v)| v).collect();
    Batch::new(vec![keys.into(), vals.into()]).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn partition_neither_loses_nor_duplicates_rows(
        (_cols, rows) in arb_csv(),
        trailing_newline in proptest::bool::ANY,
        target in 1usize..9,
    ) {
        let buf = render(&rows, trailing_newline);
        let p = partition_csv(&buf, target);
        prop_assert_eq!(p.total_rows, rows.len() as u64, "every record counted once");
        assert_aligned_cover(&p.morsels, &buf, rows.len() as u64);
        prop_assert!(p.morsels.len() <= target.max(1));
    }

    #[test]
    fn segment_scans_concatenate_to_whole_file_scan(
        (cols, rows) in arb_csv(),
        trailing_newline in proptest::bool::ANY,
        target in 1usize..9,
    ) {
        let buf = render(&rows, trailing_newline);
        let p = partition_csv(&buf, target);

        let whole = collect(&mut scan_whole(&buf, cols, &[])).unwrap();
        let parts: Vec<Batch> = p
            .morsels
            .iter()
            .map(|m| collect(&mut scan_morsel(&buf, cols, m)).unwrap())
            .collect();
        let merged = Batch::concat(&parts).unwrap();
        if whole.rows() == 0 {
            prop_assert_eq!(merged.rows(), 0);
        } else {
            prop_assert_eq!(whole, merged, "morsel scans must reassemble the file");
        }
    }

    #[test]
    fn posmap_hints_partition_like_the_probe(
        (cols, rows) in arb_csv(),
        target in 1usize..9,
    ) {
        let buf = render(&rows, true);
        if rows.is_empty() {
            return Ok(());
        }
        // Build the map a first scan would: track column 0 (record starts).
        let mut first = scan_whole(&buf, cols, &[0]);
        let _ = collect(&mut first).unwrap();
        let map = first.take_posmap().expect("non-empty file builds a map");

        let hinted = partition_csv_with_map(&map, buf.len(), target)
            .expect("map tracks column 0");
        assert_aligned_cover(&hinted, &buf, rows.len() as u64);
    }

    #[test]
    fn quote_detection_flags_quote_bearing_inputs(
        (_cols, rows) in arb_csv(),
        trailing_newline in proptest::bool::ANY,
        target in 1usize..9,
    ) {
        let buf = render(&rows, trailing_newline);
        let any_quoted = rows.iter().flatten().any(|(_, quoted)| *quoted);
        let p = partition_csv(&buf, target);
        // Content alphabets contain no quote bytes, so quotes in the
        // rendering come only from quoted fields.
        prop_assert_eq!(p.saw_quote, any_quoted && !buf.is_empty());
    }

    /// Quote-aware partitioning: quoted fields may embed newlines; the
    /// quoted probe must still count every rendered row exactly once and
    /// cut only at general-dialect record boundaries.
    #[test]
    fn quoted_partition_neither_loses_nor_duplicates_rows(
        (_cols, rows) in arb_quoted_csv(),
        trailing_newline in proptest::bool::ANY,
        target in 1usize..9,
    ) {
        let buf = render(&rows, trailing_newline);
        let p = partition_csv_quoted(&buf, target);
        prop_assert_eq!(p.total_rows, rows.len() as u64, "every record counted once");
        assert_aligned_cover(&p.morsels, &buf, rows.len() as u64);
        prop_assert!(p.morsels.len() <= target.max(1));
    }

    /// Per-morsel quote-aware in-situ scans over the quoted probe's grid
    /// concatenate to exactly the whole-file scan — the parallel path's
    /// correctness contract for quote-bearing CSV.
    #[test]
    fn quoted_segment_scans_concatenate_to_whole_file_scan(
        (cols, rows) in arb_quoted_csv(),
        trailing_newline in proptest::bool::ANY,
        target in 1usize..9,
    ) {
        let buf = render(&rows, trailing_newline);
        let p = partition_csv_quoted(&buf, target);

        let whole = collect(&mut scan_whole(&buf, cols, &[])).unwrap();
        let parts: Vec<Batch> = p
            .morsels
            .iter()
            .map(|m| collect(&mut scan_morsel(&buf, cols, m)).unwrap())
            .collect();
        let merged = Batch::concat(&parts).unwrap();
        if whole.rows() == 0 {
            prop_assert_eq!(merged.rows(), 0);
        } else {
            prop_assert_eq!(whole, merged, "morsel scans must reassemble the file");
        }
    }

    /// Grouped partial-state merge: count/sum/min/max over integers are
    /// merge-order-insensitive (any rotation of the morsel order yields the
    /// same finished batch), matching a single-accumulator fold.
    #[test]
    fn grouped_merge_is_order_insensitive_for_int_aggregates(
        rows in proptest::collection::vec((0i64..8, -1000i64..1000), 0..120),
        chunk in 1usize..17,
        rotation in 0usize..8,
    ) {
        let exprs = vec![
            AggExpr { kind: AggKind::Count, col: 1 },
            AggExpr { kind: AggKind::Sum, col: 1 },
            AggExpr { kind: AggKind::Min, col: 1 },
            AggExpr { kind: AggKind::Max, col: 1 },
        ];
        let mut serial = GroupedAccumulator::new(0, exprs.clone());
        if !rows.is_empty() {
            serial.update(&pair_batch(&rows)).unwrap();
        }
        let reference = serial.finish().unwrap();

        let partials: Vec<GroupedAccumulator> = rows
            .chunks(chunk)
            .map(|c| {
                let mut acc = GroupedAccumulator::new(0, exprs.clone());
                acc.update(&pair_batch(c)).unwrap();
                acc
            })
            .collect();

        // Morsel order and every rotation of it agree with the serial fold.
        for start in [0, rotation % partials.len().max(1)] {
            let mut merged: Option<GroupedAccumulator> = None;
            for i in 0..partials.len() {
                let part = partials[(start + i) % partials.len()].clone();
                match merged.as_mut() {
                    Some(m) => m.merge(part).unwrap(),
                    None => merged = Some(part),
                }
            }
            let out = merged
                .unwrap_or_else(|| GroupedAccumulator::new(0, exprs.clone()))
                .finish()
                .unwrap();
            prop_assert_eq!(&out, &reference, "merge starting at partial {}", start);
        }
    }

    /// AVG partial states are morsel-order-deterministic: replaying the
    /// same merge order over float sums is bitwise-reproducible (the grid —
    /// and therefore the merge order — never depends on the worker count).
    #[test]
    fn grouped_avg_merge_is_morsel_order_deterministic(
        rows in proptest::collection::vec((0i64..6, -1000i64..1000), 1..120),
        chunk in 1usize..17,
    ) {
        let exprs = vec![AggExpr { kind: AggKind::Avg, col: 1 }];
        // Values with fractional parts so float summation order matters.
        let batches: Vec<Batch> = rows
            .chunks(chunk)
            .map(|c| {
                let keys: Vec<i64> = c.iter().map(|&(k, _)| k).collect();
                let vals: Vec<f64> = c.iter().map(|&(_, v)| v as f64 / 3.0).collect();
                Batch::new(vec![keys.into(), vals.into()]).unwrap()
            })
            .collect();
        let partials: Vec<GroupedAccumulator> = batches
            .iter()
            .map(|b| {
                let mut acc = GroupedAccumulator::new(0, exprs.clone());
                acc.update(b).unwrap();
                acc
            })
            .collect();

        let merge_in_order = || {
            let mut merged: Option<GroupedAccumulator> = None;
            for part in partials.clone() {
                match merged.as_mut() {
                    Some(m) => m.merge(part).unwrap(),
                    None => merged = Some(part),
                }
            }
            merged.expect("at least one partial").finish().unwrap()
        };
        // Same morsel order twice => identical bits, AVG included.
        prop_assert_eq!(merge_in_order(), merge_in_order());
    }

    /// Page-aligned partitioning: morsels cover every row exactly once, do
    /// not overlap, and every boundary except the file's final row count is
    /// a `rows_per_page` multiple — each morsel owns whole pages, the
    /// contract per-morsel zone-index pruning relies on.
    #[test]
    fn page_partition_aligns_covers_and_never_overlaps(
        total in 0u64..20_000,
        rows_per_page in 1u32..512,
        target in 0usize..40,
    ) {
        let ms = partition_pages(total, rows_per_page, target);
        if total == 0 || target == 0 {
            prop_assert!(ms.is_empty());
        } else {
            let rpp = u64::from(rows_per_page);
            let pages = total.div_ceil(rpp);
            prop_assert!(ms.len() as u64 <= (target as u64).min(pages));
            let mut row = 0u64;
            for (i, m) in ms.iter().enumerate() {
                prop_assert_eq!(m.index, i);
                prop_assert_eq!(m.first_row, row, "contiguous => no overlap, no gap");
                prop_assert!(m.end_row > m.first_row, "no empty morsels");
                prop_assert_eq!(m.first_row % rpp, 0, "starts on a page boundary");
                row = m.end_row;
            }
            prop_assert_eq!(row, total, "full cover");
            for m in &ms[..ms.len() - 1] {
                prop_assert_eq!(m.end_row % rpp, 0, "interior cuts on page boundaries");
            }
            // Balanced page counts: morsels differ by at most one page.
            let page_counts: Vec<u64> =
                ms.iter().map(|m| m.end_row.div_ceil(rpp) - m.first_row / rpp).collect();
            let (lo, hi) = (page_counts.iter().min().unwrap(), page_counts.iter().max().unwrap());
            prop_assert!(hi - lo <= 1, "balanced pages: {page_counts:?}");
        }
    }

    /// Item-range partitioning: morsels cover every event exactly once
    /// (items stay with their owning event), the item slices they resolve
    /// from the offsets table are contiguous, and no morsel except the last
    /// stops short of its item quota.
    #[test]
    fn item_partition_covers_events_and_balances_items(
        counts in proptest::collection::vec(0u64..9, 0..200),
        target in 1usize..17,
    ) {
        let mut offsets = vec![0u64];
        for &c in &counts {
            offsets.push(offsets.last().unwrap() + c);
        }
        let ms = partition_items(&offsets, target);
        let events = counts.len() as u64;
        if events == 0 {
            prop_assert!(ms.is_empty());
        } else {
            prop_assert!(ms.len() <= target);
            let total_items = *offsets.last().unwrap();
            let stride = total_items.div_ceil(target as u64).max(1);
            let mut event = 0u64;
            let mut item = 0u64;
            for (i, m) in ms.iter().enumerate() {
                prop_assert_eq!(m.index, i);
                prop_assert_eq!(m.first_row, event, "event-contiguous");
                prop_assert!(m.end_row > m.first_row, "at least one event per morsel");
                // The item slice the scan will resolve is contiguous.
                prop_assert_eq!(offsets[m.first_row as usize], item);
                item = offsets[m.end_row as usize];
                // Interior morsels reach their item quota: the cut is the
                // first event boundary at or past it.
                if total_items > 0 && i + 1 < ms.len() {
                    prop_assert!(
                        item - offsets[m.first_row as usize] >= stride,
                        "interior morsel below quota"
                    );
                }
                event = m.end_row;
            }
            prop_assert_eq!(event, events, "every event covered exactly once");
            prop_assert_eq!(item, total_items, "item slices tile the collection");
        }
    }

    #[test]
    fn row_partition_invariants(total in 0u64..10_000, target in 0usize..40) {
        let ms = partition_rows(total, target);
        if total == 0 || target == 0 {
            prop_assert!(ms.is_empty());
        } else {
            prop_assert!(ms.len() <= target.min(total as usize));
            let mut row = 0u64;
            for (i, m) in ms.iter().enumerate() {
                prop_assert_eq!(m.index, i);
                prop_assert_eq!(m.first_row, row);
                prop_assert!(m.end_row > m.first_row);
                row = m.end_row;
            }
            prop_assert_eq!(row, total);
            // Balanced: sizes differ by at most one.
            let sizes: Vec<u64> = ms.iter().map(Morsel::rows).collect();
            let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            prop_assert!(hi - lo <= 1, "balanced split: {sizes:?}");
        }
    }
}

/// The canonical dialect-divergence input: a newline *inside* a quoted
/// field. The raw probe splits on raw newlines (the JIT dialect, where
/// fields never embed newlines) and merely reports the quote; the quoted
/// probe interprets it, matching the general-purpose in-situ scan. Planners
/// pick the probe for the dialect their scan will use.
#[test]
fn probes_diverge_exactly_on_quoted_newlines() {
    let buf = b"x,\"a\nb\"\ny,c\n";
    let raw = partition_csv(buf, 3);
    assert!(raw.saw_quote, "quote byte must be reported");
    // Raw-newline semantics: three newline-delimited records.
    assert_eq!(raw.total_rows, 3);
    // General-dialect semantics: the quoted newline is field content.
    let quoted = partition_csv_quoted(buf, 3);
    assert_eq!(quoted.total_rows, 2);
    assert!(quoted.saw_quote);
}

// ---------------------------------------------------------------------------
// Chunk bookkeeping: the streaming cold path's availability accounting.
// ---------------------------------------------------------------------------

use raw_exec::run_jobs_when;
use raw_formats::file_buffer::ChunkedFileBuffer;

/// Deterministic pseudo-shuffle of `0..n` (xorshift-seeded Fisher–Yates), so
/// completion-order properties need no strategy support for permutations.
fn shuffled(n: usize, mut seed: u64) -> Vec<usize> {
    let mut v: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        v.swap(i, (seed as usize) % (i + 1));
    }
    v
}

/// The chunks covering `range` in a `len`-byte file — the model the buffer's
/// own bookkeeping must agree with.
fn model_covering(len: usize, chunk: usize, range: &std::ops::Range<usize>) -> Vec<usize> {
    let start = range.start.min(len);
    let end = range.end.min(len);
    if start >= end {
        return Vec::new();
    }
    (start / chunk..(end - 1) / chunk + 1).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The chunk grid tiles the file exactly once: contiguous, non-empty,
    /// covering, and consistent with `chunk_count`.
    #[test]
    fn chunk_grid_tiles_file_exactly_once(len in 0usize..100_000, chunk in 1usize..9_000) {
        let n = ChunkedFileBuffer::chunk_count(len, chunk);
        let mut covered = 0usize;
        for i in 0..n {
            let span = ChunkedFileBuffer::chunk_span(len, chunk, i);
            prop_assert_eq!(span.start, covered, "contiguous");
            prop_assert!(!span.is_empty(), "non-empty");
            prop_assert!(span.len() <= chunk);
            covered = span.end;
        }
        prop_assert_eq!(covered, len, "covers the file");
        // Every byte maps into exactly one chunk of the grid.
        if len > 0 {
            prop_assert_eq!(ChunkedFileBuffer::chunk_span(len, chunk, n - 1).end, len);
        }
    }

    /// `is_available(range)` (the non-blocking face of `wait_available`)
    /// reports `true` exactly when every covering chunk has completed, for
    /// arbitrary completion orders and arbitrary ranges — so a wait can
    /// never return before its covering chunks complete.
    #[test]
    fn availability_tracks_covering_chunks_exactly(
        len in 1usize..50_000,
        chunk in 1usize..4_096,
        seed in 0u64..u64::MAX,
        ranges in proptest::collection::vec((0usize..60_000, 0usize..60_000), 1..8),
    ) {
        let buf = ChunkedFileBuffer::new_manual("/virtual/bookkeeping", len, chunk);
        let n = ChunkedFileBuffer::chunk_count(len, chunk);
        let mut done = vec![false; n];
        let order = shuffled(n, seed | 1);
        // Check before any completion, after each completion, and at the end.
        for step in 0..=n {
            if step > 0 {
                let i = order[step - 1];
                buf.complete_chunk(i);
                done[i] = true;
            }
            for &(a, b) in &ranges {
                let range = a.min(b)..a.max(b);
                let expect = model_covering(len, chunk, &range).iter().all(|&c| done[c]);
                prop_assert_eq!(
                    buf.is_available(range.clone()),
                    expect,
                    "range {:?} at step {} (done {:?})", range, step, done
                );
                if expect {
                    // A blocking wait on an available range returns at once.
                    prop_assert!(buf.wait_available(range).is_ok());
                }
            }
        }
        prop_assert!(buf.is_complete());
    }

    /// Availability-gated dispatch: every job's closure runs only once its
    /// byte range is resident, for arbitrary morsel grids racing a live
    /// completer thread — and results still land in job order.
    #[test]
    fn gated_dispatch_respects_availability(
        len in 1usize..20_000,
        chunk in 1usize..2_048,
        cuts in proptest::collection::vec(0usize..20_000, 1..6),
        threads in 1usize..5,
    ) {
        let buf = std::sync::Arc::new(ChunkedFileBuffer::new_manual("/virtual/gated", len, chunk));
        // Morsel grid from the sorted cuts: contiguous ranges over the file.
        let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % len).collect();
        bounds.push(0);
        bounds.push(len);
        bounds.sort_unstable();
        bounds.dedup();
        let ranges: Vec<std::ops::Range<usize>> =
            bounds.windows(2).map(|w| w[0]..w[1]).collect();

        let completer = {
            let buf = std::sync::Arc::clone(&buf);
            std::thread::spawn(move || {
                for i in 0..ChunkedFileBuffer::chunk_count(buf.len(), buf.chunk_bytes()) {
                    buf.complete_chunk(i);
                }
            })
        };
        let jobs: Vec<_> = ranges
            .iter()
            .cloned()
            .enumerate()
            .map(|(idx, range)| {
                let gate_buf = std::sync::Arc::clone(&buf);
                let run_buf = std::sync::Arc::clone(&buf);
                let gate_range = range.clone();
                (
                    move || gate_buf.wait_available(gate_range).map_err(|_| usize::MAX),
                    move || {
                        // The gate admitted us: the range must be resident
                        // (chunks never un-complete, so this is exact).
                        assert!(run_buf.is_available(range.clone()));
                        idx
                    },
                )
            })
            .collect();
        let results = run_jobs_when(jobs, threads);
        completer.join().unwrap();
        prop_assert_eq!(results, (0..ranges.len()).collect::<Vec<_>>());
    }
}

// ---------------------------------------------------------------------------
// Skew-resistant dispatch: refined morsel grids and caller-ordered claims.
// ---------------------------------------------------------------------------

use raw_exec::pool::{run_jobs_traced_ordered, JobCtx};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The `skew_split` knob refines the plan-time grid by multiplying the
    /// partition target. The refined grid must tile the file exactly like
    /// the natural one — same bytes, same rows, record-aligned cuts — only
    /// finer, for both the raw-newline and quote-aware probes. This is the
    /// contract that makes refinement safe: sub-morsels are a retiling of
    /// the parent coverage, never a reinterpretation of it.
    #[test]
    fn refined_csv_grids_retile_the_same_coverage(
        (_cols, rows) in arb_quoted_csv(),
        trailing_newline in proptest::bool::ANY,
        target in 1usize..7,
        skew in 2usize..5,
    ) {
        let buf = render(&rows, trailing_newline);
        let total = rows.len() as u64;

        let natural = partition_csv_quoted(&buf, target);
        let refined = partition_csv_quoted(&buf, target * skew);
        prop_assert_eq!(refined.total_rows, natural.total_rows, "same record count");
        prop_assert_eq!(refined.saw_quote, natural.saw_quote);
        assert_aligned_cover(&natural.morsels, &buf, total);
        assert_aligned_cover(&refined.morsels, &buf, total);

        // The raw-newline probe obeys the same retiling contract (its row
        // notion differs on embedded newlines, so it pins its own total).
        let raw_natural = partition_csv(&buf, target);
        let raw_refined = partition_csv(&buf, target * skew);
        prop_assert_eq!(raw_refined.total_rows, raw_natural.total_rows);
        assert_aligned_cover(&raw_natural.morsels, &buf, raw_natural.total_rows);
        assert_aligned_cover(&raw_refined.morsels, &buf, raw_refined.total_rows);
    }

    /// Refined arithmetic grids (fixed-width rows and zone-indexed pages)
    /// tile the same row space strictly more finely: row-contiguous, full
    /// cover, and never fewer morsels than the natural grid.
    #[test]
    fn refined_arithmetic_grids_retile_the_same_rows(
        total in 1u64..20_000,
        rows_per_page in 1u32..512,
        target in 1usize..12,
        skew in 2usize..5,
    ) {
        let tile = |ms: &[Morsel], span: u64| {
            let mut row = 0u64;
            for m in ms {
                assert_eq!(m.first_row, row, "row-contiguous");
                assert!(m.end_row > m.first_row, "no empty morsels");
                row = m.end_row;
            }
            assert_eq!(row, span, "full cover");
        };

        let natural = partition_rows(total, target);
        let refined = partition_rows(total, target * skew);
        tile(&natural, total);
        tile(&refined, total);
        prop_assert!(refined.len() >= natural.len(), "refinement never coarsens");

        let natural = partition_pages(total, rows_per_page, target);
        let refined = partition_pages(total, rows_per_page, target * skew);
        tile(&natural, total);
        tile(&refined, total);
        prop_assert!(refined.len() >= natural.len(), "refinement never coarsens");
    }

    /// Refined item-balanced grids (rootsim collections) keep every event in
    /// exactly one morsel and resolve the same contiguous item tiling.
    #[test]
    fn refined_item_grids_retile_the_same_events(
        counts in proptest::collection::vec(0u64..9, 1..120),
        target in 1usize..9,
        skew in 2usize..5,
    ) {
        let mut offsets = vec![0u64];
        for &c in &counts {
            offsets.push(offsets.last().unwrap() + c);
        }
        let events = counts.len() as u64;
        for t in [target, target * skew] {
            let ms = partition_items(&offsets, t);
            let mut event = 0u64;
            for m in &ms {
                prop_assert_eq!(m.first_row, event, "event-contiguous");
                prop_assert!(m.end_row > m.first_row);
                event = m.end_row;
            }
            prop_assert_eq!(event, events, "every event covered exactly once");
        }
    }

    /// Caller-supplied claim order (the heavy-first LPT lever): for an
    /// arbitrary permutation and worker count, results land in job order —
    /// bitwise identical to the unordered run — every job runs exactly
    /// once, and the serial path dispatches in exactly the claimed order.
    #[test]
    fn ordered_claims_reorder_dispatch_but_never_results(
        n in 1usize..24,
        seed in 0u64..u64::MAX,
        threads in 1usize..5,
    ) {
        let order = shuffled(n, seed | 1);
        let log = std::sync::Mutex::new(Vec::new());
        let make_jobs = || -> Vec<_> {
            (0..n)
                .map(|i| {
                    let log = &log;
                    (
                        move || -> Result<(), usize> {
                            log.lock().unwrap().push(i);
                            Ok(())
                        },
                        move |_ctx: JobCtx<'_, ()>| i * 31 + 7,
                    )
                })
                .collect()
        };

        let (ordered, _) = run_jobs_traced_ordered(make_jobs(), threads, Some(order.clone()));
        let dispatched = std::mem::take(&mut *log.lock().unwrap());
        let (unordered, _) = run_jobs_traced_ordered(make_jobs(), threads, None);

        let expect: Vec<usize> = (0..n).map(|i| i * 31 + 7).collect();
        prop_assert_eq!(&ordered, &expect, "results in job order despite claim order");
        prop_assert_eq!(&ordered, &unordered, "claim order is result-invariant");
        if threads <= 1 || n == 1 {
            // The inline serial path claims jobs in exactly the given order.
            prop_assert_eq!(dispatched, order, "serial dispatch follows claim order");
        } else {
            let mut seen = dispatched;
            seen.sort_unstable();
            prop_assert_eq!(seen, (0..n).collect::<Vec<_>>(), "every job gated exactly once");
        }
    }
}
