//! Seeded-violation tests for the exec-side `checked` sanitizers: each
//! test plants a deliberately corrupt input and pins that the validator
//! aborts — proving the sanitizer is live. The validators are always
//! compiled (the `checked` feature only controls whether the engine
//! *calls* them on its own data), so these proofs run in every
//! configuration, tier-1 included.

use raw_exec::executor::validate_merged_traces;
use raw_exec::morsel::{partition_csv, partition_rows, validate_grid, Morsel};
use raw_exec::run_jobs_traced_ordered;
use raw_trace::MorselTrace;

fn trace(morsel: usize) -> MorselTrace {
    MorselTrace { morsel, ..Default::default() }
}

#[test]
fn real_partitioner_grids_validate_clean() {
    validate_grid(&partition_rows(1_000, 7), 1_000, None);
    let buf = b"a,1\nbb,22\nccc,333\ndddd,4444\n".repeat(50);
    let part = partition_csv(&buf, 6);
    validate_grid(&part.morsels, part.total_rows, Some(buf.len()));
}

#[test]
#[should_panic(expected = "checked: morsel")]
fn seeded_grid_gap_aborts() {
    // Morsel 1 starts past where morsel 0 ended: a dropped row.
    let grid = vec![
        Morsel { index: 0, first_row: 0, end_row: 4, byte_start: 0, byte_end: 0 },
        Morsel { index: 1, first_row: 5, end_row: 10, byte_start: 0, byte_end: 0 },
    ];
    validate_grid(&grid, 10, None);
}

#[test]
#[should_panic(expected = "checked: morsel")]
fn seeded_grid_overlap_aborts() {
    // Morsel 1 re-covers row 3: a row scanned twice.
    let grid = vec![
        Morsel { index: 0, first_row: 0, end_row: 4, byte_start: 0, byte_end: 0 },
        Morsel { index: 1, first_row: 3, end_row: 10, byte_start: 0, byte_end: 0 },
    ];
    validate_grid(&grid, 10, None);
}

#[test]
#[should_panic(expected = "checked: grid covers rows")]
fn seeded_grid_short_coverage_aborts() {
    let grid = vec![Morsel { index: 0, first_row: 0, end_row: 9, byte_start: 0, byte_end: 0 }];
    validate_grid(&grid, 10, None);
}

#[test]
#[should_panic(expected = "checked: grid covers bytes")]
fn seeded_byte_grid_short_coverage_aborts() {
    let grid = vec![Morsel { index: 0, first_row: 0, end_row: 5, byte_start: 0, byte_end: 90 }];
    validate_grid(&grid, 5, Some(100));
}

#[test]
fn merged_traces_validate_clean() {
    let traces: Vec<MorselTrace> = (0..4).map(trace).collect();
    validate_merged_traces(&traces, 4, true);
    // Failed morsels record no trace; completeness is waived.
    validate_merged_traces(&traces[..2], 4, false);
}

#[test]
#[should_panic(expected = "checked: merged traces out of order")]
fn seeded_duplicate_trace_aborts() {
    let traces = vec![trace(0), trace(1), trace(1), trace(2)];
    validate_merged_traces(&traces, 4, true);
}

#[test]
#[should_panic(expected = "checked:")]
fn seeded_missing_trace_aborts() {
    let traces = vec![trace(0), trace(2)];
    validate_merged_traces(&traces, 3, true);
}

#[test]
#[should_panic(expected = "claim order must be a permutation")]
fn seeded_non_permutation_claim_aborts() {
    let jobs: Vec<_> =
        (0..3).map(|i| (move || Ok(()), move |_ctx: raw_exec::pool::JobCtx<'_, u8>| i)).collect();
    // Claims job 0 twice and job 2 never.
    let _ = run_jobs_traced_ordered(jobs, 2, Some(vec![0, 1, 0]));
}
