//! Deterministic proof of cold-path overlap: with availability-driven
//! dispatch ([`raw_exec::run_jobs_when`]) over a chunk-streamed buffer, a
//! morsel whose byte range is resident completes **while the reader thread
//! is still reading the rest of the file** — the property that lets cold
//! throughput scale past serial-read-then-warm-scan.
//!
//! The reader is throttled through a [`ChunkSource`] test seam gated on a
//! channel, so the proof is a happens-before argument, not a timing race:
//! chunk 0 is released immediately, every later chunk blocks until the
//! first morsel's job has finished and observed the reader mid-file.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};

use raw_columnar::ops::{BatchSource, Operator};
use raw_columnar::{Batch, ColumnarError};
use raw_exec::{execute_morsels_when, run_jobs_when, MergePlan, MorselGate};
use raw_formats::file_buffer::{ChunkSource, ChunkedFileBuffer};

const LEN: usize = 64 * 1024;
const CHUNK: usize = 4 * 1024;

/// Serves deterministic bytes; blocks before every chunk after the first
/// until released, and records when the final chunk has been served.
struct GatedSource {
    release: mpsc::Receiver<()>,
    finished: Arc<AtomicBool>,
}

impl ChunkSource for GatedSource {
    fn read_chunk(&mut self, offset: u64, dst: &mut [u8]) -> std::io::Result<()> {
        if offset > 0 {
            self.release.recv().expect("releaser alive");
        }
        for (i, b) in dst.iter_mut().enumerate() {
            *b = ((offset as usize + i) % 251) as u8;
        }
        if offset as usize + dst.len() == LEN {
            self.finished.store(true, Ordering::SeqCst);
        }
        Ok(())
    }
}

#[test]
fn first_morsel_completes_before_reader_finishes_the_file() {
    let (tx, rx) = mpsc::channel();
    let finished = Arc::new(AtomicBool::new(false));
    let stream = ChunkedFileBuffer::spawn(
        "/virtual/overlap.bin",
        GatedSource { release: rx, finished: Arc::clone(&finished) },
        LEN,
        CHUNK,
    );

    // Two "morsels": the first covers chunk 0 (released immediately), the
    // second needs the whole file (held back until the first completes).
    let chunks = ChunkedFileBuffer::chunk_count(LEN, CHUNK);
    let overlap_seen = Arc::new(AtomicBool::new(false));

    type Gate = Box<dyn FnOnce() -> Result<(), (usize, bool)> + Send>;
    type Job = Box<dyn FnOnce() -> (usize, bool) + Send>;
    let jobs: Vec<(Gate, Job)> = vec![
        (
            {
                let stream = Arc::clone(&stream);
                Box::new(move || stream.wait_available(0..CHUNK).map_err(|_| (0, false)))
            },
            {
                let stream = Arc::clone(&stream);
                let finished = Arc::clone(&finished);
                let overlap_seen = Arc::clone(&overlap_seen);
                Box::new(move || {
                    // "Scan" the morsel: its bytes are resident and correct.
                    let bytes = &stream.bytes()[..CHUNK];
                    assert!(bytes.iter().enumerate().all(|(i, &b)| b == (i % 251) as u8));
                    let reader_done = finished.load(Ordering::SeqCst);
                    overlap_seen.store(!reader_done, Ordering::SeqCst);
                    // Only now let the reader pull the remaining chunks.
                    for _ in 1..chunks {
                        tx.send(()).expect("reader alive");
                    }
                    (0, reader_done)
                })
            },
        ),
        (
            {
                let stream = Arc::clone(&stream);
                Box::new(move || stream.wait_available(0..LEN).map_err(|_| (1, false)))
            },
            {
                let stream = Arc::clone(&stream);
                Box::new(move || {
                    let bytes = &stream.bytes()[..];
                    assert!(bytes.iter().enumerate().all(|(i, &b)| b == (i % 251) as u8));
                    (1, true)
                })
            },
        ),
    ];

    let results = run_jobs_when(jobs, 2);
    assert_eq!(results.len(), 2);
    assert_eq!(results[0].0, 0);
    assert_eq!(results[1].0, 1);
    assert!(
        overlap_seen.load(Ordering::SeqCst),
        "morsel 0 must complete while the reader thread still has chunks outstanding"
    );
    assert!(finished.load(Ordering::SeqCst), "reader eventually finished");
    assert!(stream.is_complete());
}

/// Serves chunks until `fail_at`, then reports an I/O error — the reader
/// thread records it as the stream's terminal state.
struct FailingSource {
    fail_at: usize,
    served: usize,
}

impl ChunkSource for FailingSource {
    fn read_chunk(&mut self, _offset: u64, dst: &mut [u8]) -> std::io::Result<()> {
        if self.served == self.fail_at {
            return Err(std::io::Error::other("mid-file disk failure"));
        }
        self.served += 1;
        dst.fill(b'r');
        Ok(())
    }
}

/// Fault injection at the executor level: a reader failing mid-file makes
/// every availability-gated morsel surface the I/O error — the merged run
/// fails (no hang, no partial-result success), with the first morsel's
/// error winning in morsel order, and pipelines behind failed gates never
/// drain.
#[test]
fn reader_failure_fails_every_gated_morsel_without_hanging() {
    let stream = ChunkedFileBuffer::spawn(
        "/virtual/failing.bin",
        FailingSource { fail_at: 2, served: 0 },
        LEN,
        CHUNK,
    );

    let drained = Arc::new(AtomicUsize::new(0));
    let morsels = 4usize;
    let per_morsel = LEN / morsels;
    let (pipelines, gates): (Vec<Box<dyn Operator>>, Vec<Option<MorselGate>>) = (0..morsels)
        .map(|i| {
            let drained = Arc::clone(&drained);
            let counting: Box<dyn Operator> = Box::new(CountingSource {
                inner: BatchSource::new(vec![Batch::new(vec![vec![i as i64].into()]).unwrap()]),
                drained,
            });
            let st = Arc::clone(&stream);
            let gate: MorselGate = Box::new(move || {
                st.wait_available(i * per_morsel..(i + 1) * per_morsel)
                    .map_err(|e| ColumnarError::External { message: e.to_string() })
            });
            (counting, Some(gate))
        })
        .unzip();

    let err = execute_morsels_when(pipelines, gates, &MergePlan::Concat, 4).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("mid-file disk failure"), "I/O failure surfaces: {msg}");
    assert!(msg.contains("/virtual/failing.bin"), "failure names the file: {msg}");
    // The failure hits chunk 2, inside morsel 0's four-chunk range: every
    // morsel's gate fails, so no pipeline ever drains — the error replaces
    // the work instead of racing it.
    assert_eq!(drained.load(Ordering::SeqCst), 0, "morsels behind a failed gate must not drain");
}

/// Wraps an operator and counts drains, to prove failed-gate morsels never
/// run their pipelines.
struct CountingSource {
    inner: BatchSource,
    drained: Arc<AtomicUsize>,
}

impl Operator for CountingSource {
    fn next_batch(&mut self) -> Result<Option<Batch>, ColumnarError> {
        self.drained.fetch_add(1, Ordering::SeqCst);
        self.inner.next_batch()
    }
    fn name(&self) -> &'static str {
        "CountingSource"
    }
}
