//! Deterministic proof of compressed-path overlap: with availability-driven
//! dispatch over an [`RzbDecoder`], a morsel whose blocks are decoded
//! completes its scan **while later blocks are still being read AND still
//! undecoded** — and the decode work itself fans out across at least two
//! distinct worker threads.
//!
//! Like `cold_overlap.rs`, the compressed reader is throttled through a
//! channel-gated [`ChunkSource`], so every claim is a happens-before
//! argument, not a timing race.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};

use raw_columnar::ops::{BatchSource, Operator};
use raw_columnar::{Batch, ColumnarError};
use raw_exec::{execute_morsels_when, run_jobs_when, MergePlan, MorselGate};
use raw_formats::file_buffer::{file_bytes, ChunkSource, ChunkedFileBuffer};
use raw_formats::rzb::{self, RzbDecoder};

const LEN: usize = 64 * 1024;
const BLOCK: usize = 4 * 1024;

/// Deterministic, compressible-but-not-trivial payload.
fn payload() -> Vec<u8> {
    (0..LEN).map(|i| ((i % 251) as u8).wrapping_add((i / 1024) as u8)).collect()
}

/// Serves the compressed container bytes; blocks before every chunk after
/// the first until released, and records when the final chunk was served.
struct GatedSource {
    data: Vec<u8>,
    release: mpsc::Receiver<()>,
    finished: Arc<AtomicBool>,
}

impl ChunkSource for GatedSource {
    fn read_chunk(&mut self, offset: u64, dst: &mut [u8]) -> std::io::Result<()> {
        if offset > 0 {
            self.release.recv().expect("releaser alive");
        }
        let offset = offset as usize;
        dst.copy_from_slice(&self.data[offset..offset + dst.len()]);
        if offset + dst.len() == self.data.len() {
            self.finished.store(true, Ordering::SeqCst);
        }
        Ok(())
    }
}

/// Morsel 0 (block 0) scans while the compressed reader still has chunks
/// outstanding and every later block is undecoded; a second worker then
/// decodes the tail blocks, so decode work provably lands on two distinct
/// threads.
#[test]
fn early_morsel_scans_while_later_blocks_are_undecoded() {
    let src = payload();
    let packed = rzb::compress(&src, BLOCK);
    let index = rzb::parse_index(&packed).unwrap();
    assert!(index.block_count() >= 8, "fixture must span many blocks");
    // Compressed chunk 0 covers exactly block 0's payload, so morsel 0's
    // decode never needs a gated chunk; everything later does.
    let chunk0 = index.comp_range(0).end;
    let comp_len = packed.len();

    let (tx, rx) = mpsc::channel();
    let finished = Arc::new(AtomicBool::new(false));
    let compressed = ChunkedFileBuffer::spawn(
        "/virtual/overlap.rzb",
        GatedSource { data: packed, release: rx, finished: Arc::clone(&finished) },
        comp_len,
        chunk0,
    );
    let dec = RzbDecoder::new("/virtual/overlap.rzb", index, compressed, None);

    let last_span = dec.len() - BLOCK..dec.len();
    let chunks = ChunkedFileBuffer::chunk_count(comp_len, chunk0);
    let overlap_seen = Arc::new(AtomicBool::new(false));

    type Gate = Box<dyn FnOnce() -> Result<(), (usize, bool)> + Send>;
    type Job = Box<dyn FnOnce() -> (usize, bool) + Send>;
    let jobs: Vec<(Gate, Job)> = vec![
        (
            {
                let dec = Arc::clone(&dec);
                Box::new(move || dec.ensure_decoded(0..BLOCK).map_err(|_| (0, false)))
            },
            {
                let dec = Arc::clone(&dec);
                let src = src.clone();
                let finished = Arc::clone(&finished);
                let overlap_seen = Arc::clone(&overlap_seen);
                let last_span = last_span.clone();
                Box::new(move || {
                    // "Scan" morsel 0: its block is decoded and correct...
                    assert_eq!(&dec.decoded().bytes()[..BLOCK], &src[..BLOCK]);
                    // ...while the compressed reader is still mid-file and
                    // every later block is unpublished.
                    let reader_done = finished.load(Ordering::SeqCst);
                    let later_decoded = dec.decoded().is_available(last_span.clone());
                    overlap_seen.store(!reader_done && !later_decoded, Ordering::SeqCst);
                    assert_eq!(dec.blocks_published(), 1, "only morsel 0's block is decoded");
                    // Release the rest of the compressed stream, then hold
                    // this worker hostage until the *other* worker has
                    // decoded the tail block — the two-distinct-decoders
                    // proof cannot race.
                    for _ in 1..chunks {
                        tx.send(()).expect("reader alive");
                    }
                    dec.decoded().wait_available(last_span).expect("tail decode succeeds");
                    (0, reader_done)
                })
            },
        ),
        (
            {
                let dec = Arc::clone(&dec);
                let last_span = last_span.clone();
                Box::new(move || dec.ensure_decoded(last_span).map_err(|_| (1, false)))
            },
            {
                let dec = Arc::clone(&dec);
                let src = src.clone();
                Box::new(move || {
                    let span = dec.len() - BLOCK..dec.len();
                    assert_eq!(&dec.decoded().bytes()[span.clone()], &src[span]);
                    (1, true)
                })
            },
        ),
    ];

    let results = run_jobs_when(jobs, 2);
    assert_eq!(results.len(), 2);
    assert!(
        overlap_seen.load(Ordering::SeqCst),
        "morsel 0 must scan while the reader has chunks outstanding and later blocks are undecoded"
    );
    // Morsel 0's worker decoded block 0; a different worker (blocked-out of
    // morsel 0's still-running body) decoded the tail.
    let workers = dec.decode_workers();
    assert!(workers.len() >= 2, "decode work on >= 2 distinct threads, saw {}", workers.len());

    // Finish the file and verify the whole image round-trips.
    dec.ensure_all().unwrap();
    assert_eq!(&dec.wait_all().unwrap()[..], &src[..]);
    assert!(finished.load(Ordering::SeqCst), "reader drained the container");
}

/// A corrupt block (CRC mismatch) fails **every** gated morsel — merged
/// execution errors instead of hanging or returning partial results, and no
/// pipeline behind a failed gate ever drains.
#[test]
fn corrupt_block_fails_every_gated_morsel_without_hanging() {
    let src = payload();
    let mut packed = rzb::compress(&src, BLOCK);
    let index = rzb::parse_index(&packed).unwrap();
    // Flip a byte inside block 0's payload: every prefix-covering gate must
    // hit the CRC failure.
    let at = index.comp_range(0).start;
    packed[at + 1] ^= 0x55;
    let compressed =
        Arc::new(ChunkedFileBuffer::completed("/virtual/bad.rzb", file_bytes(packed), 4096));
    let dec = RzbDecoder::new("/virtual/bad.rzb", index, compressed, None);

    let drained = Arc::new(AtomicUsize::new(0));
    let morsels = 4usize;
    let per_morsel = LEN / morsels;
    let (pipelines, gates): (Vec<Box<dyn Operator>>, Vec<Option<MorselGate>>) = (0..morsels)
        .map(|i| {
            let drained = Arc::clone(&drained);
            let counting: Box<dyn Operator> = Box::new(CountingSource {
                inner: BatchSource::new(vec![Batch::new(vec![vec![i as i64].into()]).unwrap()]),
                drained,
            });
            let dec = Arc::clone(&dec);
            let gate: MorselGate = Box::new(move || {
                dec.ensure_decoded(0..(i + 1) * per_morsel)
                    .map_err(|e| ColumnarError::External { message: e.to_string() })
            });
            (counting, Some(gate))
        })
        .unzip();

    let err = execute_morsels_when(pipelines, gates, &MergePlan::Concat, 4).unwrap_err();
    let msg = err.to_string();
    // Depending on which byte the flip lands on, the codec's structural
    // validation or the CRC check catches it — either way a corrupt-data
    // error naming the block, never a panic or a hang.
    assert!(msg.contains("corrupt data"), "corruption surfaces as a decode error: {msg}");
    assert!(msg.contains("block 0"), "failure names the block: {msg}");
    assert!(dec.is_failed());
    assert_eq!(drained.load(Ordering::SeqCst), 0, "morsels behind a failed gate must not drain");
}

/// Wraps an operator and counts drains, to prove failed-gate morsels never
/// run their pipelines.
struct CountingSource {
    inner: BatchSource,
    drained: Arc<AtomicUsize>,
}

impl Operator for CountingSource {
    fn next_batch(&mut self) -> Result<Option<Batch>, ColumnarError> {
        self.drained.fetch_add(1, Ordering::SeqCst);
        self.inner.next_batch()
    }
    fn name(&self) -> &'static str {
        "CountingSource"
    }
}
